//! Integration: the protocol lattice of §5.2.
//!
//! `(C1 ∨ C2) ⇒ (C1 ∨ C2') ⇒ C_FDAS ⇒ C_FDI` and `C_FDAS ⇒ C_NRAS` as
//! predicates; on identical schedules the forced-checkpoint counts must
//! order accordingly (aggregated over seeds — individual runs may diverge
//! once a forced checkpoint changes subsequent control state).

use rdt::workloads::EnvironmentKind;
use rdt::{run_protocol_kind, ProtocolKind, SimConfig, StopCondition};

fn forced_total(env: EnvironmentKind, protocol: ProtocolKind, seeds: &[u64]) -> u64 {
    seeds
        .iter()
        .map(|&seed| {
            let config = SimConfig::new(6)
                .with_seed(seed)
                .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 60 })
                .with_stop(StopCondition::MessagesSent(400));
            let mut app = env.build(6, 15);
            run_protocol_kind(protocol, &config, app.as_mut())
                .stats
                .total
                .forced_checkpoints
        })
        .sum()
}

#[test]
fn bhmr_family_is_no_more_conservative_than_fdas() {
    let seeds: Vec<u64> = (1..=6).collect();
    for &env in &[
        EnvironmentKind::Random,
        EnvironmentKind::Groups,
        EnvironmentKind::ClientServer,
    ] {
        let bhmr = forced_total(env, ProtocolKind::Bhmr, &seeds);
        let nosimple = forced_total(env, ProtocolKind::BhmrNoSimple, &seeds);
        let causalonly = forced_total(env, ProtocolKind::BhmrCausalOnly, &seeds);
        let fdas = forced_total(env, ProtocolKind::Fdas, &seeds);
        let fdi = forced_total(env, ProtocolKind::Fdi, &seeds);
        assert!(bhmr <= fdas, "{env}: bhmr {bhmr} > fdas {fdas}");
        assert!(nosimple <= fdas, "{env}: nosimple {nosimple} > fdas {fdas}");
        assert!(
            causalonly <= fdas,
            "{env}: causalonly {causalonly} > fdas {fdas}"
        );
        assert!(fdas <= fdi, "{env}: fdas {fdas} > fdi {fdi}");
        assert!(bhmr <= nosimple, "{env}: bhmr {bhmr} > nosimple {nosimple}");
    }
}

#[test]
fn fdas_is_no_more_conservative_than_nras() {
    let seeds: Vec<u64> = (1..=6).collect();
    for &env in &[EnvironmentKind::Random, EnvironmentKind::ClientServer] {
        let fdas = forced_total(env, ProtocolKind::Fdas, &seeds);
        let nras = forced_total(env, ProtocolKind::Nras, &seeds);
        assert!(fdas <= nras, "{env}: fdas {fdas} > nras {nras}");
    }
}

#[test]
fn bhmr_strictly_improves_in_the_client_server_environment() {
    // The paper's claim: the reduction of forced checkpoints vs FDAS "is
    // never less than 10%" across its environments; the client/server
    // chain is where causal knowledge pays off most (the causal past of
    // every message contains all previous messages).
    let seeds: Vec<u64> = (1..=8).collect();
    let bhmr = forced_total(EnvironmentKind::ClientServer, ProtocolKind::Bhmr, &seeds);
    let fdas = forced_total(EnvironmentKind::ClientServer, ProtocolKind::Fdas, &seeds);
    assert!(
        fdas > 0,
        "FDAS forced nothing; workload too quiet for the claim"
    );
    let reduction = (fdas - bhmr) as f64 / fdas as f64;
    assert!(
        reduction >= 0.10,
        "reduction vs FDAS only {:.1}% (bhmr {bhmr}, fdas {fdas})",
        reduction * 100.0
    );
}

#[test]
fn uncoordinated_is_the_floor_and_cas_the_ceiling() {
    let seeds: Vec<u64> = (1..=4).collect();
    let env = EnvironmentKind::Random;
    let uncoordinated = forced_total(env, ProtocolKind::Uncoordinated, &seeds);
    assert_eq!(uncoordinated, 0);
    // CAS forces one checkpoint per send: exactly the message count.
    let cas = forced_total(env, ProtocolKind::Cas, &seeds);
    assert_eq!(cas, 400 * seeds.len() as u64);
    let bhmr = forced_total(env, ProtocolKind::Bhmr, &seeds);
    assert!(bhmr < cas);
}
