//! Integration: the three RDT characterizations agree on
//! protocol-generated patterns (the "visible characterization" result —
//! checking the locally-visible CM-path family is as strong as checking
//! every R-path).

use rdt::theory::characterization::{all_chains_doubled, all_cm_paths_doubled};
use rdt::workloads::EnvironmentKind;
use rdt::{run_protocol_kind, ProtocolKind, RdtChecker, SimConfig, StopCondition};

fn small_config(seed: u64, messages: u64) -> SimConfig {
    SimConfig::new(4)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 35 })
        .with_stop(StopCondition::MessagesSent(messages))
}

#[test]
fn characterizations_agree_on_generated_patterns() {
    // Chain closures are O(M^2): keep runs small but numerous, and include
    // both RDT-holding and RDT-violating producers.
    let protocols = [
        ProtocolKind::Bhmr,
        ProtocolKind::Fdas,
        ProtocolKind::Nras,
        ProtocolKind::Uncoordinated,
    ];
    let mut violating = 0;
    let mut holding = 0;
    for &env in &[
        EnvironmentKind::Random,
        EnvironmentKind::ClientServer,
        EnvironmentKind::Ring,
    ] {
        for &protocol in &protocols {
            for seed in [1u64, 2, 3, 4] {
                let mut app = env.build(4, 12);
                let outcome = run_protocol_kind(protocol, &small_config(seed, 60), app.as_mut());
                let pattern = outcome.trace.to_pattern();
                let by_rpaths = RdtChecker::new(&pattern).check().holds();
                let by_chains = all_chains_doubled(&pattern);
                let by_cm = all_cm_paths_doubled(&pattern);
                assert_eq!(
                    by_rpaths, by_chains,
                    "{protocol} in {env} (seed {seed}): R-path vs chain characterizations differ"
                );
                assert_eq!(
                    by_chains, by_cm,
                    "{protocol} in {env} (seed {seed}): chain vs CM-path characterizations differ"
                );
                if by_rpaths {
                    holding += 1;
                } else {
                    violating += 1;
                }
            }
        }
    }
    assert!(holding > 0, "no RDT-holding run exercised");
    assert!(
        violating > 0,
        "no RDT-violating run exercised — the equivalence test is vacuous"
    );
}

#[test]
fn cm_check_is_not_weaker_on_paper_counterexamples() {
    use rdt::theory::paper_figures;
    // Belt and braces: the known counterexamples must fail all three ways.
    for pattern in [
        paper_figures::figure_1(),
        paper_figures::figure_2_unbroken(),
        paper_figures::figure_4_unbroken(),
    ] {
        assert!(!RdtChecker::new(&pattern).check().holds());
        assert!(!all_chains_doubled(&pattern));
        assert!(!all_cm_paths_doubled(&pattern));
    }
}
