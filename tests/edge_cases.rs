//! Hardening: degenerate and boundary configurations across the stack.

use rdt::theory::{consistency, min_max};
use rdt::workloads::EnvironmentKind;
use rdt::{
    run_protocol_kind, CheckpointId, GlobalCheckpoint, PatternBuilder, ProcessId, ProtocolKind,
    RdtChecker, SimConfig, StopCondition,
};

#[test]
fn single_process_systems_are_trivially_rdt() {
    for &protocol in ProtocolKind::all() {
        let config = SimConfig::new(1)
            .with_seed(1)
            .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 10 })
            .with_stop(StopCondition::Time(rdt::SimTime::from_ticks(200)));
        let mut app = EnvironmentKind::Random.build(1, 10);
        let outcome = run_protocol_kind(protocol, &config, app.as_mut());
        assert_eq!(outcome.stats.total.messages_sent, 0, "{protocol}");
        assert_eq!(outcome.stats.total.forced_checkpoints, 0, "{protocol}");
        assert!(RdtChecker::new(&outcome.trace.to_pattern()).check().holds());
    }
}

#[test]
fn two_process_minimal_exchange_under_every_protocol() {
    for &protocol in ProtocolKind::all() {
        let config = SimConfig::new(2)
            .with_seed(2)
            .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::MessagesSent(2));
        let mut app = EnvironmentKind::Ring.build(2, 5);
        let outcome = run_protocol_kind(protocol, &config, app.as_mut());
        assert_eq!(outcome.stats.total.messages_sent, 2, "{protocol}");
        let pattern = outcome.trace.to_pattern();
        assert!(pattern.linearize().is_ok(), "{protocol}");
    }
}

#[test]
fn empty_run_produces_empty_but_valid_artifacts() {
    let config = SimConfig::new(3)
        .with_seed(3)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Disabled)
        .with_stop(StopCondition::MessagesSent(0));
    let mut app = EnvironmentKind::Random.build(3, 10);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut());
    assert_eq!(outcome.trace.events().len(), 0);
    let pattern = outcome.trace.to_pattern();
    assert_eq!(pattern.total_checkpoints(), 3); // the implicit initials
    assert!(RdtChecker::new(&pattern).check().holds());
    assert!(consistency::is_consistent(
        &pattern,
        &GlobalCheckpoint::initial(3)
    ));
}

#[test]
fn pattern_with_only_checkpoints_has_chain_free_theory() {
    let mut b = PatternBuilder::new(2);
    for _ in 0..5 {
        b.checkpoint(ProcessId::new(0));
        b.checkpoint(ProcessId::new(1));
    }
    let pattern = b.build().unwrap();
    assert!(RdtChecker::new(&pattern).check().holds());
    // Every combination is consistent: no messages, no orphans.
    for x in 0..=5u32 {
        for y in 0..=5u32 {
            assert!(consistency::is_consistent(
                &pattern,
                &GlobalCheckpoint::new(vec![x, y])
            ));
        }
    }
    // Min GC containing any checkpoint is itself plus initials.
    let gc =
        min_max::min_consistent_containing(&pattern, &[CheckpointId::new(ProcessId::new(1), 4)])
            .unwrap();
    assert_eq!(gc.as_slice(), &[0, 4]);
}

#[test]
fn zero_tick_delays_keep_event_order_sane() {
    // Constant 1-tick delay with a dense script: many events share
    // timestamps; determinism and pattern validity must survive.
    let config = SimConfig::new(3)
        .with_seed(4)
        .with_delay(rdt::sim::DelayModel::Constant { ticks: 1 })
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 2 })
        .with_stop(StopCondition::MessagesSent(300));
    let mut app1 = EnvironmentKind::Pipeline.build(3, 1);
    let mut app2 = EnvironmentKind::Pipeline.build(3, 1);
    let a = run_protocol_kind(ProtocolKind::Fdas, &config, app1.as_mut());
    let b = run_protocol_kind(ProtocolKind::Fdas, &config, app2.as_mut());
    assert_eq!(a.trace.events(), b.trace.events());
    assert!(a.trace.to_pattern().linearize().is_ok());
}

#[test]
fn huge_checkpoint_rate_floods_are_handled() {
    // Checkpoints far more frequent than messages: R collapses toward 0
    // and the theory still verifies.
    let config = SimConfig::new(4)
        .with_seed(5)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 1 })
        .with_stop(StopCondition::MessagesSent(30));
    let mut app = EnvironmentKind::Random.build(4, 50);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut());
    assert!(outcome.stats.total.basic_checkpoints > outcome.stats.total.messages_sent);
    assert!(outcome.stats.forced_ratio() < 0.5);
    assert!(RdtChecker::new(&outcome.trace.to_pattern()).check().holds());
}

#[test]
fn protocol_names_match_kind_names() {
    use rdt::protocols::CicProtocol;
    let p0 = ProcessId::new(0);
    assert_eq!(rdt::Bhmr::new(2, p0).name(), ProtocolKind::Bhmr.name());
    assert_eq!(
        rdt::BhmrNoSimple::new(2, p0).name(),
        ProtocolKind::BhmrNoSimple.name()
    );
    assert_eq!(
        rdt::BhmrCausalOnly::new(2, p0).name(),
        ProtocolKind::BhmrCausalOnly.name()
    );
    assert_eq!(rdt::Fdas::new(2, p0).name(), ProtocolKind::Fdas.name());
    assert_eq!(rdt::Fdi::new(2, p0).name(), ProtocolKind::Fdi.name());
    assert_eq!(rdt::Nras::new(2, p0).name(), ProtocolKind::Nras.name());
    assert_eq!(rdt::Cas::new(2, p0).name(), ProtocolKind::Cas.name());
    assert_eq!(rdt::Cbr::new(2, p0).name(), ProtocolKind::Cbr.name());
    assert_eq!(rdt::Bcs::new(2, p0).name(), ProtocolKind::Bcs.name());
    assert_eq!(
        rdt::Uncoordinated::new(2, p0).name(),
        ProtocolKind::Uncoordinated.name()
    );
}

#[test]
fn trace_json_roundtrip() {
    use rdt::json::ToJson;
    let config = SimConfig::new(3)
        .with_seed(6)
        .with_stop(StopCondition::MessagesSent(50));
    let mut app = EnvironmentKind::Random.build(3, 10);
    let outcome = run_protocol_kind(ProtocolKind::Fdas, &config, app.as_mut());
    let json = outcome.trace.to_json().to_string();
    let back = rdt::Trace::from_json_str(&json).unwrap();
    assert_eq!(back.events(), outcome.trace.events());
    assert_eq!(back.to_pattern(), outcome.trace.to_pattern());
}

#[test]
fn pattern_json_roundtrip() {
    use rdt::json::ToJson;
    let pattern = rdt::theory::paper_figures::figure_1();
    let json = pattern.to_json().to_string();
    let back = rdt::Pattern::from_json(&rdt::json::Json::parse(&json).unwrap()).unwrap();
    assert_eq!(back, pattern);
    assert_eq!(back.digest(), pattern.digest());
    assert!(
        !RdtChecker::new(&back).check().holds(),
        "figure 1 still violates RDT"
    );
}
