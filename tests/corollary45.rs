//! Integration: Corollary 4.5 — the `TDV` saved with each checkpoint *is*
//! the minimum consistent global checkpoint containing it, for every
//! dependency-tracking RDT protocol, cross-validated against the offline
//! R-graph fixpoint.

use rdt::theory::min_max;
use rdt::workloads::EnvironmentKind;
use rdt::{run_protocol_kind, ProtocolKind, SimConfig, StopCondition};

fn config(seed: u64) -> SimConfig {
    SimConfig::new(4)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 50 })
        .with_stop(StopCondition::MessagesSent(120))
}

#[test]
fn on_the_fly_min_gc_matches_offline_fixpoint_for_all_tdv_protocols() {
    let mut total_checked = 0;
    for &env in &[
        EnvironmentKind::Random,
        EnvironmentKind::Groups,
        EnvironmentKind::ClientServer,
    ] {
        for protocol in ProtocolKind::all()
            .iter()
            .copied()
            .filter(|k| k.tracks_dependencies())
        {
            for seed in [3u64, 4] {
                let mut app = env.build(4, 15);
                let outcome = run_protocol_kind(protocol, &config(seed), app.as_mut());
                let pattern = outcome.trace.to_pattern().to_closed();
                for records in &outcome.records {
                    for record in records {
                        let reported = record
                            .min_consistent_gc
                            .as_ref()
                            .expect("TDV protocols report");
                        let offline = min_max::min_consistent_containing(&pattern, &[record.id])
                            .unwrap_or_else(|| {
                                panic!("{}: {} belongs to no consistent GC", protocol, record.id)
                            });
                        assert_eq!(
                            offline.as_slice(),
                            reported.as_slice(),
                            "{protocol} in {env} (seed {seed}): checkpoint {} reported {:?}, offline {:?}",
                            record.id,
                            reported,
                            offline.as_slice()
                        );
                        total_checked += 1;
                    }
                }
            }
        }
    }
    assert!(
        total_checked > 500,
        "only {total_checked} checkpoints exercised"
    );
}

#[test]
fn min_gc_contains_the_checkpoint_itself() {
    let mut app = EnvironmentKind::Random.build(4, 15);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config(9), app.as_mut());
    for (i, records) in outcome.records.iter().enumerate() {
        for record in records {
            let gc = record.min_consistent_gc.as_ref().unwrap();
            assert_eq!(gc[i], record.id.index, "own entry must name the checkpoint");
        }
    }
}

#[test]
fn uncoordinated_runs_would_fail_the_corollary() {
    // The corollary leans on RDT: an uncoordinated run's offline minima
    // can exceed what any TDV could have reported, or not exist at all.
    // We verify the premise indirectly: at least one checkpoint of some
    // uncoordinated run has a minimum GC strictly above its (hypothetical)
    // causal knowledge — i.e. the R-graph forces an entry the replayed TDV
    // does not know.
    use rdt::Replay;
    let mut found = false;
    'outer: for seed in 1u64..=8 {
        let mut app = EnvironmentKind::Random.build(4, 15);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config(seed), app.as_mut());
        let pattern = outcome.trace.to_pattern().to_closed();
        let annotations = Replay::new(&pattern).annotate().unwrap();
        for c in pattern.checkpoints() {
            let Some(min) = min_max::min_consistent_containing(&pattern, &[c]) else {
                found = true; // useless checkpoint: corollary inapplicable
                break 'outer;
            };
            let tdv = annotations.tdv(c);
            if min
                .members()
                .any(|m| m.index > tdv.get(m.process) && m.process != c.process)
            {
                found = true;
                break 'outer;
            }
        }
    }
    assert!(
        found,
        "expected some uncoordinated checkpoint to expose a hidden dependency"
    );
}
