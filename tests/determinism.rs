//! End-to-end determinism of the parallel sweep engine.
//!
//! The contract (documented in EXPERIMENTS.md): for a fixed sweep and
//! base seeds, every execution — sequential, or parallel with any worker
//! count, repeated any number of times — yields byte-identical reports,
//! identical per-run statistics, and identical traces. The guarantee
//! rests on two pillars these tests pin down separately:
//!
//! 1. each grid point's simulator seed is a pure function of the sweep
//!    ([`rdt::SimRng::derive_seed`] over the point index), and each run is
//!    a pure function of its config — no shared mutable state;
//! 2. [`rdt_bench::Sweep::merge`] folds outcomes in grid order, so float
//!    aggregation does not depend on completion order.

use rdt::json::ToJson;
use rdt::workloads::EnvironmentKind;
use rdt::{run_protocol_kind, SimConfig, SimRng, StopCondition};
use rdt_bench::{run_sweep_points, Sweep, SweepOptions};

fn sweep() -> Sweep {
    Sweep::figure("det", EnvironmentKind::Random, 4, &[2, 8], &[1, 2, 3], 150)
}

fn options(threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        progress: false,
    }
}

#[test]
fn outcomes_identical_across_1_2_and_8_threads() {
    let sweep = sweep();
    let baseline = run_sweep_points(&sweep, &options(1));
    assert_eq!(baseline.len(), sweep.len());
    for threads in [2, 8] {
        let outcomes = run_sweep_points(&sweep, &options(threads));
        // PartialEq covers grid index, full RunStats (total and
        // per-process), and the pattern digest of every run.
        assert_eq!(outcomes, baseline, "{threads} worker threads");
    }
}

#[test]
fn repeated_runs_are_identical() {
    let sweep = sweep();
    let first = run_sweep_points(&sweep, &options(4));
    let second = run_sweep_points(&sweep, &options(4));
    assert_eq!(first, second);
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let sweep = sweep();
    let reference = sweep.run_sequential().to_json().pretty();
    for threads in [1, 2, 8] {
        let report = rdt_bench::run_sweep(&sweep, &options(threads))
            .to_json()
            .pretty();
        assert_eq!(report, reference, "{threads} worker threads");
    }
}

#[test]
fn grid_point_traces_are_byte_identical_when_rerun() {
    // The engine compares runs by digest; this test closes the loop by
    // re-running grid points directly and comparing *whole traces*
    // byte for byte. Thread count cannot enter: the simulator only sees
    // (config, application, derived seed).
    let sweep = sweep();
    for point in sweep.grid().iter().take(6) {
        let trace_of = || {
            let config = SimConfig::new(4)
                .with_seed(point.sim_seed)
                .with_delay(rdt::sim::DelayModel::Exponential {
                    mean: rdt_bench::MEAN_DELAY,
                })
                .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential {
                    mean: point.multiplier * rdt_bench::MEAN_SEND_INTERVAL,
                })
                .with_stop(StopCondition::MessagesSent(150));
            let mut app = EnvironmentKind::Random.build(4, rdt_bench::MEAN_SEND_INTERVAL);
            run_protocol_kind(point.protocol, &config, app.as_mut())
                .trace
                .to_json()
                .to_string()
        };
        assert_eq!(trace_of(), trace_of(), "point {}", point.index);
    }
}

#[test]
fn derived_seeds_are_order_free_and_distinct() {
    let sweep = sweep();
    let grid = sweep.grid();
    for point in &grid {
        assert_eq!(
            point.sim_seed,
            SimRng::derive_seed(point.seed, point.index as u64),
            "derived seed must depend only on (seed entry, grid index)"
        );
    }
    let mut seeds: Vec<u64> = grid.iter().map(|p| p.sim_seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(
        seeds.len(),
        grid.len(),
        "derived seeds must not collide in a grid"
    );
}

#[test]
fn merge_requires_grid_order() {
    let sweep = sweep();
    let outcomes = run_sweep_points(&sweep, &options(2));
    // In order: fine.
    let report = sweep.merge(&outcomes);
    assert_eq!(report.rows.len(), 2);
    // Shuffled: must be rejected, not silently mis-aggregated.
    let mut shuffled = outcomes;
    shuffled.swap(0, 1);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = sweep.merge(&shuffled);
    }));
    assert!(result.is_err(), "merge must reject out-of-order outcomes");
}
