//! Property-based tests over randomly generated checkpoint and
//! communication patterns.
//!
//! The generator drives `PatternBuilder` with an arbitrary interleaving of
//! checkpoints, sends and deliveries, so every generated pattern is
//! well-formed and realizable by construction; the properties then relate
//! the independent implementations of the theory to one another.

use proptest::prelude::*;

use rdt::theory::characterization::{all_chains_doubled, all_cm_paths_doubled};
use rdt::theory::{consistency, min_max};
use rdt::{
    CheckpointId, Pattern, PatternBuilder, ProcessId, RdtChecker, Replay, ZigzagReachability,
};

/// One abstract step of the generator.
#[derive(Debug, Clone, Copy)]
enum Step {
    Checkpoint(u8),
    Send(u8, u8),
    Deliver(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8).prop_map(Step::Checkpoint),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Step::Send(a, b)),
        (0u8..255).prop_map(Step::Deliver),
    ]
}

fn build_pattern(n: usize, steps: &[Step]) -> Pattern {
    let mut b = PatternBuilder::new(n);
    let mut pending = Vec::new();
    for &step in steps {
        match step {
            Step::Checkpoint(p) => {
                b.checkpoint(ProcessId::new(p as usize % n));
            }
            Step::Send(from, to) => {
                let from = from as usize % n;
                let mut to = to as usize % n;
                if to == from {
                    to = (to + 1) % n;
                }
                if n >= 2 {
                    pending.push(b.send(ProcessId::new(from), ProcessId::new(to)));
                }
            }
            Step::Deliver(pick) => {
                if !pending.is_empty() {
                    let msg = pending.remove(pick as usize % pending.len());
                    b.deliver(msg).expect("pending messages are deliverable");
                }
            }
        }
    }
    b.close()
        .build()
        .expect("generator produces well-formed patterns")
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (2usize..5, proptest::collection::vec(step_strategy(), 5..60))
        .prop_map(|(n, steps)| build_pattern(n, &steps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn characterizations_are_equivalent(pattern in pattern_strategy()) {
        let by_rpaths = RdtChecker::new(&pattern).check().holds();
        let by_chains = all_chains_doubled(&pattern);
        let by_cm = all_cm_paths_doubled(&pattern);
        prop_assert_eq!(by_rpaths, by_chains, "R-path vs chain");
        prop_assert_eq!(by_chains, by_cm, "chain vs CM-path");
    }

    fn min_max_consistency_and_order(pattern in pattern_strategy()) {
        for c in pattern.checkpoints() {
            let min = min_max::min_consistent_containing(&pattern, &[c]);
            let max = min_max::max_consistent_containing(&pattern, &[c]);
            match (min, max) {
                (Some(lo), Some(hi)) => {
                    prop_assert!(consistency::is_consistent(&pattern, &lo));
                    prop_assert!(consistency::is_consistent(&pattern, &hi));
                    prop_assert!(lo.contains(c));
                    prop_assert!(hi.contains(c));
                    prop_assert!(lo.le(&hi));
                }
                (None, None) => {} // useless checkpoint
                (lo, hi) => {
                    prop_assert!(false, "existence disagrees for {}: {:?} vs {:?}", c, lo, hi);
                }
            }
        }
    }

    fn min_gc_formulations_agree(pattern in pattern_strategy()) {
        // Two independent implementations — the orphan fixpoint and the
        // R-graph reverse reachability — must coincide on every checkpoint.
        for c in pattern.checkpoints() {
            let fixpoint = min_max::min_consistent_containing(&pattern, &[c]);
            let rgraph = min_max::min_consistent_via_rgraph(&pattern, &[c]);
            prop_assert_eq!(fixpoint, rgraph, "formulations disagree for {}", c);
        }
    }

    fn useless_iff_no_containing_gc(pattern in pattern_strategy()) {
        let zz = ZigzagReachability::new(&pattern);
        for c in pattern.checkpoints() {
            let useless = zz.on_z_cycle(c);
            let has_gc = min_max::min_consistent_containing(&pattern, &[c]).is_some();
            prop_assert_eq!(
                useless, !has_gc,
                "Netzer-Xu z-cycle test disagrees with the fixpoint for {}", c
            );
        }
    }

    fn netzer_xu_coexistence_theorem(pattern in pattern_strategy()) {
        // "No zigzag path between them (nor through either)" must coincide
        // exactly with "some consistent global checkpoint contains both".
        let zz = ZigzagReachability::new(&pattern);
        let checkpoints: Vec<CheckpointId> = pattern.checkpoints().collect();
        for &a in &checkpoints {
            for &b in &checkpoints {
                let by_zigzag = zz.can_coexist(a, b);
                let by_construction =
                    min_max::min_consistent_containing(&pattern, &[a, b]).is_some();
                prop_assert_eq!(
                    by_zigzag, by_construction,
                    "Netzer-Xu disagrees with the fixpoint for ({}, {})", a, b
                );
            }
        }
    }

    fn tdv_trackability_implies_r_path(pattern in pattern_strategy()) {
        let annotations = Replay::new(&pattern).annotate().expect("realizable");
        let graph = rdt::RGraph::new(&pattern);
        let reach = graph.reachability();
        for to in pattern.checkpoints() {
            let tdv = annotations.tdv(to);
            for (process, entry) in tdv.iter() {
                if process == to.process || entry == 0 {
                    continue;
                }
                // A recorded dependency is a causal chain; causal chains
                // are chains; chains induce R-paths.
                let from = CheckpointId::new(process, entry);
                prop_assert!(
                    reach.reaches(from, to),
                    "TDV of {} records {} but no R-path exists", to, from
                );
            }
        }
    }

    fn rdt_implies_no_useless_checkpoints(pattern in pattern_strategy()) {
        if RdtChecker::new(&pattern).check().holds() {
            let zz = ZigzagReachability::new(&pattern);
            for c in pattern.checkpoints() {
                prop_assert!(!zz.on_z_cycle(c), "{} useless under RDT", c);
            }
        }
    }

    fn replay_is_deterministic(pattern in pattern_strategy()) {
        let a = Replay::new(&pattern).annotate().expect("realizable");
        let b = Replay::new(&pattern).annotate().expect("realizable");
        for c in pattern.checkpoints() {
            prop_assert_eq!(a.vc(c), b.vc(c));
            prop_assert_eq!(a.tdv(c), b.tdv(c));
        }
    }

    fn recovery_line_is_consistent_and_respects_caps(pattern in pattern_strategy()) {
        use rdt::{recovery_line, Failure};
        for i in 0..pattern.num_processes() {
            let process = ProcessId::new(i);
            let last = pattern.last_checkpoint_index(process);
            let cap = last / 2;
            let line = recovery_line(&pattern, &[Failure { process, resume_cap: cap }]);
            prop_assert!(consistency::is_consistent(&pattern, &line));
            prop_assert!(line.get(process) <= cap);
        }
    }
}
