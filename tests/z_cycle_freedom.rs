//! Integration: the property lattice below RDT.
//!
//! BCS guarantees Z-cycle freedom (no useless checkpoints) but not RDT;
//! RDT protocols guarantee both; the uncoordinated control guarantees
//! neither. These tests pin the strict inclusions with protocol-generated
//! patterns.

use rdt::theory::characterization::useless_checkpoints;
use rdt::workloads::EnvironmentKind;
use rdt::{run_protocol_kind, ProtocolKind, RdtChecker, SimConfig, StopCondition};

fn config(n: usize, seed: u64) -> SimConfig {
    SimConfig::new(n)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 40 })
        .with_stop(StopCondition::MessagesSent(150))
}

#[test]
fn bcs_patterns_are_z_cycle_free_everywhere() {
    for &env in EnvironmentKind::all() {
        for seed in [1u64, 2, 3, 4] {
            let mut app = env.build(5, 15);
            let outcome = run_protocol_kind(ProtocolKind::Bcs, &config(5, seed), app.as_mut());
            let pattern = outcome.trace.to_pattern().to_closed();
            let useless = useless_checkpoints(&pattern);
            assert!(
                useless.is_empty(),
                "BCS produced useless checkpoints {useless:?} in {env} (seed {seed})"
            );
        }
    }
}

#[test]
fn bcs_violates_rdt_somewhere() {
    // ZCF is strictly weaker than RDT: some BCS run must contain an
    // untrackable R-path.
    let mut violations = 0;
    for seed in 1u64..=6 {
        let mut app = EnvironmentKind::Random.build(5, 15);
        let outcome = run_protocol_kind(ProtocolKind::Bcs, &config(5, seed), app.as_mut());
        if !RdtChecker::new(&outcome.trace.to_pattern()).check().holds() {
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "no BCS run violated RDT — the separation is not exhibited"
    );
}

#[test]
fn bcs_forces_fewer_checkpoints_than_rdt_protocols() {
    // The price of RDT over plain usefulness: BCS should sit below the
    // whole RDT family on forced checkpoints (aggregated over seeds).
    let forced = |protocol: ProtocolKind| -> u64 {
        (1u64..=5)
            .map(|seed| {
                let mut app = EnvironmentKind::Random.build(6, 15);
                run_protocol_kind(protocol, &config(6, seed), app.as_mut())
                    .stats
                    .total
                    .forced_checkpoints
            })
            .sum()
    };
    let bcs = forced(ProtocolKind::Bcs);
    let bhmr = forced(ProtocolKind::Bhmr);
    assert!(bcs <= bhmr, "bcs {bcs} > bhmr {bhmr}");
}

#[test]
fn every_zcf_protocol_passes_the_zcf_check() {
    for &protocol in ProtocolKind::all() {
        if !protocol.ensures_z_cycle_freedom() {
            continue;
        }
        let mut app = EnvironmentKind::Groups.build(6, 15);
        let outcome = run_protocol_kind(protocol, &config(6, 9), app.as_mut());
        let pattern = outcome.trace.to_pattern().to_closed();
        assert!(
            useless_checkpoints(&pattern).is_empty(),
            "{protocol} claims ZCF but produced a useless checkpoint"
        );
    }
}
