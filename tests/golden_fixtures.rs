//! Golden-fixture layer: the structure and deterministic result fields
//! of the benchmark and certification artifacts are pinned by canonical
//! JSON fixtures (and an FNV-1a checksum manifest) under `tests/golden/`.
//!
//! Wall-clock measurements vary run to run, so the canonical form keeps
//! every timing *key* but replaces its value with a `"<timing>"`
//! placeholder — a format change or a result drift fails here first,
//! while rerunning on faster hardware never does. After an intentional
//! change, run `tests/golden/regen-golden.sh` and review the diff.

use rdt::json::{Json, ToJson};

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");

/// Keys whose values are wall-clock measurements (or ratios of them).
const TIMING_KEYS: &[&str] = &[
    "ns",
    "incremental_ns",
    "batch_est_ns",
    "legacy_ns",
    "executor_ns",
    "speedup",
    "events_per_sec",
    "legacy_events_per_sec",
    "executor_events_per_sec",
    "min_speedup",
    "compacted_throughput_ratio",
    "control_throughput_ratio",
    // Allocation counts are exact, but only the benchmark binary's
    // counting allocator produces them — under the test harness they
    // read zero, so the canonical form treats them like timings.
    "legacy_allocs",
    "executor_allocs",
    // `rdt-lint --json` wall time.
    "elapsed_ns",
    // BENCH-CERTIFY engine head-to-head and throughput.
    "baseline_ns",
    "orbit_ns",
    "structures_per_sec",
];

const TIMING_PLACEHOLDER: &str = "<timing>";

/// Replaces every timing-keyed value with the placeholder, recursively.
fn scrub(json: &Json) -> Json {
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(key, value)| {
                    let value = if TIMING_KEYS.contains(&key.as_str()) {
                        Json::Str(TIMING_PLACEHOLDER.to_string())
                    } else {
                        scrub(value)
                    };
                    (key.clone(), value)
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(scrub).collect()),
        other => other.clone(),
    }
}

/// BENCH-RDTCHECK rows are positional tuples
/// `(messages, delivered, naive_ns, optimized_ns, speedup)`: everything
/// past index 1 is wall-clock and must be scrubbed by position.
fn canonical_rdtcheck() -> Json {
    let mut json = rdt_bench::closure_bench(&[80, 160], 2).to_json();
    if let Json::Obj(pairs) = &mut json {
        for (key, value) in pairs.iter_mut() {
            let Json::Arr(rows) = value else { continue };
            if key != "rows" {
                continue;
            }
            for row in rows {
                let Json::Arr(cells) = row else { continue };
                for cell in cells.iter_mut().skip(2) {
                    *cell = Json::Str(TIMING_PLACEHOLDER.to_string());
                }
            }
        }
    }
    scrub(&json)
}

/// Every pinned artifact, in manifest order, at fixed quick scales. Each
/// generator is fully deterministic once timings are scrubbed: simulator
/// runs are seed-pure, `recovery_exec` and `certify` are thread-count
/// invariant, and the compaction stream is generated from its seed alone.
fn fixtures() -> Vec<(&'static str, Json)> {
    vec![
        ("BENCH_rdtcheck", canonical_rdtcheck()),
        (
            "BENCH_incremental",
            scrub(&rdt_bench::incremental_vs_batch(&[200, 400], 2, 4).to_json()),
        ),
        (
            "BENCH_recovery_exec",
            // No wall-clock fields at all: rollback spans are simulated
            // ticks, so the artifact is pinned verbatim.
            rdt_bench::recovery_exec(4, &[1, 2], 200, 4.0, 2, 1).to_json(),
        ),
        (
            "BENCH_compaction",
            scrub(&rdt_bench::compaction_bench(4, 4_000, 2_000, 250, 7).to_json()),
        ),
        (
            "BENCH_sim_throughput",
            scrub(&rdt_bench::sim_throughput(200, 2).to_json()),
        ),
        ("BENCH_certify", {
            // Tiny scope plus one sampled push run: the counts, orbit
            // accounting, reuse ratio, and the sampled-run shape are all
            // deterministic; only the clocks are scrubbed.
            let sampled = rdt::Scope::with_basics(2, 2, 0).expect("in range");
            scrub(
                &rdt_bench::certify_scale(&rdt::Scope::tiny(), 1, &[(sampled, Some(0.5))])
                    .to_json(),
            )
        }),
        ("certify_report", {
            let options = rdt::CertifyOptions {
                threads: 2,
                ..rdt::CertifyOptions::default()
            };
            rdt::certify(&rdt::Scope::tiny(), &options).to_json()
        }),
        ("lint_report", {
            // The `rdt-lint --json` shape: deterministic once the wall
            // time is scrubbed (sources are scanned in sorted order and
            // the workspace must lint clean, so the diagnostics array
            // is pinned empty — a regression shows up as fixture drift
            // *and* a failing workspace_clean test).
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
            let report = rdt_lint::run_lint(root).expect("lint run");
            scrub(&report.to_json(0))
        }),
    ]
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const MANIFEST_HEADER: &str = "\
# Golden-fixture manifest: FNV-1a checksums of the canonical artifact
# JSONs in this directory (timings replaced by placeholders). Regenerate
# with tests/golden/regen-golden.sh and review the diff.
";

#[test]
fn golden_fixtures_match() {
    let regen = std::env::var_os("RDT_REGEN_GOLDEN").is_some();
    let dir = std::path::Path::new(GOLDEN_DIR);
    let mut manifest = String::from(MANIFEST_HEADER);
    let mut failures = Vec::new();

    for (name, json) in fixtures() {
        let text = json.pretty();
        manifest.push_str(&format!("{name} {:016x}\n", fnv1a(&text)));
        let path = dir.join(format!("{name}.json"));
        if regen {
            std::fs::write(&path, &text).expect("write fixture");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(stored) if stored == text => {}
            Ok(_) => {
                // Leave the freshly generated form next to the fixture
                // (ignored by git) so the drift is a plain `diff` away.
                let actual = dir.join(format!("{name}.json.tmp"));
                let _ = std::fs::write(&actual, &text);
                failures.push(format!(
                    "{name}: canonical JSON drifted from tests/golden/{name}.json \
                     (actual written to {name}.json.tmp)"
                ));
            }
            Err(err) => failures.push(format!("{name}: {err}")),
        }
    }

    let manifest_path = dir.join("manifest.txt");
    if regen {
        std::fs::write(&manifest_path, &manifest).expect("write manifest");
        return;
    }
    match std::fs::read_to_string(&manifest_path) {
        Ok(stored) if stored == manifest => {}
        Ok(_) => failures.push("manifest.txt checksums drifted".to_string()),
        Err(err) => failures.push(format!("manifest.txt: {err}")),
    }

    assert!(
        failures.is_empty(),
        "golden fixtures drifted — if the change is intentional, run \
         tests/golden/regen-golden.sh and review the diff:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn scrubbing_is_structure_preserving() {
    let json = Json::obj([
        ("events", Json::U64(7)),
        ("ns", Json::U64(123_456)),
        (
            "rows",
            Json::Arr(vec![Json::obj([
                ("speedup", Json::F64(3.5)),
                ("checkpoints", Json::U64(2)),
            ])]),
        ),
    ]);
    let scrubbed = scrub(&json);
    assert_eq!(scrubbed.get("events"), Some(&Json::U64(7)));
    assert_eq!(
        scrubbed.get("ns").and_then(Json::as_str),
        Some(TIMING_PLACEHOLDER)
    );
    let rows = scrubbed.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows[0].get("checkpoints"), Some(&Json::U64(2)));
    assert_eq!(
        rows[0].get("speedup").and_then(Json::as_str),
        Some(TIMING_PLACEHOLDER)
    );
}
