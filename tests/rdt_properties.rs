//! Integration: Theorem 4.4 and its consequences on protocol-generated
//! patterns.
//!
//! Every RDT-ensuring protocol, in every environment, must produce
//! checkpoint and communication patterns in which every R-path is on-line
//! trackable; the uncoordinated control must violate that under load; and
//! the two headline consequences of RDT (antichain extendability, no
//! useless checkpoints) must hold on the generated patterns.

use rdt::theory::characterization;
use rdt::theory::min_max;
use rdt::workloads::EnvironmentKind;
use rdt::{
    run_protocol_kind, CheckpointId, ProcessId, ProtocolKind, RdtChecker, Replay, SimConfig,
    StopCondition,
};

fn config(n: usize, seed: u64) -> SimConfig {
    SimConfig::new(n)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 40 })
        .with_stop(StopCondition::MessagesSent(150))
}

#[test]
fn every_rdt_protocol_produces_rdt_patterns_in_every_environment() {
    for &env in EnvironmentKind::all() {
        for protocol in ProtocolKind::rdt_ensuring() {
            for seed in [1u64, 2, 3] {
                let mut app = env.build(5, 15);
                let outcome = run_protocol_kind(protocol, &config(5, seed), app.as_mut());
                let pattern = outcome.trace.to_pattern();
                let report = RdtChecker::new(&pattern).check();
                assert!(
                    report.holds(),
                    "{protocol} in {env} (seed {seed}) violated RDT: {}",
                    report.violations()[0]
                );
            }
        }
    }
}

#[test]
fn uncoordinated_violates_rdt_under_load() {
    // With basic checkpoints landing between sends and deliveries, hidden
    // dependencies form quickly in the random environment.
    let mut violations = 0;
    for seed in 1u64..=5 {
        let mut app = EnvironmentKind::Random.build(5, 15);
        let outcome =
            run_protocol_kind(ProtocolKind::Uncoordinated, &config(5, seed), app.as_mut());
        if !RdtChecker::new(&outcome.trace.to_pattern()).check().holds() {
            violations += 1;
        }
    }
    assert!(
        violations >= 4,
        "only {violations}/5 uncoordinated runs violated RDT"
    );
}

#[test]
fn rdt_patterns_have_no_useless_checkpoints() {
    for protocol in [ProtocolKind::Bhmr, ProtocolKind::Fdas] {
        let mut app = EnvironmentKind::Random.build(4, 15);
        let outcome = run_protocol_kind(protocol, &config(4, 11), app.as_mut());
        let pattern = outcome.trace.to_pattern().to_closed();
        assert!(
            characterization::useless_checkpoints(&pattern).is_empty(),
            "{protocol} produced a useless checkpoint"
        );
    }
}

#[test]
fn antichains_extend_to_consistent_global_checkpoints_under_rdt() {
    // Property (1) of the paper's introduction: under RDT, any set of
    // pairwise causally-unrelated checkpoints extends to a consistent GC.
    let mut app = EnvironmentKind::Random.build(4, 15);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config(4, 13), app.as_mut());
    let pattern = outcome.trace.to_pattern().to_closed();
    let annotations = Replay::new(&pattern).annotate().expect("realizable");

    let checkpoints: Vec<CheckpointId> = pattern.checkpoints().collect();
    let mut antichains_tested = 0;
    // Enumerate pairs (and extend greedily to triples) of concurrent
    // checkpoints.
    for (i, &a) in checkpoints.iter().enumerate() {
        for &b in checkpoints.iter().skip(i + 1) {
            if a.process == b.process || !annotations.concurrent(a, b) {
                continue;
            }
            antichains_tested += 1;
            assert!(
                min_max::extendable(&pattern, &[a, b]),
                "concurrent pair ({a}, {b}) not extendable"
            );
            if antichains_tested > 300 {
                return; // plenty of evidence
            }
        }
    }
    assert!(
        antichains_tested > 10,
        "test pattern too small to be meaningful"
    );
}

#[test]
fn uncoordinated_antichains_can_fail_to_extend() {
    // The converse of the property above: without RDT, some concurrent
    // pairs have hidden dependencies and extend to no consistent GC.
    let mut found_unextendable = false;
    'outer: for seed in 1u64..=8 {
        let mut app = EnvironmentKind::Random.build(5, 15);
        let outcome =
            run_protocol_kind(ProtocolKind::Uncoordinated, &config(5, seed), app.as_mut());
        let pattern = outcome.trace.to_pattern().to_closed();
        let annotations = Replay::new(&pattern).annotate().expect("realizable");
        let checkpoints: Vec<CheckpointId> = pattern.checkpoints().collect();
        for (i, &a) in checkpoints.iter().enumerate() {
            for &b in checkpoints.iter().skip(i + 1) {
                if a.process == b.process || !annotations.concurrent(a, b) {
                    continue;
                }
                if !min_max::extendable(&pattern, &[a, b]) {
                    found_unextendable = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(
        found_unextendable,
        "no hidden dependency found in 8 uncoordinated runs"
    );
}

#[test]
fn min_gc_entries_never_exceed_member_requirements() {
    // Structural sanity on the min-GC fixpoint: the minimum containing a
    // checkpoint is componentwise <= the maximum containing it.
    let mut app = EnvironmentKind::ClientServer.build(4, 15);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config(4, 17), app.as_mut());
    let pattern = outcome.trace.to_pattern().to_closed();
    for i in 0..4 {
        let p = ProcessId::new(i);
        for x in 0..=pattern.last_checkpoint_index(p) {
            let c = CheckpointId::new(p, x);
            let min = min_max::min_consistent_containing(&pattern, &[c]);
            let max = min_max::max_consistent_containing(&pattern, &[c]);
            match (min, max) {
                (Some(lo), Some(hi)) => assert!(lo.le(&hi), "min > max for {c}"),
                (None, None) => panic!("{c} useless under an RDT protocol"),
                _ => panic!("min/max existence disagree for {c}"),
            }
        }
    }
}
