//! Differential testing of the on-line protocols against the offline
//! theory.
//!
//! Every RDT-ensuring on-line protocol — the BHMR protocol and both its
//! variants, the FDAS family (FDAS, FDI), and the simple protocols (NRAS,
//! CAS, CBR) — claims that every pattern it produces satisfies RDT. The
//! paper gives three *equivalent* offline views of that property:
//!
//! 1. the R-path checker ([`rdt::RdtChecker`]),
//! 2. every message chain causally doubled
//!    ([`rdt::theory::characterization::all_chains_doubled`]),
//! 3. every visible CM-path causally doubled
//!    ([`rdt::theory::characterization::all_cm_paths_doubled`]).
//!
//! These tests run random workloads through the simulator and check (a)
//! the protocols' claim under all three characterizations, and (b) that
//! the three characterizations agree with each other even on patterns
//! from the non-RDT controls (BCS, uncoordinated), where the outcome is
//! seed-dependent.

use proptest::prelude::*;
use rdt::theory::characterization::{all_chains_doubled_with, all_cm_paths_doubled_with};
use rdt::workloads::EnvironmentKind;
use rdt::{
    run_protocol_kind, Pattern, PatternAnalysis, ProtocolKind, SimConfig, SimTime, StopCondition,
};

fn run_pattern(
    protocol: ProtocolKind,
    env: EnvironmentKind,
    n: usize,
    seed: u64,
    ckpt_mean: u64,
    messages: u64,
) -> Pattern {
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: ckpt_mean })
        .with_stop(StopCondition::MessagesSent(messages));
    let mut app = env.build(n, 10);
    run_protocol_kind(protocol, &config, app.as_mut())
        .trace
        .to_pattern()
}

/// The fixed seed corpus: small but diverse — every environment, several
/// seeds, two system sizes. Deliberately deterministic so a regression
/// here is immediately reproducible.
fn corpus() -> impl Iterator<Item = (EnvironmentKind, usize, u64)> {
    EnvironmentKind::all()
        .iter()
        .flat_map(|&env| [(env, 3, 11u64), (env, 4, 23), (env, 4, 47), (env, 5, 91)])
}

#[test]
fn online_protocols_satisfy_all_three_characterizations_on_corpus() {
    for protocol in ProtocolKind::rdt_ensuring() {
        for (env, n, seed) in corpus() {
            let pattern = run_pattern(protocol, env, n, seed, 25, 60);
            let analysis = PatternAnalysis::new(&pattern);
            let label = format!("{protocol} in {env} (n={n}, seed={seed})");
            assert!(analysis.rdt_report().holds(), "{label}: R-path checker");
            assert!(
                all_chains_doubled_with(&analysis),
                "{label}: some chain is undoubled"
            );
            assert!(
                all_cm_paths_doubled_with(&analysis),
                "{label}: some CM-path is undoubled"
            );
        }
    }
}

#[test]
fn characterizations_agree_even_on_non_rdt_controls() {
    // BCS and the uncoordinated control make no RDT promise; whether a
    // given run satisfies RDT is up to the seed. The three offline views
    // must still return the *same verdict* on every pattern.
    let mut holds = 0;
    let mut violations = 0;
    for protocol in [ProtocolKind::Bcs, ProtocolKind::Uncoordinated] {
        for (env, n, seed) in corpus() {
            let pattern = run_pattern(protocol, env, n, seed, 25, 60);
            let analysis = PatternAnalysis::new(&pattern);
            let r = analysis.rdt_report().holds();
            let chains = all_chains_doubled_with(&analysis);
            let cm = all_cm_paths_doubled_with(&analysis);
            let label = format!("{protocol} in {env} (n={n}, seed={seed})");
            assert_eq!(r, chains, "{label}: checker vs chains");
            assert_eq!(chains, cm, "{label}: chains vs CM-paths");
            if r {
                holds += 1;
            } else {
                violations += 1;
            }
        }
    }
    // The corpus must exercise both verdicts, or the agreement check
    // proves nothing.
    assert!(holds > 0, "corpus produced no RDT-satisfying control runs");
    assert!(
        violations > 0,
        "corpus produced no RDT-violating control runs"
    );
}

#[test]
fn time_stopped_runs_agree_too() {
    // A different stop condition exercises quiescence handling: the
    // runner discards pending checkpoint timers differently, so cover it.
    for protocol in ProtocolKind::rdt_ensuring() {
        let config = SimConfig::new(3)
            .with_seed(5)
            .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 15 })
            .with_stop(StopCondition::Time(SimTime::from_ticks(600)));
        let mut app = EnvironmentKind::Random.build(3, 10);
        let pattern = run_protocol_kind(protocol, &config, app.as_mut())
            .trace
            .to_pattern();
        let analysis = PatternAnalysis::new(&pattern);
        assert!(all_cm_paths_doubled_with(&analysis), "{protocol}");
        assert!(analysis.rdt_report().holds(), "{protocol}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized extension of the corpus: workload geometry, checkpoint
    /// rate and message budget all vary; every on-line protocol must stay
    /// consistent with every offline characterization.
    fn online_protocols_agree_with_offline_checkers(
        seed in 1u64..100_000,
        env_index in 0usize..5,
        n in 2usize..5,
        ckpt_mean in 4u64..50,
        messages in 20u64..70,
    ) {
        let env = EnvironmentKind::all()[env_index];
        for protocol in ProtocolKind::rdt_ensuring() {
            let pattern = run_pattern(protocol, env, n, seed, ckpt_mean, messages);
            let analysis = PatternAnalysis::new(&pattern);
            let r = analysis.rdt_report().holds();
            let chains = all_chains_doubled_with(&analysis);
            let cm = all_cm_paths_doubled_with(&analysis);
            prop_assert!(r, "{} {} seed={}: R-path checker", protocol, env, seed);
            prop_assert!(chains, "{} {} seed={}: undoubled chain", protocol, env, seed);
            prop_assert!(cm, "{} {} seed={}: undoubled CM-path", protocol, env, seed);
        }
    }

    /// The equivalence (1) ⇔ (2) ⇔ (3) on arbitrary control patterns.
    fn characterization_equivalence_on_random_controls(
        seed in 1u64..100_000,
        env_index in 0usize..5,
        n in 2usize..5,
        ckpt_mean in 4u64..50,
        messages in 20u64..70,
    ) {
        let env = EnvironmentKind::all()[env_index];
        for protocol in [ProtocolKind::Bcs, ProtocolKind::Uncoordinated] {
            let pattern = run_pattern(protocol, env, n, seed, ckpt_mean, messages);
            let analysis = PatternAnalysis::new(&pattern);
            let r = analysis.rdt_report().holds();
            let chains = all_chains_doubled_with(&analysis);
            let cm = all_cm_paths_doubled_with(&analysis);
            prop_assert_eq!(r, chains, "{} {} seed={}", protocol, env, seed);
            prop_assert_eq!(chains, cm, "{} {} seed={}", protocol, env, seed);
        }
    }
}
