//! Integration: run reproducibility and rollback damage bounds.

use rdt::workloads::EnvironmentKind;
use rdt::{analyze, run_protocol_kind, Failure, ProcessId, ProtocolKind, SimConfig, StopCondition};

fn config(seed: u64) -> SimConfig {
    SimConfig::new(5)
        .with_seed(seed)
        .with_basic_checkpoints(rdt::sim::BasicCheckpointModel::Exponential { mean: 45 })
        .with_stop(StopCondition::MessagesSent(250))
}

#[test]
fn identical_configs_reproduce_identical_runs() {
    for &env in EnvironmentKind::all() {
        let run = |()| {
            let mut app = env.build(5, 15);
            run_protocol_kind(ProtocolKind::Bhmr, &config(41), app.as_mut())
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.trace.events(), b.trace.events(), "{env} not reproducible");
        assert_eq!(a.stats.total, b.stats.total);
        assert_eq!(a.records, b.records);
    }
}

#[test]
fn crash_replay_is_bit_identical_for_any_thread_count() {
    // The full crash pipeline — Poisson injection, recovery-line descent,
    // orphan discard and re-emission, lost-message replay — fanned over a
    // worker pool must reproduce exactly, whatever the thread count.
    let grid: Vec<(ProtocolKind, u64)> = [ProtocolKind::Bhmr, ProtocolKind::Uncoordinated]
        .into_iter()
        .flat_map(|p| (1u64..=4).map(move |seed| (p, seed)))
        .collect();
    let run_grid = |threads: usize| {
        rdt::sim::parallel_map_indexed(
            &grid,
            threads,
            || (),
            |(), _, &(protocol, seed)| {
                let mut app = EnvironmentKind::Domino.build(5, 15);
                let config = config(seed).with_crash_rate(5.0).with_max_crashes(2);
                let outcome = run_protocol_kind(protocol, &config, app.as_mut());
                let recovery = outcome.recovery.expect("crashes enabled");
                (
                    outcome.trace.events().to_vec(),
                    outcome.stats.total,
                    recovery.crashes,
                )
            },
            |_| {},
        )
    };
    let sequential = run_grid(1);
    assert!(
        sequential.iter().any(|(_, _, crashes)| !crashes.is_empty()),
        "the pinned grid must actually crash somewhere"
    );
    assert_eq!(sequential, run_grid(4), "threads changed the results");
}

#[test]
fn executor_sweep_is_bit_identical_for_any_thread_count() {
    // The packed round-executor keeps all protocol state in one shared
    // arena per run; fanning a sweep over a worker pool must still be a
    // pure map — every (protocol, seed) cell gets its own arena, so 1
    // thread and 8 threads produce byte-identical traces, records and
    // stats for every dependency-tracking protocol. Each cell also
    // replays the schedule on the legacy engine as a built-in oracle.
    let grid: Vec<(ProtocolKind, u64)> = [
        ProtocolKind::Bhmr,
        ProtocolKind::BhmrNoSimple,
        ProtocolKind::BhmrCausalOnly,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
    ]
    .into_iter()
    .flat_map(|p| (1u64..=3).map(move |seed| (p, seed)))
    .collect();
    let run_grid = |threads: usize| {
        rdt::sim::parallel_map_indexed(
            &grid,
            threads,
            || (),
            |(), _, &(protocol, seed)| {
                let mut app = EnvironmentKind::Random.build(5, 15);
                let outcome = run_protocol_kind(protocol, &config(seed), app.as_mut());
                let mut legacy_app = EnvironmentKind::Random.build(5, 15);
                let legacy = rdt::sim::run_protocol_kind_legacy(
                    protocol,
                    &config(seed),
                    legacy_app.as_mut(),
                );
                assert_eq!(
                    outcome.trace.events(),
                    legacy.trace.events(),
                    "{protocol} diverged from the legacy engine"
                );
                assert_eq!(outcome.records, legacy.records, "{protocol}");
                (
                    outcome.trace.events().to_vec(),
                    outcome.records,
                    outcome.stats.total,
                )
            },
            |_| {},
        )
    };
    let sequential = run_grid(1);
    assert_eq!(sequential, run_grid(8), "threads changed the results");
}

#[test]
fn different_seeds_produce_different_runs() {
    let mut app1 = EnvironmentKind::Random.build(5, 15);
    let mut app2 = EnvironmentKind::Random.build(5, 15);
    let a = run_protocol_kind(ProtocolKind::Bhmr, &config(1), app1.as_mut());
    let b = run_protocol_kind(ProtocolKind::Bhmr, &config(2), app2.as_mut());
    assert_ne!(a.trace.events(), b.trace.events());
}

#[test]
fn rdt_protocols_bound_rollback_better_than_uncoordinated() {
    // Every process in turn loses its newest checkpoint; total discarded
    // checkpoints, aggregated over seeds, must be no worse under BHMR than
    // under no coordination. (RDT guarantees each checkpoint sits in a
    // consistent GC, so rollback never cascades past the dependencies the
    // TDV names; uncoordinated patterns have no such bound.)
    let damage = |protocol: ProtocolKind| -> u64 {
        let mut total = 0;
        for seed in 1u64..=5 {
            let mut app = EnvironmentKind::Random.build(5, 15);
            let outcome = run_protocol_kind(protocol, &config(seed), app.as_mut());
            let pattern = outcome.trace.to_pattern().to_closed();
            for i in 0..5 {
                let process = ProcessId::new(i);
                let cap = pattern.last_checkpoint_index(process).saturating_sub(1);
                let report = analyze(
                    &pattern,
                    &[Failure {
                        process,
                        resume_cap: cap,
                    }],
                );
                total += report.total_discarded;
            }
        }
        total
    };
    let bhmr = damage(ProtocolKind::Bhmr);
    let uncoordinated = damage(ProtocolKind::Uncoordinated);
    assert!(
        bhmr <= uncoordinated,
        "bhmr rollback damage {bhmr} exceeds uncoordinated {uncoordinated}"
    );
}

#[test]
fn mid_run_failure_analysis_through_truncation() {
    // Crash the system at several instants of one run: the failure-time
    // view must always yield a consistent recovery line at or below the
    // crash, and later crashes never have earlier lines.
    use rdt::theory::consistency;
    let mut app = EnvironmentKind::Random.build(4, 15);
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config(7), app.as_mut());
    let end = outcome.trace.end_time().ticks();
    let mut previous_line_total = 0u64;
    for fraction in [4u64, 2, 1] {
        let cut = outcome
            .trace
            .truncate_at(rdt::SimTime::from_ticks(end / fraction));
        let pattern = cut.to_pattern().to_closed();
        let line = rdt::recovery_line(&pattern, &[]);
        assert!(consistency::is_consistent(&pattern, &line));
        let total: u64 = line.as_slice().iter().map(|&x| x as u64).sum();
        assert!(
            total >= previous_line_total,
            "recovery line regressed as the run progressed"
        );
        previous_line_total = total;
    }
}

#[test]
fn rdt_recovery_lines_stay_close_to_the_failure() {
    // Under RDT, rolling one process back one checkpoint should cost every
    // other process at most a bounded rollback — in particular nobody
    // should return to the initial state in a long run.
    for seed in 1u64..=3 {
        let mut app = EnvironmentKind::Random.build(5, 15);
        let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config(seed), app.as_mut());
        let pattern = outcome.trace.to_pattern().to_closed();
        for i in 0..5 {
            let process = ProcessId::new(i);
            let last = pattern.last_checkpoint_index(process);
            if last < 2 {
                continue;
            }
            let report = analyze(
                &pattern,
                &[Failure {
                    process,
                    resume_cap: last - 1,
                }],
            );
            assert_eq!(
                report.rolled_to_initial, 0,
                "seed {seed}: failing {process} cascaded someone to the initial state"
            );
        }
    }
}
