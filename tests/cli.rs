//! Black-box tests of the `rdt-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdt-cli"))
}

#[test]
fn list_shows_all_protocols_and_environments() {
    let output = cli().arg("list").output().expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for name in [
        "bhmr",
        "bhmr-nosimple",
        "fdas",
        "fdi",
        "nras",
        "cas",
        "cbr",
        "bcs",
        "uncoordinated",
    ] {
        assert!(text.contains(name), "missing protocol {name}");
    }
    for env in ["random", "groups", "client-server", "ring", "pipeline"] {
        assert!(text.contains(env), "missing environment {env}");
    }
}

#[test]
fn run_with_verify_reports_rdt() {
    let output = cli()
        .args([
            "run",
            "--protocol",
            "bhmr",
            "--env",
            "random",
            "--messages",
            "120",
            "--verify",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("R = "), "missing stats: {text}");
    assert!(
        text.contains("RDT          : holds"),
        "verification missing: {text}"
    );
}

#[test]
fn audit_figure_1_flags_the_violation() {
    let output = cli()
        .args(["audit", "--figure", "1"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("RDT: violated"));
    assert!(text.contains("min GC containing"));
}

#[test]
fn save_and_replay_trace_roundtrip() {
    let path = std::env::temp_dir().join("rdt-cli-test-trace.json");
    let path_str = path.to_str().unwrap();
    let output = cli()
        .args([
            "run",
            "--protocol",
            "fdas",
            "--env",
            "ring",
            "--messages",
            "40",
            "--save-trace",
            path_str,
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());

    let output = cli()
        .args(["replay", "--trace", path_str])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("replaying trace"));
    assert!(text.contains("RDT: holds"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let output = cli().arg("bogus").output().expect("binary runs");
    assert!(!output.status.success());
    let text = String::from_utf8(output.stderr).unwrap();
    assert!(text.contains("usage:"));
}

#[test]
fn unknown_protocol_fails_helpfully() {
    let output = cli()
        .args(["run", "--protocol", "nonsense"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let text = String::from_utf8(output.stderr).unwrap();
    assert!(text.contains("unknown protocol"));
}
