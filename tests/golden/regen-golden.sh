#!/usr/bin/env sh
# Regenerates the golden-fixture canonical JSONs and the checksum
# manifest in this directory. Run after an intentional change to an
# artifact's format or deterministic results, then review the diff
# before committing.
set -eu
cd "$(dirname "$0")/../.."
RDT_REGEN_GOLDEN=1 cargo test --test golden_fixtures golden_fixtures_match
git --no-pager diff --stat tests/golden
