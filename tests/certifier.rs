//! Integration tests for the exhaustive small-scope certifier
//! (`rdt-verify`): enumeration invariants across the crate boundary, the
//! weakened-predicate regression the certifier must catch, and the
//! pattern JSON round-trip over every enumerated pattern.

use proptest::prelude::*;

use rdt::json::{Json, ToJson};
use rdt::theory::PatternAnalysis;
use rdt::verify::{
    enumerate_patterns, enumerate_schedules, enumerate_schedules_orbit,
    enumerate_schedules_orbit_stats,
};
use rdt::{certify, CertProtocol, CertifyOptions, Pattern, ProtocolKind, Scope};

/// The CI smoke scope certifies cleanly through the public facade.
#[test]
fn tiny_scope_certifies_through_the_facade() {
    let report = certify(&Scope::tiny(), &CertifyOptions::default());
    assert!(report.certified_ok(), "{}", report.render());
    assert_eq!(report.counts.replayable, 68);
    for protocol in &report.protocols {
        assert_eq!(protocol.patterns, 68, "{}", protocol.name);
    }
}

/// Regression: the paper's Figure 2 hidden dependency. With `C1`
/// disabled (`C2` alone), BHMR lets a non-causal Z-path through at
/// n = 3, m = 2 — the certifier must report it as a counterexample,
/// while full BHMR certifies with zero counterexamples on the identical
/// scope.
#[test]
fn weakened_predicate_regression() {
    let scope = Scope::with_basics(3, 2, 0).expect("valid scope");
    let options = CertifyOptions {
        threads: 1,
        protocols: vec![
            CertProtocol::Kind(ProtocolKind::Bhmr),
            CertProtocol::WeakenedBhmrC2Only,
        ],
        max_counterexamples: 32,
        ..CertifyOptions::default()
    };
    let report = certify(&scope, &options);

    let full = report.protocol("bhmr").expect("bhmr certified");
    assert_eq!(full.counterexample_total, 0, "{:?}", full.counterexamples);
    assert_eq!(full.rdt_violations, 0);

    let weak = report.protocol("bhmr-c2only").expect("control certified");
    assert!(weak.rdt_violations > 0, "{}", report.render());
    let seeded: Vec<_> = weak
        .counterexamples
        .iter()
        .filter(|cex| cex.kind == "rdt-violation")
        .collect();
    assert!(!seeded.is_empty(), "{}", report.render());
    // The minimal witness is the two-message relay chain with a late
    // first delivery — present among the kept counterexamples.
    assert!(
        seeded
            .iter()
            .any(|cex| cex.schedule == "s0>1#0 d1#0 s2>0#1 d0#1"),
        "minimal hidden-dependency witness missing: {seeded:?}"
    );
    // The meta-check: a certifier that cannot catch a broken predicate
    // must not report success.
    assert!(report.certified_ok(), "{}", report.render());
}

/// The enumerator's counts are visible and exact through the facade
/// (hand-computed table in docs/VERIFICATION.md).
#[test]
fn enumeration_counts_match_hand_computation() {
    let scope = Scope::with_basics(2, 2, 0).expect("valid scope");
    let (patterns, counts) = enumerate_patterns(&scope);
    assert_eq!(counts.structures, 24);
    assert_eq!(counts.canonical, 14);
    assert_eq!(counts.pruned_symmetry, 10);
    assert_eq!(counts.unrealizable, 1);
    assert_eq!(counts.replayable, 13);
    assert_eq!(patterns.len(), 13);
}

/// ROADMAP item 3 coverage pin: `certify --scope 3,4` covers exactly
/// 260506 structures and replays exactly 36526 canonical patterns. Any
/// pruning change that alters coverage — a canonicalization bug, a
/// miscounted orbit, a lost work unit — fails here loudly.
#[test]
fn scope_3_4_coverage_is_pinned() {
    let scope: Scope = "3,4".parse().expect("scope in range");
    let counts = enumerate_schedules_orbit(&scope, |_| {});
    assert_eq!(counts.structures, 260506);
    assert_eq!(counts.replayable, 36526);
    assert_eq!(counts.structures - counts.canonical, counts.pruned_symmetry);
}

/// Builds the `seed`-th process relabeling of `0..n` (a deterministic
/// Fisher–Yates walk — every permutation is reachable).
fn perm_from_seed(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Orbit-pruning soundness, half one: the orbit-pruned enumerator
    /// retains exactly the baseline's canonical representatives (same
    /// stream, same order) and its orbit–stabilizer counts cover the
    /// full space exactly — so every pruned structure is accounted to
    /// precisely one retained representative.
    #[test]
    fn orbit_pruning_matches_the_baseline(scope in scope_strategy()) {
        let mut baseline = Vec::new();
        let base_counts = enumerate_schedules(&scope, |s| baseline.push(s.render()));
        let mut retained = Vec::new();
        let mut orbits = Vec::new();
        let factorial: u64 = (1..=scope.processes as u64).product();
        let (orbit_counts, _) = enumerate_schedules_orbit_stats(&scope, |s, meta| {
            retained.push(s.render());
            orbits.push(meta.orbit);
        });
        prop_assert_eq!(base_counts, orbit_counts);
        prop_assert_eq!(baseline, retained);
        let orbit_sum: u64 = orbits.iter().sum();
        prop_assert!(orbits.iter().all(|&o| o >= 1 && factorial.is_multiple_of(o)));
        prop_assert!(orbit_sum <= orbit_counts.structures);
    }

    /// Orbit-pruning soundness, half two: replaying a random orbit
    /// member (a relabeled schedule) yields the same theory verdict as
    /// its canonical representative — the verdict the certifier reports
    /// for the whole orbit.
    #[test]
    fn orbit_members_share_their_representatives_verdict(
        scope in scope_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut failures = Vec::new();
        enumerate_schedules_orbit(&scope, |schedule| {
            let perm = perm_from_seed(scope.processes, seed ^ schedule.events.len() as u64);
            let member = schedule.relabeled(&perm);
            let rep = PatternAnalysis::new(&schedule.to_pattern().expect("realizable"));
            let other = PatternAnalysis::new(&member.to_pattern().expect("orbit member realizable"));
            let rep_verdict = rep.rdt_report().holds();
            let member_verdict = other.rdt_report().holds();
            if rep_verdict != member_verdict {
                failures.push(format!(
                    "{}: representative rdt={rep_verdict}, member rdt={member_verdict}",
                    schedule.render()
                ));
            }
        });
        prop_assert!(failures.is_empty(), "{failures:?}");
    }
}

fn scope_strategy() -> impl Strategy<Value = Scope> {
    (1usize..=3, 0usize..=2, 0usize..=2)
        .prop_map(|(n, m, b)| Scope::with_basics(n, m, b).expect("bounds in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every enumerated pattern survives the JSON codec byte-for-byte
    /// (digest and structural equality) and replays cleanly through
    /// `PatternAnalysis`.
    #[test]
    fn enumerated_patterns_round_trip_and_replay(scope in scope_strategy()) {
        let (patterns, counts) = enumerate_patterns(&scope);
        prop_assert_eq!(patterns.len() as u64, counts.replayable);
        for pattern in &patterns {
            let encoded = pattern.to_json().pretty();
            let decoded = Json::parse(&encoded).expect("codec emits valid JSON");
            let back = Pattern::from_json(&decoded).expect("codec round-trips");
            prop_assert_eq!(&back, pattern);
            prop_assert_eq!(back.digest(), pattern.digest());

            let analysis = PatternAnalysis::new(pattern);
            prop_assert!(
                analysis.try_rdt_report().is_ok(),
                "enumerated pattern must be realizable"
            );
        }
    }
}
