//! Algebraic laws of the causality primitives, property-tested.

use proptest::prelude::*;

use rdt_causality::{
    BoolMatrix, BoolVector, ClockOrdering, DependencyVector, ProcessId, VectorClock,
};

fn clock_strategy(n: usize) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..50, n).prop_map(VectorClock::from_entries)
}

fn dv_strategy(n: usize) -> impl Strategy<Value = DependencyVector> {
    (0..n, proptest::collection::vec(0u32..50, n))
        .prop_map(|(owner, entries)| DependencyVector::from_entries(ProcessId::new(owner), entries))
}

fn bools(n: usize) -> impl Strategy<Value = BoolVector> {
    proptest::collection::vec(any::<bool>(), n).prop_map(BoolVector::from_bools)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- vector clocks ----------------------------------------------

    fn merge_max_is_commutative(a in clock_strategy(5), b in clock_strategy(5)) {
        let mut ab = a.clone();
        ab.merge_max(&b);
        let mut ba = b.clone();
        ba.merge_max(&a);
        prop_assert_eq!(ab, ba);
    }

    fn merge_max_is_associative(
        a in clock_strategy(4), b in clock_strategy(4), c in clock_strategy(4),
    ) {
        let mut left = a.clone();
        left.merge_max(&b);
        left.merge_max(&c);
        let mut bc = b.clone();
        bc.merge_max(&c);
        let mut right = a.clone();
        right.merge_max(&bc);
        prop_assert_eq!(left, right);
    }

    fn merge_max_is_idempotent_and_dominating(a in clock_strategy(5), b in clock_strategy(5)) {
        let mut aa = a.clone();
        aa.merge_max(&a);
        prop_assert_eq!(&aa, &a);
        let mut ab = a.clone();
        ab.merge_max(&b);
        // The merge dominates both inputs.
        prop_assert!(matches!(a.compare(&ab), ClockOrdering::Before | ClockOrdering::Equal));
        prop_assert!(matches!(b.compare(&ab), ClockOrdering::Before | ClockOrdering::Equal));
    }

    fn compare_is_antisymmetric(a in clock_strategy(5), b in clock_strategy(5)) {
        match a.compare(&b) {
            ClockOrdering::Before => prop_assert_eq!(b.compare(&a), ClockOrdering::After),
            ClockOrdering::After => prop_assert_eq!(b.compare(&a), ClockOrdering::Before),
            ClockOrdering::Equal => prop_assert_eq!(b.compare(&a), ClockOrdering::Equal),
            ClockOrdering::Concurrent => {
                prop_assert_eq!(b.compare(&a), ClockOrdering::Concurrent)
            }
        }
    }

    fn happened_before_is_transitive(
        a in clock_strategy(4), b in clock_strategy(4), c in clock_strategy(4),
    ) {
        if a.happened_before(&b) && b.happened_before(&c) {
            prop_assert!(a.happened_before(&c));
        }
    }

    // ---- dependency vectors -----------------------------------------

    fn dv_merge_never_decreases(a in dv_strategy(5), b in dv_strategy(5)) {
        let mut merged = a.clone();
        merged.merge_max(&b);
        for (p, v) in a.iter() {
            prop_assert!(merged.get(p) >= v);
        }
        for (p, v) in b.iter() {
            prop_assert!(merged.get(p) >= v);
        }
        // Owner survives the merge.
        prop_assert_eq!(merged.owner(), a.owner());
    }

    fn dv_new_dependencies_disappear_after_merge(a in dv_strategy(5), b in dv_strategy(5)) {
        let mut merged = a.clone();
        merged.merge_max(&b);
        prop_assert!(!merged.has_new_dependency(&b));
        prop_assert!(!merged.has_new_dependency(&a));
    }

    fn dv_new_dependencies_are_exactly_strict_gains(a in dv_strategy(5), b in dv_strategy(5)) {
        let fresh: Vec<ProcessId> = a.new_dependencies(&b).collect();
        for p in ProcessId::all(5) {
            prop_assert_eq!(fresh.contains(&p), b.get(p) > a.get(p));
        }
    }

    // ---- boolean vectors and matrices --------------------------------

    fn boolvector_ops_are_pointwise(a in bools(70), b in bools(70)) {
        let mut anded = a.clone();
        anded.and_assign(&b);
        let mut ored = a.clone();
        ored.or_assign(&b);
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let p = ProcessId::new(i);
            prop_assert_eq!(anded.get(p), x && y);
            prop_assert_eq!(ored.get(p), x || y);
        }
        prop_assert_eq!(ored.count_ones(), (0..70).filter(|&i| {
            let p = ProcessId::new(i);
            a.get(p) || b.get(p)
        }).count());
    }

    fn boolvector_ones_roundtrip(a in bools(100)) {
        let mut rebuilt = BoolVector::new(100);
        for p in a.ones() {
            rebuilt.set(p, true);
        }
        prop_assert_eq!(rebuilt, a);
    }

    fn matrix_row_ops_match_vector_ops(
        rows_a in proptest::collection::vec(any::<bool>(), 16),
        rows_b in proptest::collection::vec(any::<bool>(), 16),
        row in 0usize..4,
    ) {
        let build = |bits: &[bool]| {
            let mut m = BoolMatrix::new(4);
            for (idx, &bit) in bits.iter().enumerate() {
                m.set(ProcessId::new(idx / 4), ProcessId::new(idx % 4), bit);
            }
            m
        };
        let a = build(&rows_a);
        let b = build(&rows_b);
        let target = ProcessId::new(row);

        let mut ored = a.clone();
        ored.or_row_from(target, &b);
        let mut copied = a.clone();
        copied.copy_row_from(target, &b);
        for col in ProcessId::all(4) {
            prop_assert_eq!(ored.get(target, col), a.get(target, col) || b.get(target, col));
            prop_assert_eq!(copied.get(target, col), b.get(target, col));
        }
        // Other rows untouched.
        for r in ProcessId::all(4) {
            if r == target { continue; }
            for col in ProcessId::all(4) {
                prop_assert_eq!(ored.get(r, col), a.get(r, col));
                prop_assert_eq!(copied.get(r, col), a.get(r, col));
            }
        }
    }

    fn matrix_column_or_is_pointwise(
        bits in proptest::collection::vec(any::<bool>(), 25),
        src in 0usize..5,
        dst in 0usize..5,
    ) {
        let mut m = BoolMatrix::new(5);
        for (idx, &bit) in bits.iter().enumerate() {
            m.set(ProcessId::new(idx / 5), ProcessId::new(idx % 5), bit);
        }
        let before = m.clone();
        m.or_column_into(ProcessId::new(src), ProcessId::new(dst));
        for l in ProcessId::all(5) {
            let expected = before.get(l, ProcessId::new(dst)) || before.get(l, ProcessId::new(src));
            prop_assert_eq!(m.get(l, ProcessId::new(dst)), expected);
            // Every other column untouched.
            for col in ProcessId::all(5) {
                if col.index() != dst {
                    prop_assert_eq!(m.get(l, col), before.get(l, col));
                }
            }
        }
    }
}
