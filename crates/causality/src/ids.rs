//! Strongly typed identifiers for processes, checkpoints and intervals.

use std::fmt;

/// Identifier of a process `P_i` of the distributed computation.
///
/// Processes are numbered `0..n`. The newtype prevents accidentally mixing a
/// process index with a checkpoint index (both are small integers).
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from its zero-based index.
    pub fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of the process.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process identifiers of an `n`-process system.
    ///
    /// ```rust
    /// use rdt_causality::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids.len(), 3);
    /// assert_eq!(ids[2], ProcessId::new(2));
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Identifier of the local checkpoint `C_{i,x}`: the `x`-th checkpoint taken
/// by process `P_i`.
///
/// Index `0` is the initial checkpoint every process takes at its initial
/// state (paper, §2.2).
///
/// # Example
///
/// ```rust
/// use rdt_causality::{CheckpointId, ProcessId};
///
/// let c = CheckpointId::new(ProcessId::new(1), 2);
/// assert_eq!(c.to_string(), "C(1,2)");
/// assert_eq!(c.prev(), Some(CheckpointId::new(ProcessId::new(1), 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CheckpointId {
    /// Process the checkpoint belongs to.
    pub process: ProcessId,
    /// Index of the checkpoint on its process (0 = initial checkpoint).
    pub index: u32,
}

impl CheckpointId {
    /// Creates the identifier of checkpoint `C_{process,index}`.
    pub fn new(process: ProcessId, index: u32) -> Self {
        CheckpointId { process, index }
    }

    /// The initial checkpoint `C_{i,0}` of `process`.
    pub fn initial(process: ProcessId) -> Self {
        CheckpointId { process, index: 0 }
    }

    /// The next checkpoint of the same process, `C_{i,x+1}`.
    pub fn next(self) -> Self {
        CheckpointId {
            process: self.process,
            index: self.index + 1,
        }
    }

    /// The previous checkpoint of the same process, or `None` for the
    /// initial checkpoint.
    pub fn prev(self) -> Option<Self> {
        self.index.checked_sub(1).map(|index| CheckpointId {
            process: self.process,
            index,
        })
    }

    /// The checkpoint interval that this checkpoint *closes*: `C_{i,x}` ends
    /// interval `I_{i,x}` (for `x > 0`).
    pub fn closing_interval(self) -> Option<IntervalId> {
        (self.index > 0).then_some(IntervalId {
            process: self.process,
            index: self.index,
        })
    }

    /// The checkpoint interval that this checkpoint *opens*: the events
    /// following `C_{i,x}` belong to `I_{i,x+1}`.
    pub fn opening_interval(self) -> IntervalId {
        IntervalId {
            process: self.process,
            index: self.index + 1,
        }
    }
}

impl fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C({},{})", self.process.index(), self.index)
    }
}

/// Identifier of the checkpoint interval `I_{i,x}`: the sequence of events
/// occurring at `P_i` between `C_{i,x-1}` and `C_{i,x}` (paper, §3.1).
///
/// Interval indices start at 1: `I_{i,1}` is the interval opened by the
/// initial checkpoint `C_{i,0}`. The index of a process's *current* interval
/// always equals the index of its *next* checkpoint, which is why the paper
/// stores it directly in `TDV_i[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntervalId {
    /// Process the interval belongs to.
    pub process: ProcessId,
    /// One-based index of the interval.
    pub index: u32,
}

impl IntervalId {
    /// Creates the identifier of interval `I_{process,index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index == 0`; interval indices are one-based.
    pub fn new(process: ProcessId, index: u32) -> Self {
        assert!(index > 0, "interval indices are one-based");
        IntervalId { process, index }
    }

    /// The checkpoint that opens this interval: `C_{i,x-1}` opens `I_{i,x}`.
    pub fn opened_by(self) -> CheckpointId {
        debug_assert!(self.index > 0, "interval indices are one-based");
        CheckpointId {
            process: self.process,
            index: self.index - 1,
        }
    }

    /// The checkpoint that closes this interval: `C_{i,x}` closes `I_{i,x}`.
    ///
    /// The closing checkpoint need not exist yet in a finite prefix of a
    /// computation; callers decide whether it does.
    pub fn closed_by(self) -> CheckpointId {
        CheckpointId {
            process: self.process,
            index: self.index,
        }
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I({},{})", self.process.index(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(ProcessId::from(7), p);
        assert_eq!(format!("{p}"), "P7");
    }

    #[test]
    fn process_id_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn checkpoint_navigation() {
        let p = ProcessId::new(2);
        let c0 = CheckpointId::initial(p);
        assert_eq!(c0.index, 0);
        assert_eq!(c0.prev(), None);
        let c1 = c0.next();
        assert_eq!(c1.index, 1);
        assert_eq!(c1.prev(), Some(c0));
    }

    #[test]
    fn checkpoint_interval_relationship() {
        let p = ProcessId::new(0);
        let c0 = CheckpointId::initial(p);
        // C_{i,0} opens I_{i,1} and closes nothing.
        assert_eq!(c0.closing_interval(), None);
        let i1 = c0.opening_interval();
        assert_eq!(i1.index, 1);
        assert_eq!(i1.opened_by(), c0);
        assert_eq!(i1.closed_by(), c0.next());
        // C_{i,1} closes I_{i,1}.
        assert_eq!(c0.next().closing_interval(), Some(i1));
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn interval_index_zero_rejected() {
        let _ = IntervalId::new(ProcessId::new(0), 0);
    }

    #[test]
    fn display_formats() {
        let c = CheckpointId::new(ProcessId::new(1), 3);
        assert_eq!(c.to_string(), "C(1,3)");
        let i = IntervalId::new(ProcessId::new(1), 3);
        assert_eq!(i.to_string(), "I(1,3)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = CheckpointId::new(ProcessId::new(0), 5);
        let b = CheckpointId::new(ProcessId::new(1), 0);
        assert!(a < b);
        let c = CheckpointId::new(ProcessId::new(0), 6);
        assert!(a < c);
    }
}
