//! Causality primitives for rollback-dependency-trackability (RDT)
//! checkpointing.
//!
//! This crate provides the small, dependency-free building blocks shared by
//! the whole workspace:
//!
//! * [`ProcessId`], [`CheckpointId`], [`IntervalId`] — strongly typed
//!   identifiers for the entities of a checkpoint and communication pattern
//!   (Baldoni, Hélary, Mostefaoui, Raynal; Wang).
//! * [`VectorClock`] — classic Fidge/Mattern vector clocks, used to decide
//!   Lamport's happened-before relation between events.
//! * [`DependencyVector`] — Wang's *transitive dependency vector* (`TDV`),
//!   the vector each process piggybacks so that on-line trackable rollback
//!   dependencies can be decided with a single comparison.
//! * [`BoolVector`], [`BoolMatrix`] — bit-packed boolean collections used
//!   for the `sent_to`/`simple` vectors and the `causal` matrix of the BHMR
//!   protocol; bit-packing keeps the piggyback accounting honest and the
//!   simulation fast for large process counts.
//!
//! # Example
//!
//! ```rust
//! use rdt_causality::{DependencyVector, ProcessId};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let mut tdv0 = DependencyVector::initial(2, p0);
//! let tdv1 = DependencyVector::initial(2, p1);
//! // P1 sends a message carrying its TDV; P0 merges it on delivery.
//! tdv0.merge_max(&tdv1);
//! assert_eq!(tdv0.get(p1), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bool_matrix;
mod bool_vector;
mod dependency_vector;
mod ids;
mod vector_clock;

pub use bool_matrix::BoolMatrix;
pub use bool_vector::BoolVector;
pub use dependency_vector::DependencyVector;
pub use ids::{CheckpointId, IntervalId, ProcessId};
pub use vector_clock::{ClockOrdering, VectorClock};
