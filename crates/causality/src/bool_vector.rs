//! Bit-packed boolean vector indexed by [`ProcessId`].

use std::fmt;

use crate::ProcessId;

/// A fixed-length boolean vector indexed by process, packed 64 entries per
/// word.
///
/// Used for the protocol's `sent_to_i` and `simple_i` arrays. Bit-packing
/// matters twice: it is the honest unit for piggyback-size accounting
/// (`n` bits, not `n` bytes), and it makes the merge rules `∧`/`∨` over all
/// processes word-parallel.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{BoolVector, ProcessId};
///
/// let mut sent_to = BoolVector::new(128);
/// sent_to.set(ProcessId::new(100), true);
/// assert!(sent_to.get(ProcessId::new(100)));
/// assert_eq!(sent_to.count_ones(), 1);
/// sent_to.fill(false);
/// assert!(sent_to.is_all_false());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolVector {
    len: usize,
    words: Vec<u64>,
}

impl BoolVector {
    /// Creates an all-`false` vector of length `n`.
    pub fn new(n: usize) -> Self {
        BoolVector {
            len: n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Creates an all-`true` vector of length `n`.
    pub fn all_true(n: usize) -> Self {
        let mut v = BoolVector::new(n);
        v.fill(true);
        v
    }

    /// Builds a vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let bools: Vec<bool> = bools.into_iter().collect();
        let mut v = BoolVector::new(bools.len());
        for (i, b) in bools.iter().enumerate() {
            v.set(ProcessId::new(i), *b);
        }
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the entry of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn get(&self, process: ProcessId) -> bool {
        let i = process.index();
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the entry of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn set(&mut self, process: ProcessId, value: bool) {
        let i = process.index();
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        self.clear_tail();
    }

    /// Word-parallel `self[k] := self[k] ∧ other[k]` for all `k`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &BoolVector) {
        assert_eq!(
            self.len, other.len,
            "boolean vectors must have the same length"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Word-parallel `self[k] := self[k] ∨ other[k]` for all `k`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &BoolVector) {
        assert_eq!(
            self.len, other.len,
            "boolean vectors must have the same length"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every entry is `false`.
    pub fn is_all_false(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if at least one entry is `true`.
    pub fn any(&self) -> bool {
        !self.is_all_false()
    }

    /// Iterates over the processes whose entry is `true`.
    pub fn ones(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let len = self.len;
            let mut w = word;
            std::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = wi * 64 + bit;
                    if idx < len {
                        return Some(ProcessId::new(idx));
                    }
                }
                None
            })
        })
    }

    /// Iterates over all entries as booleans, in process order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(ProcessId::new(i)))
    }

    /// Size in bytes when piggybacked on a message (`⌈n/8⌉`).
    pub fn piggyback_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Clears padding bits above `len` so that `fill(true)` and word-wise
    /// operations keep `count_ones` exact.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BoolVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoolVector[")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if b { 'T' } else { 'F' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn new_is_all_false() {
        let v = BoolVector::new(70);
        assert_eq!(v.len(), 70);
        assert!(v.is_all_false());
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn set_get_across_word_boundary() {
        let mut v = BoolVector::new(130);
        v.set(p(0), true);
        v.set(p(63), true);
        v.set(p(64), true);
        v.set(p(129), true);
        assert!(v.get(p(0)) && v.get(p(63)) && v.get(p(64)) && v.get(p(129)));
        assert!(!v.get(p(1)));
        assert_eq!(v.count_ones(), 4);
        v.set(p(64), false);
        assert!(!v.get(p(64)));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn fill_true_respects_length() {
        let mut v = BoolVector::new(70);
        v.fill(true);
        assert_eq!(v.count_ones(), 70);
        assert!(v.iter().all(|b| b));
    }

    #[test]
    fn all_true_constructor() {
        let v = BoolVector::all_true(3);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn and_or_assign_are_pointwise() {
        let a0 = BoolVector::from_bools([true, true, false, false]);
        let b = BoolVector::from_bools([true, false, true, false]);
        let mut anded = a0.clone();
        anded.and_assign(&b);
        assert_eq!(anded, BoolVector::from_bools([true, false, false, false]));
        let mut ored = a0.clone();
        ored.or_assign(&b);
        assert_eq!(ored, BoolVector::from_bools([true, true, true, false]));
    }

    #[test]
    fn ones_iterates_set_indices() {
        let mut v = BoolVector::new(200);
        for i in [0usize, 5, 63, 64, 127, 128, 199] {
            v.set(p(i), true);
        }
        let got: Vec<usize> = v.ones().map(|q| q.index()).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn any_reflects_content() {
        let mut v = BoolVector::new(10);
        assert!(!v.any());
        v.set(p(9), true);
        assert!(v.any());
    }

    #[test]
    fn piggyback_bytes_rounds_up() {
        assert_eq!(BoolVector::new(8).piggyback_bytes(), 1);
        assert_eq!(BoolVector::new(9).piggyback_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BoolVector::new(4);
        let _ = v.get(p(4));
    }

    #[test]
    fn debug_format_is_nonempty() {
        let v = BoolVector::from_bools([true, false]);
        assert_eq!(format!("{v:?}"), "BoolVector[T,F]");
    }
}
