//! Bit-packed square boolean matrix indexed by pairs of [`ProcessId`]s.

use std::fmt;

use crate::{BoolVector, ProcessId};

/// An `n × n` boolean matrix, packed 64 entries per word, with the row and
/// column bulk operations the BHMR protocol needs for its `causal_i` matrix.
///
/// Entry `(k, l)` of `causal_i` means: *to the knowledge of `P_i`, there is
/// an on-line trackable R-path from `C_{k,TDV_i[k]}` to `C_{l,TDV_i[l]}`*
/// (paper §4.1). The delivery rules of the protocol translate to:
///
/// * `row k := m.causal row k` when the message brings a new dependency on
///   `P_k` — [`BoolMatrix::copy_row_from`];
/// * `row k := row k ∨ m.causal row k` when the dependency is already known —
///   [`BoolMatrix::or_row_from`];
/// * transitive closure through the sender `s`:
///   `∀l: causal[l][i] := causal[l][i] ∨ causal[l][s]` —
///   [`BoolMatrix::or_column_into`].
///
/// # Example
///
/// ```rust
/// use rdt_causality::{BoolMatrix, ProcessId};
///
/// let k = ProcessId::new(0);
/// let j = ProcessId::new(1);
/// let mut causal = BoolMatrix::identity(2);
/// assert!(causal.get(k, k));
/// assert!(!causal.get(k, j));
/// causal.set(k, j, true);
/// assert!(causal.get(k, j));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BoolMatrix {
    /// Creates an all-`false` `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BoolMatrix {
            n,
            words_per_row,
            words: vec![0; n * words_per_row],
        }
    }

    /// Creates the `n × n` matrix with `true` on the diagonal and `false`
    /// elsewhere (the protocol's initial `causal_i`).
    pub fn identity(n: usize) -> Self {
        let mut m = BoolMatrix::new(n);
        for i in 0..n {
            m.set(ProcessId::new(i), ProcessId::new(i), true);
        }
        m
    }

    /// Builds a matrix from rows of booleans (row-major), mainly for tests.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows<const N: usize>(rows: [[bool; N]; N]) -> Self {
        let mut m = BoolMatrix::new(N);
        for (k, row) in rows.iter().enumerate() {
            for (l, &b) in row.iter().enumerate() {
                m.set(ProcessId::new(k), ProcessId::new(l), b);
            }
        }
        m
    }

    /// Side length of the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the matrix is `0 × 0`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, row: ProcessId, col: ProcessId) -> bool {
        let (r, c) = self.check(row, col);
        (self.words[r * self.words_per_row + c / 64] >> (c % 64)) & 1 == 1
    }

    /// Sets entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: ProcessId, col: ProcessId, value: bool) {
        let (r, c) = self.check(row, col);
        let word = &mut self.words[r * self.words_per_row + c / 64];
        let mask = 1u64 << (c % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Clears every entry of `row` to `false`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn clear_row(&mut self, row: ProcessId) {
        let r = row.index();
        assert!(r < self.n, "row out of range");
        let base = r * self.words_per_row;
        for w in &mut self.words[base..base + self.words_per_row] {
            *w = 0;
        }
    }

    /// `row := other's row` (word-parallel), used when a message brings a
    /// *new* dependency on `row`'s process.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `row` is out of range.
    pub fn copy_row_from(&mut self, row: ProcessId, other: &BoolMatrix) {
        assert_eq!(self.n, other.n, "matrices must have the same dimension");
        let r = row.index();
        assert!(r < self.n, "row out of range");
        let base = r * self.words_per_row;
        self.words[base..base + self.words_per_row]
            .copy_from_slice(&other.words[base..base + self.words_per_row]);
    }

    /// `row := row ∨ other's row` (word-parallel), used when the dependency
    /// is already known and knowledge is accumulated.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `row` is out of range.
    pub fn or_row_from(&mut self, row: ProcessId, other: &BoolMatrix) {
        assert_eq!(self.n, other.n, "matrices must have the same dimension");
        let r = row.index();
        assert!(r < self.n, "row out of range");
        let base = r * self.words_per_row;
        for (mine, theirs) in self.words[base..base + self.words_per_row]
            .iter_mut()
            .zip(&other.words[base..base + self.words_per_row])
        {
            *mine |= *theirs;
        }
    }

    /// `∀l: self[l][dst] := self[l][dst] ∨ self[l][src]` — the transitive
    /// closure step executed when `P_dst` delivers a message sent by
    /// `P_src`.
    ///
    /// # Panics
    ///
    /// Panics if either column is out of range.
    pub fn or_column_into(&mut self, src: ProcessId, dst: ProcessId) {
        let (s, d) = (src.index(), dst.index());
        assert!(s < self.n && d < self.n, "column out of range");
        for l in 0..self.n {
            let base = l * self.words_per_row;
            let src_bit = (self.words[base + s / 64] >> (s % 64)) & 1 == 1;
            if src_bit {
                self.words[base + d / 64] |= 1u64 << (d % 64);
            }
        }
    }

    /// Extracts `row` as a [`BoolVector`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: ProcessId) -> BoolVector {
        let r = row.index();
        assert!(r < self.n, "row out of range");
        BoolVector::from_bools((0..self.n).map(|c| self.get(row, ProcessId::new(c))))
    }

    /// Number of `true` entries in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Size in bytes when piggybacked on a message (`⌈n²/8⌉`).
    pub fn piggyback_bytes(&self) -> usize {
        (self.n * self.n).div_ceil(8)
    }

    fn check(&self, row: ProcessId, col: ProcessId) -> (usize, usize) {
        let (r, c) = (row.index(), col.index());
        assert!(r < self.n, "row {r} out of range for dimension {}", self.n);
        assert!(
            c < self.n,
            "column {c} out of range for dimension {}",
            self.n
        );
        (r, c)
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix {}x{} [", self.n, self.n)?;
        for r in 0..self.n {
            write!(f, "  ")?;
            for c in 0..self.n {
                write!(
                    f,
                    "{}",
                    if self.get(ProcessId::new(r), ProcessId::new(c)) {
                        'T'
                    } else {
                        '.'
                    }
                )?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn new_is_all_false() {
        let m = BoolMatrix::new(5);
        assert_eq!(m.count_ones(), 0);
        assert!(!m.get(p(4), p(4)));
    }

    #[test]
    fn identity_has_diagonal_only() {
        let m = BoolMatrix::identity(4);
        assert_eq!(m.count_ones(), 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.get(p(r), p(c)), r == c);
            }
        }
    }

    #[test]
    fn set_get_large_dimension() {
        let mut m = BoolMatrix::new(130);
        m.set(p(129), p(129), true);
        m.set(p(0), p(64), true);
        assert!(m.get(p(129), p(129)));
        assert!(m.get(p(0), p(64)));
        assert!(!m.get(p(64), p(0)));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn clear_row_only_touches_that_row() {
        let mut m = BoolMatrix::identity(3);
        m.set(p(1), p(2), true);
        m.clear_row(p(1));
        assert!(!m.get(p(1), p(1)));
        assert!(!m.get(p(1), p(2)));
        assert!(m.get(p(0), p(0)));
        assert!(m.get(p(2), p(2)));
    }

    #[test]
    fn copy_row_replaces_row() {
        let mut a = BoolMatrix::from_rows([[true, true], [false, false]]);
        let b = BoolMatrix::from_rows([[false, true], [true, true]]);
        a.copy_row_from(p(0), &b);
        assert!(!a.get(p(0), p(0)));
        assert!(a.get(p(0), p(1)));
        // row 1 untouched
        assert!(!a.get(p(1), p(0)));
    }

    #[test]
    fn or_row_accumulates() {
        let mut a = BoolMatrix::from_rows([[true, false], [false, false]]);
        let b = BoolMatrix::from_rows([[false, true], [true, true]]);
        a.or_row_from(p(0), &b);
        assert!(a.get(p(0), p(0)));
        assert!(a.get(p(0), p(1)));
        assert!(!a.get(p(1), p(0)));
    }

    #[test]
    fn or_column_into_propagates_transitively() {
        // causal[l][s] true implies causal[l][d] becomes true.
        let mut m = BoolMatrix::new(3);
        m.set(p(2), p(1), true); // l=2 reaches s=1
        m.or_column_into(p(1), p(0)); // delivery at P0 of a message from P1
        assert!(m.get(p(2), p(0)));
        assert!(m.get(p(2), p(1)));
        assert!(!m.get(p(1), p(0)));
    }

    #[test]
    fn piggyback_bytes_is_quadratic_bits() {
        assert_eq!(BoolMatrix::new(4).piggyback_bytes(), 2); // 16 bits
        assert_eq!(BoolMatrix::new(9).piggyback_bytes(), 11); // 81 bits
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let m = BoolMatrix::new(2);
        let _ = m.get(p(2), p(0));
    }

    #[test]
    fn debug_is_grid() {
        let m = BoolMatrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("T."));
        assert!(s.contains(".T"));
    }
}
