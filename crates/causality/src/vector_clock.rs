//! Fidge/Mattern vector clocks.

use std::cmp::Ordering;
use std::fmt;

use crate::ProcessId;

/// Result of comparing two vector clocks under the happened-before order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrdering {
    /// The two clocks are component-wise equal.
    Equal,
    /// The left clock happened before the right one.
    Before,
    /// The left clock happened after the right one.
    After,
    /// Neither clock happened before the other.
    Concurrent,
}

/// A vector clock timestamping events of an `n`-process computation.
///
/// `VectorClock` decides Lamport's happened-before relation: event `e`
/// happened before event `f` iff `clock(e) < clock(f)` component-wise (with
/// at least one strict inequality).
///
/// # Example
///
/// ```rust
/// use rdt_causality::{ClockOrdering, ProcessId, VectorClock};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut a = VectorClock::new(2);
/// let mut b = VectorClock::new(2);
/// a.tick(p0); // P0 executes an event
/// b.tick(p1); // P1 executes a concurrent event
/// assert_eq!(a.compare(&b), ClockOrdering::Concurrent);
/// b.merge_max(&a); // P1 receives a message from P0
/// b.tick(p1);
/// assert_eq!(a.compare(&b), ClockOrdering::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// Creates the zero clock for an `n`-process system.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Builds a clock from explicit entries.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the clock covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the component of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn get(&self, process: ProcessId) -> u64 {
        self.entries[process.index()]
    }

    /// Sets the component of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn set(&mut self, process: ProcessId, value: u64) {
        self.entries[process.index()] = value;
    }

    /// Increments the component of `process` (a local event occurred).
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn tick(&mut self, process: ProcessId) {
        self.entries[process.index()] += 1;
    }

    /// Component-wise maximum with `other` (message delivery rule).
    ///
    /// # Panics
    ///
    /// Panics if the two clocks have different lengths.
    pub fn merge_max(&mut self, other: &VectorClock) {
        assert_eq!(
            self.len(),
            other.len(),
            "vector clocks must have the same dimension"
        );
        for (mine, theirs) in self.entries.iter_mut().zip(&other.entries) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Compares the two clocks under happened-before.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks have different lengths.
    pub fn compare(&self, other: &VectorClock) -> ClockOrdering {
        assert_eq!(
            self.len(),
            other.len(),
            "vector clocks must have the same dimension"
        );
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.entries.iter().zip(&other.entries) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::Before,
            (false, true) => ClockOrdering::After,
            (true, true) => ClockOrdering::Concurrent,
        }
    }

    /// Returns `true` if `self` happened before `other` (strictly).
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrdering::Before
    }

    /// Returns `true` if neither clock happened before the other and they
    /// are not equal.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrdering::Concurrent
    }

    /// Iterates over `(process, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId::new(i), v))
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn zero_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.compare(&b), ClockOrdering::Equal);
    }

    #[test]
    fn tick_makes_strictly_after() {
        let a = VectorClock::new(2);
        let mut b = a.clone();
        b.tick(p(0));
        assert_eq!(a.compare(&b), ClockOrdering::Before);
        assert_eq!(b.compare(&a), ClockOrdering::After);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(p(0));
        b.tick(p(1));
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn merge_max_takes_componentwise_maximum() {
        let mut a = VectorClock::from_entries(vec![3, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 4, 5]);
        a.merge_max(&b);
        assert_eq!(a.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn message_transfer_establishes_happened_before() {
        // P0: e1 ; send(m)       P1: deliver(m) ; e2
        let mut sender = VectorClock::new(2);
        sender.tick(p(0)); // e1
        sender.tick(p(0)); // send(m)
        let piggyback = sender.clone();

        let mut receiver = VectorClock::new(2);
        receiver.tick(p(1)); // an earlier local event
        receiver.merge_max(&piggyback);
        receiver.tick(p(1)); // deliver(m)

        assert!(sender.happened_before(&receiver));
    }

    #[test]
    fn display_is_compact() {
        let a = VectorClock::from_entries(vec![1, 2, 3]);
        assert_eq!(a.to_string(), "[1,2,3]");
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn dimension_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.compare(&b);
    }

    #[test]
    fn iter_yields_process_ids() {
        let a = VectorClock::from_entries(vec![7, 9]);
        let collected: Vec<_> = a.iter().collect();
        assert_eq!(collected, vec![(p(0), 7), (p(1), 9)]);
    }
}
