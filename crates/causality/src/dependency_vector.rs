//! Wang's transitive dependency vector (`TDV`).

use std::fmt;

use crate::ProcessId;

/// The *transitive dependency vector* `TDV_i` of the RDT literature
/// (Wang; paper §3.3).
///
/// For the owning process `P_i`:
///
/// * `TDV_i[i]` is initialized to `1` and incremented each time a checkpoint
///   is taken, so it always equals the index of the current checkpoint
///   interval — which is also the index of the *next* local checkpoint.
/// * `TDV_i[j]` (`j ≠ i`) records the highest checkpoint index `y` of `P_j`
///   such that the R-path `C_{j,y} → C_{i,TDV_i[i]}` is on-line trackable.
///
/// With this mechanism, the R-path `C_{i,x} → C_{j,y}` is on-line trackable
/// iff `TDV_j^y[i] ≥ x`, where `TDV_j^y` is the value of `TDV_j` when
/// `C_{j,y}` was taken.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{DependencyVector, ProcessId};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut tdv = DependencyVector::initial(2, p0);
/// assert_eq!(tdv.get(p0), 1); // current interval index
/// tdv.increment_owner();       // P0 takes C_{0,1}
/// assert_eq!(tdv.get(p0), 2);
///
/// // P0 delivers a message from P1 carrying P1's TDV:
/// let remote = DependencyVector::initial(2, p1);
/// tdv.merge_max(&remote);
/// assert_eq!(tdv.get(p1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DependencyVector {
    owner: ProcessId,
    entries: Vec<u32>,
}

impl DependencyVector {
    /// Creates `P_owner`'s initial `TDV` in an `n`-process system:
    /// `TDV[owner] = 1` and every other entry `0`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range for `n` processes.
    pub fn initial(n: usize, owner: ProcessId) -> Self {
        assert!(
            owner.index() < n,
            "owner {owner} out of range for {n} processes"
        );
        let mut entries = vec![0; n];
        entries[owner.index()] = 1;
        DependencyVector { owner, entries }
    }

    /// Builds a dependency vector from explicit entries (used by tests and
    /// the offline replayer).
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range for `entries.len()` processes.
    pub fn from_entries(owner: ProcessId, entries: Vec<u32>) -> Self {
        assert!(owner.index() < entries.len(), "owner out of range");
        DependencyVector { owner, entries }
    }

    /// The process owning this vector.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Number of processes covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the vector covers zero processes (never the case
    /// for vectors built through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the entry of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn get(&self, process: ProcessId) -> u32 {
        self.entries[process.index()]
    }

    /// Sets the entry of `process` (used by the per-component delivery rules
    /// of the BHMR protocol, which update entries one case at a time).
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn set(&mut self, process: ProcessId, value: u32) {
        self.entries[process.index()] = value;
    }

    /// Index of the owner's current checkpoint interval (== index of the
    /// next local checkpoint). Shorthand for `self.get(self.owner())`.
    pub fn current_interval(&self) -> u32 {
        self.entries[self.owner.index()]
    }

    /// Increments the owner's entry; to be called exactly when the owner
    /// takes a local checkpoint (basic or forced).
    pub fn increment_owner(&mut self) {
        self.entries[self.owner.index()] += 1;
    }

    /// Component-wise maximum with a piggybacked vector (delivery rule
    /// `∀k: TDV_j[k] := max(TDV_j[k], m.TDV[k])`).
    ///
    /// The piggybacked vector's owner entry counts like any other component:
    /// the sender's entry is its current interval index, which is exactly
    /// the dependency the receiver must record.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge_max(&mut self, piggybacked: &DependencyVector) {
        assert_eq!(
            self.len(),
            piggybacked.len(),
            "dependency vectors must have the same dimension"
        );
        for (mine, theirs) in self.entries.iter_mut().zip(&piggybacked.entries) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Returns the processes `k` for which the piggybacked vector brings a
    /// *new* dependency, i.e. `m.TDV[k] > TDV[k]` (point (1.a) of §4.1).
    pub fn new_dependencies<'a>(
        &'a self,
        piggybacked: &'a DependencyVector,
    ) -> impl Iterator<Item = ProcessId> + 'a {
        self.entries
            .iter()
            .zip(&piggybacked.entries)
            .enumerate()
            .filter(|(_, (mine, theirs))| theirs > mine)
            .map(|(k, _)| ProcessId::new(k))
    }

    /// Returns `true` if the piggybacked vector brings at least one new
    /// dependency (`∃k: m.TDV[k] > TDV[k]`).
    pub fn has_new_dependency(&self, piggybacked: &DependencyVector) -> bool {
        self.new_dependencies(piggybacked).next().is_some()
    }

    /// Iterates over `(process, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, u32)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId::new(i), v))
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.entries
    }

    /// Size in bytes of this vector when piggybacked on a message
    /// (`4 * n`), used for control-information accounting.
    pub fn piggyback_bytes(&self) -> usize {
        4 * self.entries.len()
    }
}

impl fmt::Display for DependencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TDV{}[", self.owner.index())?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_vector_matches_paper_initialization() {
        // S0 of Figure 6: TDV_i[i] := 1 (after take_checkpoint sets 0 then
        // increments), every other entry 0.
        let tdv = DependencyVector::initial(4, p(2));
        assert_eq!(tdv.as_slice(), &[0, 0, 1, 0]);
        assert_eq!(tdv.current_interval(), 1);
        assert_eq!(tdv.owner(), p(2));
    }

    #[test]
    fn increment_owner_tracks_checkpoint_count() {
        let mut tdv = DependencyVector::initial(2, p(0));
        tdv.increment_owner();
        tdv.increment_owner();
        assert_eq!(tdv.current_interval(), 3);
        assert_eq!(tdv.get(p(1)), 0);
    }

    #[test]
    fn merge_max_records_transitive_dependencies() {
        let mut a = DependencyVector::from_entries(p(0), vec![2, 0, 3]);
        let b = DependencyVector::from_entries(p(1), vec![1, 5, 1]);
        a.merge_max(&b);
        assert_eq!(a.as_slice(), &[2, 5, 3]);
        assert_eq!(a.owner(), p(0)); // owner unchanged by merge
    }

    #[test]
    fn new_dependencies_identifies_strictly_larger_entries() {
        let a = DependencyVector::from_entries(p(0), vec![2, 0, 3]);
        let m = DependencyVector::from_entries(p(1), vec![2, 4, 5]);
        let fresh: Vec<_> = a.new_dependencies(&m).collect();
        assert_eq!(fresh, vec![p(1), p(2)]);
        assert!(a.has_new_dependency(&m));
    }

    #[test]
    fn no_new_dependency_when_componentwise_smaller_or_equal() {
        let a = DependencyVector::from_entries(p(0), vec![2, 4, 3]);
        let m = DependencyVector::from_entries(p(1), vec![2, 4, 1]);
        assert!(!a.has_new_dependency(&m));
        assert_eq!(a.new_dependencies(&m).count(), 0);
    }

    #[test]
    fn trackability_test_matches_paper_definition() {
        // C_{i,x} -> C_{j,y} is on-line trackable iff TDV_j^y[i] >= x.
        // Simulate: P0 takes C_{0,1}; sends to P1; P1 takes C_{1,1}.
        let mut tdv0 = DependencyVector::initial(2, p(0));
        tdv0.increment_owner(); // C_{0,1} taken; current interval I_{0,2}
        let piggyback = tdv0.clone();

        let mut tdv1 = DependencyVector::initial(2, p(1));
        tdv1.merge_max(&piggyback);
        // TDV_1 now records dependency on interval 2 of P0, i.e. on C_{0,1}
        // ... C_{0,2}? No: entry = highest *interval* index = 2 means the
        // current state depends on events of I_{0,2}, i.e. on C_{0,1}.
        let tdv_at_c11 = tdv1.clone(); // value saved when C_{1,1} is taken
                                       // C_{0,1} -> C_{1,1} trackable: TDV_1^1[0] = 2 >= 1.
        assert!(tdv_at_c11.get(p(0)) >= 1);
    }

    #[test]
    fn piggyback_bytes_scales_with_n() {
        let tdv = DependencyVector::initial(8, p(0));
        assert_eq!(tdv.piggyback_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_out_of_range_panics() {
        let _ = DependencyVector::initial(2, p(5));
    }

    #[test]
    fn display_shows_owner_and_entries() {
        let tdv = DependencyVector::from_entries(p(1), vec![0, 3]);
        assert_eq!(tdv.to_string(), "TDV1[0,3]");
    }
}
