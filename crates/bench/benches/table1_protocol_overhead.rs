//! TAB-1 bench: the per-event cost of each protocol — what a message pays
//! at send time (piggyback construction) and at arrival (predicate
//! evaluation + control-variable update) — across system sizes.
//!
//! This quantifies the other axis of the paper's §5.2 trade-off: the BHMR
//! family buys fewer forced checkpoints with `O(n²)`-bit piggybacks and
//! matrix updates, FDAS with `O(n)` vectors, the classical protocols with
//! nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_causality::ProcessId;
use rdt_core::{Bhmr, Cbr, CicProtocol, Fdas};

fn bench_send(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_before_send");
    for &n in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("bhmr", n), &n, |b, &n| {
            let mut p = Bhmr::new(n, ProcessId::new(0));
            b.iter(|| black_box(p.before_send(ProcessId::new(1))));
        });
        group.bench_with_input(BenchmarkId::new("fdas", n), &n, |b, &n| {
            let mut p = Fdas::new(n, ProcessId::new(0));
            b.iter(|| black_box(p.before_send(ProcessId::new(1))));
        });
        group.bench_with_input(BenchmarkId::new("cbr", n), &n, |b, &n| {
            let mut p = Cbr::new(n, ProcessId::new(0));
            b.iter(|| black_box(p.before_send(ProcessId::new(1))));
        });
    }
    group.finish();
}

fn bench_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_on_arrival");
    for &n in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("bhmr", n), &n, |b, &n| {
            let mut receiver = Bhmr::new(n, ProcessId::new(0));
            let mut sender = Bhmr::new(n, ProcessId::new(1));
            sender.take_basic_checkpoint();
            let piggyback = sender.before_send(ProcessId::new(0)).piggyback;
            b.iter(|| black_box(receiver.on_message_arrival(ProcessId::new(1), &piggyback)));
        });
        group.bench_with_input(BenchmarkId::new("fdas", n), &n, |b, &n| {
            let mut receiver = Fdas::new(n, ProcessId::new(0));
            let mut sender = Fdas::new(n, ProcessId::new(1));
            sender.take_basic_checkpoint();
            let piggyback = sender.before_send(ProcessId::new(0)).piggyback;
            b.iter(|| black_box(receiver.on_message_arrival(ProcessId::new(1), &piggyback)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_send, bench_arrival
}
criterion_main!(benches);
