//! Theory-layer bench: the cost of the offline machinery — RDT
//! verification, R-graph closure, and min/max consistent global
//! checkpoints — as a function of run size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_causality::{CheckpointId, ProcessId};
use rdt_core::ProtocolKind;
use rdt_rgraph::characterization::{
    all_chains_doubled, all_chains_doubled_with, all_cm_paths_doubled, all_cm_paths_doubled_with,
};
use rdt_rgraph::{min_max, Pattern, PatternAnalysis, RGraph, RdtChecker};
use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};
use rdt_workloads::EnvironmentKind;

fn generated_pattern(messages: u64) -> Pattern {
    let config = SimConfig::new(6)
        .with_seed(7)
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 60 })
        .with_stop(StopCondition::MessagesSent(messages));
    let mut app = EnvironmentKind::Random.build(6, 20);
    run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut())
        .trace
        .to_pattern()
        .to_closed()
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdt_checker");
    for &messages in &[100u64, 400, 1_600] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &pattern,
            |b, pattern| {
                b.iter(|| black_box(RdtChecker::new(pattern).check().holds()));
            },
        );
    }
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgraph_closure");
    for &messages in &[400u64, 1_600] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    let graph = RGraph::new(pattern);
                    black_box(
                        graph
                            .reachability()
                            .reachable_count(CheckpointId::new(ProcessId::new(0), 0)),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_min_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_consistent_gc");
    for &messages in &[400u64, 1_600] {
        let pattern = generated_pattern(messages);
        let member = CheckpointId::new(
            ProcessId::new(0),
            pattern.last_checkpoint_index(ProcessId::new(0)) / 2,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &(pattern, member),
            |b, (pattern, member)| {
                b.iter(|| black_box(min_max::min_consistent_containing(pattern, &[*member])));
            },
        );
    }
    group.finish();
}

fn bench_characterizations(c: &mut Criterion) {
    // All three characterizations of one pattern: each checker rebuilding
    // its own artifacts versus all of them borrowing one `PatternAnalysis`.
    let mut group = c.benchmark_group("three_characterizations");
    for &messages in &[100u64, 400] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::new("rebuilt", messages),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    let r = RdtChecker::new(pattern).check().holds();
                    let chains = all_chains_doubled(pattern);
                    let cm = all_cm_paths_doubled(pattern);
                    black_box((r, chains, cm))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shared", messages),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    let analysis = PatternAnalysis::new(pattern);
                    let r = analysis.rdt_report().holds();
                    let chains = all_chains_doubled_with(&analysis);
                    let cm = all_cm_paths_doubled_with(&analysis);
                    black_box((r, chains, cm))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_checker, bench_closure, bench_min_gc, bench_characterizations
}
criterion_main!(benches);
