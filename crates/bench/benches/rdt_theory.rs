//! Theory-layer bench: the cost of the offline machinery — RDT
//! verification, R-graph closure, and min/max consistent global
//! checkpoints — as a function of run size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_causality::{CheckpointId, ProcessId};
use rdt_core::ProtocolKind;
use rdt_rgraph::{min_max, Pattern, RGraph, RdtChecker};
use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};
use rdt_workloads::EnvironmentKind;

fn generated_pattern(messages: u64) -> Pattern {
    let config = SimConfig::new(6)
        .with_seed(7)
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 60 })
        .with_stop(StopCondition::MessagesSent(messages));
    let mut app = EnvironmentKind::Random.build(6, 20);
    run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut())
        .trace
        .to_pattern()
        .to_closed()
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdt_checker");
    for &messages in &[100u64, 400, 1_600] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &pattern,
            |b, pattern| {
                b.iter(|| black_box(RdtChecker::new(pattern).check().holds()));
            },
        );
    }
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgraph_closure");
    for &messages in &[400u64, 1_600] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    let graph = RGraph::new(pattern);
                    black_box(
                        graph
                            .reachability()
                            .reachable_count(CheckpointId::new(ProcessId::new(0), 0)),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_min_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_consistent_gc");
    for &messages in &[400u64, 1_600] {
        let pattern = generated_pattern(messages);
        let member = CheckpointId::new(
            ProcessId::new(0),
            pattern.last_checkpoint_index(ProcessId::new(0)) / 2,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &(pattern, member),
            |b, (pattern, member)| {
                b.iter(|| black_box(min_max::min_consistent_containing(pattern, &[*member])));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_checker, bench_closure, bench_min_gc
}
criterion_main!(benches);
