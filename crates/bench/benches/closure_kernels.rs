//! Closure-kernel bench: the word-parallel SCC kernels against the naive
//! per-start DFS reference, on protocol-generated patterns.
//!
//! Two kernels are compared on the same inputs:
//!
//! * the message-chain closures ([`ZigzagReachability::new`] vs
//!   [`ZigzagReachability::new_naive`]);
//! * the R-graph reachability ([`RGraph::reachability`] vs
//!   [`RGraph::reachability_naive`]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_core::ProtocolKind;
use rdt_rgraph::{Pattern, RGraph, ZigzagReachability};
use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};
use rdt_workloads::EnvironmentKind;

fn generated_pattern(messages: u64) -> Pattern {
    let config = SimConfig::new(6)
        .with_seed(7)
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 60 })
        .with_stop(StopCondition::MessagesSent(messages));
    let mut app = EnvironmentKind::Random.build(6, 20);
    run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut())
        .trace
        .to_pattern()
        .to_closed()
}

fn bench_zigzag_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("zigzag_closure");
    for &messages in &[200u64, 800] {
        let pattern = generated_pattern(messages);
        group.bench_with_input(
            BenchmarkId::new("optimized", messages),
            &pattern,
            |b, pattern| {
                b.iter(|| black_box(ZigzagReachability::new(pattern)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", messages),
            &pattern,
            |b, pattern| {
                b.iter(|| black_box(ZigzagReachability::new_naive(pattern)));
            },
        );
    }
    group.finish();
}

fn bench_rgraph_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgraph_closure_kernel");
    for &messages in &[200u64, 800] {
        let graph = RGraph::new(&generated_pattern(messages));
        group.bench_with_input(
            BenchmarkId::new("optimized", messages),
            &graph,
            |b, graph| {
                b.iter(|| black_box(graph.reachability().total_reachable_pairs()));
            },
        );
        group.bench_with_input(BenchmarkId::new("naive", messages), &graph, |b, graph| {
            b.iter(|| black_box(graph.reachability_naive().total_reachable_pairs()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_zigzag_kernels, bench_rgraph_kernels
}
criterion_main!(benches);
