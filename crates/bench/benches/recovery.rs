//! REC-1 bench: recovery-line computation cost, on protocol-generated
//! patterns and on the worst-case domino pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_causality::ProcessId;
use rdt_core::ProtocolKind;
use rdt_recovery::{domino_pattern, recovery_line, Failure};
use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};
use rdt_workloads::EnvironmentKind;

fn bench_generated(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_line_generated");
    for &messages in &[500u64, 2_000] {
        let config = SimConfig::new(8)
            .with_seed(3)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 60 })
            .with_stop(StopCondition::MessagesSent(messages));
        let mut app = EnvironmentKind::Random.build(8, 20);
        let pattern = run_protocol_kind(ProtocolKind::Bhmr, &config, app.as_mut())
            .trace
            .to_pattern()
            .to_closed();
        let process = ProcessId::new(0);
        let cap = pattern.last_checkpoint_index(process).saturating_sub(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(messages),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    black_box(recovery_line(
                        pattern,
                        &[Failure {
                            process,
                            resume_cap: cap,
                        }],
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_domino(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_line_domino");
    for &rounds in &[50usize, 500] {
        let pattern = domino_pattern(rounds);
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    // Worst case: the fixpoint unzips every round.
                    black_box(recovery_line(
                        pattern,
                        &[Failure {
                            process: ProcessId::new(0),
                            resume_cap: 0,
                        }],
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generated, bench_domino
}
criterion_main!(benches);
