//! FIG-8 bench: one full simulation run per protocol in the **overlapping
//! group communication environment** (Figure 8 of the evaluation).
//!
//! Regenerate the figure's data with
//! `cargo run -p rdt-bench --release --bin experiments -- fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rdt_bench::MEAN_SEND_INTERVAL;
use rdt_core::ProtocolKind;
use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};
use rdt_workloads::EnvironmentKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_groups");
    for &protocol in &[
        ProtocolKind::Bhmr,
        ProtocolKind::BhmrNoSimple,
        ProtocolKind::Fdas,
        ProtocolKind::Cbr,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.name()),
            &protocol,
            |b, &protocol| {
                let config = SimConfig::new(12)
                    .with_seed(1)
                    .with_basic_checkpoints(BasicCheckpointModel::Exponential {
                        mean: 4 * MEAN_SEND_INTERVAL,
                    })
                    .with_stop(StopCondition::MessagesSent(1_000));
                b.iter(|| {
                    let mut app = EnvironmentKind::Groups.build(12, MEAN_SEND_INTERVAL);
                    black_box(run_protocol_kind(protocol, &config, app.as_mut()))
                        .stats
                        .total
                        .forced_checkpoints
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
