//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5.3), plus the extra validation experiments of DESIGN.md.
//!
//! The binary `experiments` drives everything:
//!
//! ```text
//! cargo run -p rdt-bench --release --bin experiments -- all
//! cargo run -p rdt-bench --release --bin experiments -- fig7
//! ```
//!
//! Each experiment prints the table the paper's figure plots and writes a
//! machine-readable JSON document under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocs;
pub mod experiment;
pub mod metrics;
pub mod parallel;
pub mod report;

pub use experiment::{
    ablation, certify_scale, closure_bench, compaction_bench, coordinated, corollary45, figure,
    incremental_vs_batch, necessity, protocol_set, rdt_check, recovery_exec,
    recovery_exec_protocols, recovery_experiment, scaling, sensitivity, sim_throughput, table1,
    AblationResult, CertifyReplayRow, CertifyScaleResult, CertifyScaleRun, ClosureBenchResult,
    CompactionBenchResult, CompactionDecile, CoordinatedResult, Cor45Result, FigureResult,
    IncrementalBenchResult, IncrementalBenchRow, NecessityResult, PointOutcome, ProtocolPoint,
    RdtCheckResult, RecoveryExecResult, RecoveryExecRow, RecoveryResult, ScalingResult,
    SensitivityResult, SimThroughputResult, SimThroughputRow, Sweep, SweepPoint, SweepRow,
    Table1Result, MEAN_DELAY, MEAN_SEND_INTERVAL,
};
pub use parallel::{
    run_sweep, run_sweep_points, run_sweep_with_metrics, SweepMetrics, SweepOptions,
};
pub use report::{render_figure, render_recovery_exec, render_table1, write_json};
