//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! experiments [all|fig7|fig8|fig9|table1|cor45|rdtcheck|certify|certify-scale|sim-throughput|compaction|ablation|recovery|recovery-exec] \
//!     [--quick] [--threads N]
//! ```
//!
//! `--quick` shrinks message counts and seed sets for smoke runs.
//! `--threads N` sets the worker count of the parallel sweep engine used
//! for the figure sweeps (default: one per CPU); results are bit-identical
//! for every `N`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;

use rdt_bench::{
    ablation, certify_scale, closure_bench, compaction_bench, coordinated, corollary45,
    incremental_vs_batch, necessity, rdt_check, recovery_exec, recovery_experiment, render_figure,
    render_recovery_exec, render_table1, run_sweep_with_metrics, scaling, sensitivity,
    sim_throughput, table1, write_json, CompactionDecile, Sweep, SweepOptions,
};
use rdt_workloads::EnvironmentKind;

/// System allocator wrapped to count every allocation into
/// `rdt_bench::allocs`, so BENCH-SIM-THROUGHPUT can report heap
/// allocations per run. The workspace libraries forbid `unsafe`; this
/// shim is the one sanctioned exception and lives only in the binary.
struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter update is one atomic increment
// that itself never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        rdt_bench::allocs::note_alloc();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        rdt_bench::allocs::note_alloc();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Scale {
    seeds: Vec<u64>,
    messages: u64,
    check_seeds: Vec<u64>,
    check_messages: u64,
}

impl Scale {
    fn full() -> Self {
        Scale {
            seeds: (1..=10).collect(),
            messages: 4_000,
            check_seeds: (1..=5).collect(),
            check_messages: 300,
        }
    }

    fn quick() -> Self {
        Scale {
            seeds: vec![1, 2],
            messages: 400,
            check_seeds: vec![1],
            check_messages: 80,
        }
    }
}

fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("RDT_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
}

fn run_figures(which: &str, scale: &Scale, dir: &std::path::Path, options: &SweepOptions) {
    let multipliers = [1u64, 2, 4, 8, 16];
    let specs: &[(&str, EnvironmentKind, usize)] = &[
        ("fig7", EnvironmentKind::Random, 8),
        ("fig8", EnvironmentKind::Groups, 12),
        ("fig9", EnvironmentKind::ClientServer, 8),
    ];
    for &(name, env, n) in specs {
        if which != "all" && which != name {
            continue;
        }
        let sweep = Sweep::figure(name, env, n, &multipliers, &scale.seeds, scale.messages);
        let (result, metrics) = run_sweep_with_metrics(&sweep, options);
        print!("{}", render_figure(&result));
        println!("  [{name}] {}", metrics.render());
        match write_json(dir, name, &result) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write {name}.json: {err}\n"),
        }
    }
}

struct Cli {
    quick: bool,
    threads: Option<usize>,
    scope: Option<String>,
    which: String,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        threads: None,
        scope: None,
        which: "all".to_string(),
    };
    let mut positional = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--quick" {
            cli.quick = true;
        } else if let Some(value) = arg.strip_prefix("--scope=") {
            cli.scope = Some(value.to_string());
        } else if arg == "--scope" {
            let value = iter.next().ok_or("--scope needs a value (n,m or n,m,b)")?;
            cli.scope = Some(value.clone());
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            cli.threads = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid thread count: {value:?}"))?,
            );
        } else if arg == "--threads" {
            let value = iter.next().ok_or("--threads needs a value")?;
            cli.threads = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid thread count: {value:?}"))?,
            );
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else if positional.replace(arg.clone()).is_some() {
            return Err(format!("unexpected extra argument {arg:?}"));
        }
    }
    if cli.threads == Some(0) {
        return Err("--threads must be at least 1".to_string());
    }
    if let Some(which) = positional {
        cli.which = which;
    }
    Ok(cli)
}

fn main() -> ExitCode {
    rdt_bench::allocs::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let options = match cli.threads {
        Some(threads) => SweepOptions::with_threads(threads),
        None => SweepOptions::auto(),
    };
    let quick = cli.quick;
    let which = cli.which;
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let dir = results_dir();

    let known = [
        "all",
        "fig7",
        "fig8",
        "fig9",
        "table1",
        "cor45",
        "rdtcheck",
        "certify",
        "certify-scale",
        "sim-throughput",
        "incremental",
        "compaction",
        "ablation",
        "sensitivity",
        "coordinated",
        "scaling",
        "necessity",
        "recovery",
        "recovery-exec",
    ];
    if !known.contains(&which.as_str()) {
        eprintln!("unknown experiment {which:?}; expected one of {known:?}");
        return ExitCode::FAILURE;
    }

    run_figures(&which, &scale, &dir, &options);

    if which == "all" || which == "table1" {
        let result = table1(8, &scale.seeds, scale.messages);
        print!("{}", render_table1(&result));
        match write_json(&dir, "table1", &result) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write table1.json: {err}\n"),
        }
    }

    if which == "all" || which == "cor45" {
        println!("== COR-4.5 — on-the-fly min consistent GC vs offline R-graph fixpoint ==");
        for &env in &[EnvironmentKind::Random, EnvironmentKind::ClientServer] {
            let result = corollary45(env, 4, &scale.check_seeds, scale.check_messages);
            println!(
                "  {:>14}: {} checkpoints checked, {} mismatches ({})",
                env.name(),
                result.checked,
                result.mismatches,
                if result.mismatches == 0 { "OK" } else { "FAIL" }
            );
            if write_json(&dir, &format!("cor45-{}", env.name()), &result).is_err() {
                eprintln!("  !! could not write cor45 results");
            }
            if result.mismatches > 0 {
                return ExitCode::FAILURE;
            }
        }
        println!();
    }

    if which == "all" || which == "rdtcheck" {
        println!("== RDT-CHECK — offline verification of every protocol in every environment ==");
        let result = rdt_check(4, &scale.check_seeds, scale.check_messages);
        let total = result.runs.len();
        println!(
            "  {total} runs; unexpected RDT failures: {} ({}); uncoordinated runs that happened to satisfy RDT: {}",
            result.unexpected_failures,
            if result.unexpected_failures == 0 { "OK" } else { "FAIL" },
            result.uncoordinated_passes,
        );
        let _ = write_json(&dir, "rdtcheck", &result);
        if result.unexpected_failures > 0 {
            return ExitCode::FAILURE;
        }
        println!();

        println!("== BENCH-RDTCHECK — word-parallel closure kernels vs naive reference ==");
        let sizes: &[u64] = if quick { &[100, 400] } else { &[400, 1_600] };
        let bench = closure_bench(sizes, if quick { 3 } else { 5 });
        println!(
            "  {:>10} {:>11} {:>14} {:>14} {:>9}",
            "messages", "delivered", "naive (ns)", "optimized (ns)", "speedup"
        );
        for &(messages, delivered, naive_ns, optimized_ns, speedup) in &bench.rows {
            println!(
                "  {messages:>10} {delivered:>11} {naive_ns:>14} {optimized_ns:>14} {speedup:>8.1}x"
            );
        }
        match write_json(&dir, "BENCH_rdtcheck", &bench) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_rdtcheck.json: {err}\n"),
        }
    }

    if which == "all" || which == "sim-throughput" {
        println!("== BENCH-SIM-THROUGHPUT — packed round-executor engine vs legacy protocols ==");
        let (messages, reps) = if quick { (800, 3) } else { (4_000, 5) };
        let bench = sim_throughput(messages, reps);
        println!(
            "  {:>8} {:>16} {:>3} {:>8} {:>12} {:>12} {:>8} {:>10} {:>10}",
            "env",
            "protocol",
            "n",
            "events",
            "legacy (ns)",
            "exec (ns)",
            "speedup",
            "allocs-l",
            "allocs-x"
        );
        for row in &bench.rows {
            println!(
                "  {:>8} {:>16} {:>3} {:>8} {:>12} {:>12} {:>7.2}x {:>10} {:>10}",
                row.environment,
                row.protocol,
                row.n,
                row.events,
                row.legacy_ns,
                row.executor_ns,
                row.speedup,
                row.legacy_allocs,
                row.executor_allocs
            );
        }
        match write_json(&dir, "BENCH_sim_throughput", &bench) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_sim_throughput.json: {err}\n"),
        }
        // Regression gate: the executor engine must actually pay for its
        // complexity on the headline configuration.
        if let Err(reason) = bench.gate() {
            eprintln!("  !! sim-throughput gate FAIL: {reason}");
            return ExitCode::FAILURE;
        }
    }

    if which == "all" || which == "incremental" {
        println!("== BENCH-INCREMENTAL — append-only engine vs from-scratch rebuilds ==");
        let sizes: &[u64] = if quick {
            &[400, 1_600]
        } else {
            &[400, 800, 1_600, 3_200, 6_400]
        };
        let bench =
            incremental_vs_batch(sizes, if quick { 3 } else { 5 }, if quick { 8 } else { 16 });
        println!(
            "  {:>8} {:>12} {:>16} {:>18} {:>9} {:>14}",
            "events", "checkpoints", "incremental (ns)", "batch est. (ns)", "speedup", "events/sec"
        );
        for row in &bench.rows {
            println!(
                "  {:>8} {:>12} {:>16} {:>18} {:>8.1}x {:>14.0}",
                row.events,
                row.checkpoints,
                row.incremental_ns,
                row.batch_est_ns,
                row.speedup,
                row.events_per_sec
            );
        }
        match write_json(&dir, "BENCH_incremental", &bench) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_incremental.json: {err}\n"),
        }
        // Regression gate: once traces are non-trivial the engine must
        // beat rebuilding from scratch, at any scale.
        let floor = bench.min_speedup_at(1_600);
        if floor < 1.0 {
            eprintln!("  !! incremental slower than batch at >=1600 events ({floor:.2}x)");
            return ExitCode::FAILURE;
        }
    }

    if which == "all" || which == "compaction" {
        println!("== BENCH-COMPACTION — recovery-line compaction vs unbounded engine growth ==");
        // The compacted engine streams the full event count; the
        // uncompacted control runs a prefix (finishing the full stream
        // without compaction is the quadratic blow-up being shown).
        let (events, control_events, stride) = if quick {
            (100_000u64, 10_000u64, 1_000u64)
        } else {
            // The control's per-event cost grows linearly with the
            // resident closure, so its runtime is quadratic: 20k events
            // already show the collapse unambiguously, 50k would burn
            // minutes confirming the same verdict.
            (1_000_000, 20_000, 10_000)
        };
        let bench = compaction_bench(4, events, control_events, stride, 0xC04AC7);
        let table = |label: &str, deciles: &[CompactionDecile]| {
            println!(
                "  {label}: {:>7} {:>12} {:>14} {:>14}",
                "decile", "events", "events/sec", "resident"
            );
            for row in deciles {
                println!(
                    "  {:>width$} {:>7} {:>12} {:>14.0} {:>14}",
                    "",
                    row.decile,
                    row.events,
                    row.events_per_sec,
                    row.resident_nodes,
                    width = label.len() + 1
                );
            }
        };
        table("compacted  ", &bench.compacted);
        table("uncompacted", &bench.control);
        println!(
            "  throughput ratio (last/first decile): compacted {:.2}x, uncompacted {:.2}x",
            bench.compacted_throughput_ratio(),
            bench.control_throughput_ratio()
        );
        println!(
            "  {} compactions reclaimed {} rows; resident after final compaction: {} nodes",
            bench.compactions, bench.reclaimed_rows, bench.resident_after_final_compaction
        );
        match write_json(&dir, "BENCH_compaction", &bench) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_compaction.json: {err}\n"),
        }
        if let Err(reason) = bench.gate() {
            eprintln!("  !! compaction gate FAIL: {reason}");
            return ExitCode::FAILURE;
        }
    }

    if which == "all" || which == "certify" {
        println!("== CERTIFY — exhaustive small-scope certification of every protocol ==");
        let scope = match &cli.scope {
            Some(text) => match text.parse::<rdt_verify::Scope>() {
                Ok(scope) => scope,
                Err(err) => {
                    eprintln!("{err}");
                    return ExitCode::FAILURE;
                }
            },
            None if quick => rdt_verify::Scope::tiny(),
            // The full default scope: every pattern over 3 processes with
            // up to 4 messages and 1 basic checkpoint.
            None => match rdt_verify::Scope::new(3, 4) {
                Ok(scope) => scope,
                Err(err) => {
                    eprintln!("{err}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let certify_options = rdt_verify::CertifyOptions {
            threads: cli.threads.unwrap_or(0),
            ..rdt_verify::CertifyOptions::default()
        };
        let report = rdt_verify::certify(&scope, &certify_options);
        print!("{}", report.render());
        match write_json(&dir, "certify_report", &report) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write certify_report.json: {err}\n"),
        }
        if !report.certified_ok() {
            return ExitCode::FAILURE;
        }
    }

    if which == "all" || which == "certify-scale" {
        println!("== BENCH-CERTIFY — orbit-pruned certifier vs prefix baseline ==");
        // The timed head-to-head is defined single-core: the ≥2× gate
        // measures algorithmic pruning, not parallel speedup.
        let scope = match rdt_verify::Scope::new(3, 4) {
            Ok(scope) => scope,
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        };
        let push_scopes: Vec<(rdt_verify::Scope, Option<f64>)> = if quick {
            Vec::new()
        } else {
            let full_3_5 = match rdt_verify::Scope::with_basics(3, 5, 1) {
                Ok(scope) => scope,
                Err(err) => {
                    eprintln!("{err}");
                    return ExitCode::FAILURE;
                }
            };
            let sampled_4_4 = match rdt_verify::Scope::with_basics(4, 4, 1) {
                Ok(scope) => scope,
                Err(err) => {
                    eprintln!("{err}");
                    return ExitCode::FAILURE;
                }
            };
            vec![(full_3_5, None), (sampled_4_4, Some(0.02))]
        };
        let bench = certify_scale(&scope, 1, &push_scopes);
        println!(
            "  scope {}: {} structures in {} canonical orbits ({} pruned by symmetry)",
            bench.scope, bench.structures, bench.canonical, bench.orbits_pruned
        );
        println!(
            "  baseline {:.2}s, orbit-pruned {:.2}s -> {:.2}x (reports equal: {})",
            bench.baseline_ns as f64 / 1e9,
            bench.orbit_ns as f64 / 1e9,
            bench.speedup,
            bench.reports_equal
        );
        println!(
            "  {:.0} structures/s, prefix reuse {:.1}%, {} verdicts shared",
            bench.structures_per_sec,
            bench.prefix_reuse_ratio * 100.0,
            bench.dedup_hits
        );
        println!(
            "  {:>16} {:>12} {:>10}",
            "protocol", "replay ms", "patterns"
        );
        for row in &bench.replay {
            println!(
                "  {:>16} {:>12.1} {:>10}",
                row.protocol,
                row.ns as f64 / 1e6,
                row.patterns
            );
        }
        for run in &bench.scope_push {
            let mode = match run.sample {
                Some(frac) => format!("sampled {frac}"),
                None => "full".to_string(),
            };
            println!(
                "  push {} ({mode}): {} structures, {} replayed in {:.2}s, certified_ok={}",
                run.scope,
                run.structures,
                run.replayed,
                run.ns as f64 / 1e9,
                run.certified_ok
            );
        }
        match write_json(&dir, "BENCH_certify", &bench) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_certify.json: {err}\n"),
        }
        if let Err(reason) = bench.gate() {
            eprintln!("  !! certify-scale gate FAIL: {reason}");
            return ExitCode::FAILURE;
        }
    }

    if which == "all" || which == "ablation" {
        println!("== ABL-1 — piggyback size vs forced checkpoints (random environment) ==");
        let result = ablation(8, &scale.seeds, scale.messages);
        println!("  {:>16} {:>16} {:>10}", "protocol", "piggyback B/msg", "R");
        for (name, bytes, r) in &result.lattice {
            println!("  {name:>16} {bytes:>16.1} {r:>10.4}");
        }
        let _ = write_json(&dir, "ablation", &result);
        println!();
    }

    if which == "all" || which == "sensitivity" {
        println!("== ABL-2 — BHMR-vs-FDAS reduction vs reply density (groups, n=12) ==");
        let result = sensitivity(12, &scale.seeds, scale.messages);
        println!(
            "  {:>12} {:>10} {:>10} {:>11}",
            "reply prob", "R bhmr", "R fdas", "reduction"
        );
        for (prob, bhmr, fdas, reduction) in &result.rows {
            println!(
                "  {prob:>12.2} {bhmr:>10.4} {fdas:>10.4} {:>10.1}%",
                reduction * 100.0
            );
        }
        let _ = write_json(&dir, "sensitivity", &result);
        println!();
    }

    if which == "all" || which == "scaling" {
        println!("== SCALE-1 — R and piggyback cost vs number of processes (random env) ==");
        let result = scaling(&[4, 8, 16, 32], &scale.check_seeds, scale.messages);
        println!(
            "  {:>6} {:>10} {:>10} {:>16}",
            "n", "protocol", "R", "piggyback B/msg"
        );
        for (n, protocol, r, bytes) in &result.rows {
            println!("  {n:>6} {protocol:>10} {r:>10.4} {bytes:>16.1}");
        }
        let _ = write_json(&dir, "scaling", &result);
        println!();
    }

    if which == "all" || which == "coordinated" {
        println!("== COORD-1 — Chandy–Lamport snapshots vs CIC at matched checkpoint rates ==");
        let result = coordinated(8, &scale.check_seeds, 60 * 800);
        println!(
            "  {:>16} {:>12} {:>14} {:>16} {:>18}",
            "scheme", "checkpoints", "control msgs", "piggyback bytes", "rollback distance"
        );
        for (scheme, checkpoints, control, piggyback, distance) in &result.rows {
            println!(
                "  {scheme:>16} {checkpoints:>12} {control:>14} {piggyback:>16} {distance:>18.2}"
            );
        }
        let _ = write_json(&dir, "coordinated", &result);
        println!();
    }

    if which == "all" || which == "necessity" {
        println!("== NEC-1 — hindsight necessity of forced checkpoints (random env, n=4) ==");
        let result = necessity(4, &scale.check_seeds, scale.check_messages);
        println!(
            "  {:>10} {:>10} {:>11} {:>10} {:>22}",
            "protocol", "forced", "necessary", "ratio", "load-bearing basics"
        );
        for (protocol, examined, necessary, ratio, load_bearing, basics) in &result.rows {
            println!(
                "  {protocol:>10} {examined:>10} {necessary:>11} {:>9.1}% {:>15} / {:>4}",
                ratio * 100.0,
                load_bearing,
                basics
            );
        }
        let _ = write_json(&dir, "necessity", &result);
        println!();
    }

    if which == "all" || which == "recovery" {
        println!("== REC-1 — rollback damage after losing the latest checkpoint ==");
        let result = recovery_experiment(6, &scale.check_seeds, scale.check_messages);
        println!(
            "  {:>16} {:>22} {:>18} {:>14} {:>12}",
            "protocol", "mean ckpts discarded", "rolled-to-initial", "messages lost", "gc reclaim"
        );
        for (name, discarded, initial, lost, reclaim) in &result.rows {
            println!(
                "  {name:>16} {discarded:>22.2} {initial:>18.2} {lost:>14.2} {:>11.1}%",
                reclaim * 100.0
            );
        }
        let _ = write_json(&dir, "recovery", &result);
        println!();
    }

    if which == "all" || which == "recovery-exec" {
        // Crash runs carry the online analysis engine (the recovery line is
        // computed incrementally at crash time), whose append cost grows
        // with the checkpoint count — and both crashes fire within the
        // first few hundred ticks anyway, so longer runs only add
        // crash-free tail. Keep the runs short and spend the budget on
        // seeds instead.
        let messages = if quick { 400 } else { 800 };
        let result = recovery_exec(4, &scale.check_seeds, messages, 4.0, 2, options.threads);
        print!("{}", render_recovery_exec(&result));
        match write_json(&dir, "BENCH_recovery_exec", &result) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(err) => eprintln!("  !! could not write BENCH_recovery_exec.json: {err}\n"),
        }
        // Regression gate: the point of RDT — on the domino workload the
        // uncoordinated baseline must collapse to the initial state while
        // every RDT protocol keeps its worst rollback strictly smaller.
        if let Err(reason) = result.rdt_bounds_domino() {
            eprintln!("  !! recovery-exec gate FAIL: {reason}");
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
