//! Work-stealing parallel execution of [`Sweep`] grids.
//!
//! The engine enumerates the grid up front, then fans the points out over
//! the generic work-stealing pool of `rdt-sim`
//! ([`parallel_map_indexed`]): scoped worker threads pull from a shared
//! atomic cursor, so long-running points never leave siblings idle the way
//! static partitioning would. Each worker owns one [`SimScratch`], reusing
//! the event-heap and trace allocations across every point it runs.
//!
//! Determinism: a point's simulator seed is a pure function of the sweep
//! ([`SimRng::derive_seed`] over its grid index), so outcomes do not
//! depend on which worker ran a point or when; the pool returns them in
//! grid order and [`Sweep::merge`] folds them in that order. `run_sweep`
//! with any thread count — including 1 — is therefore bit-identical to
//! [`Sweep::run_sequential`].
//!
//! [`SimRng::derive_seed`]: rdt_sim::SimRng::derive_seed

use rdt_sim::{parallel_map_indexed, SimScratch, Stopwatch};

use crate::experiment::{FigureResult, PointOutcome, Sweep};
use crate::metrics::{progress_default, Progress};

pub use crate::metrics::SweepMetrics;

/// How a sweep is executed.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads. `1` runs the grid on the calling thread.
    pub threads: usize,
    /// Print a live progress line (points done, points/sec, elapsed) to
    /// stderr while the sweep runs.
    pub progress: bool,
}

impl SweepOptions {
    /// `threads` workers, progress only when stderr is a terminal.
    pub fn with_threads(threads: usize) -> Self {
        SweepOptions {
            threads: threads.max(1),
            progress: progress_default(),
        }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(threads)
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::auto()
    }
}

/// Runs every point of the sweep and returns the per-point outcomes in
/// grid order. This is the engine under [`run_sweep`]; determinism tests
/// use it directly to compare outcomes (stats and pattern digests) across
/// thread counts.
pub fn run_sweep_points(sweep: &Sweep, options: &SweepOptions) -> Vec<PointOutcome> {
    let points = sweep.grid();
    let mut progress = Progress::new(sweep, options.progress);
    let outcomes = parallel_map_indexed(
        &points,
        options.threads,
        SimScratch::new,
        |scratch, _, point| sweep.run_point(point, scratch),
        |done| progress.tick(done),
    );
    progress.finish();
    outcomes
}

/// Runs the sweep with the given options and merges the outcomes into the
/// figure report. Bit-identical to [`Sweep::run_sequential`] for every
/// thread count.
pub fn run_sweep(sweep: &Sweep, options: &SweepOptions) -> FigureResult {
    run_sweep_with_metrics(sweep, options).0
}

/// Like [`run_sweep`], also reporting wall-clock metrics.
pub fn run_sweep_with_metrics(
    sweep: &Sweep,
    options: &SweepOptions,
) -> (FigureResult, SweepMetrics) {
    let watch = Stopwatch::start();
    let outcomes = run_sweep_points(sweep, options);
    let metrics = SweepMetrics {
        points: outcomes.len(),
        threads: options.threads.max(1).min(outcomes.len().max(1)),
        elapsed: watch.elapsed(),
    };
    (sweep.merge(&outcomes), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_workloads::EnvironmentKind;

    fn tiny_sweep() -> Sweep {
        Sweep::figure("tiny", EnvironmentKind::Random, 3, &[2, 4], &[1, 2], 80)
    }

    fn quiet(threads: usize) -> SweepOptions {
        SweepOptions {
            threads,
            progress: false,
        }
    }

    #[test]
    fn parallel_outcomes_match_sequential_exactly() {
        let sweep = tiny_sweep();
        let sequential = run_sweep_points(&sweep, &quiet(1));
        for threads in [2, 4] {
            let parallel = run_sweep_points(&sweep, &quiet(threads));
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn merged_reports_are_identical_across_thread_counts() {
        use rdt_json::ToJson;
        let sweep = tiny_sweep();
        let baseline = sweep.run_sequential().to_json().pretty();
        for threads in [1, 3] {
            let report = run_sweep(&sweep, &quiet(threads)).to_json().pretty();
            assert_eq!(report, baseline, "{threads} threads");
        }
    }

    #[test]
    fn outcomes_arrive_sorted_and_complete() {
        let sweep = tiny_sweep();
        let outcomes = run_sweep_points(&sweep, &quiet(4));
        assert_eq!(outcomes.len(), sweep.len());
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
        }
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let sweep = Sweep::figure("micro", EnvironmentKind::Ring, 2, &[2], &[1], 20);
        let a = run_sweep_points(&sweep, &quiet(64));
        let b = run_sweep_points(&sweep, &quiet(1));
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_count_the_grid() {
        let sweep = tiny_sweep();
        let (_, metrics) = run_sweep_with_metrics(&sweep, &quiet(2));
        assert_eq!(metrics.points, sweep.len());
        assert_eq!(metrics.threads, 2);
        assert!(metrics.points_per_sec() > 0.0);
        assert!(metrics.render().contains("points"));
    }
}
