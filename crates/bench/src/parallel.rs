//! Work-stealing parallel execution of [`Sweep`] grids.
//!
//! The engine enumerates the grid up front, then fans the points out over
//! scoped worker threads that pull from a shared atomic cursor: an idle
//! worker "steals" the next undone point, so long-running points never
//! leave siblings idle the way static partitioning would. Each worker owns
//! one [`SimScratch`], reusing the event-heap and trace allocations across
//! every point it runs.
//!
//! Determinism: a point's simulator seed is a pure function of the sweep
//! ([`SimRng::derive_seed`] over its grid index), so outcomes do not
//! depend on which worker ran a point or when; [`Sweep::merge`] then folds
//! the outcomes back in grid order. `run_sweep` with any thread count —
//! including 1 — is therefore bit-identical to [`Sweep::run_sequential`].
//!
//! [`SimRng::derive_seed`]: rdt_sim::SimRng::derive_seed

use std::io::{IsTerminal, Write as _};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rdt_sim::SimScratch;

use crate::experiment::{FigureResult, PointOutcome, Sweep};

/// How a sweep is executed.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads. `1` runs the grid on the calling thread.
    pub threads: usize,
    /// Print a live progress line (points done, points/sec, elapsed) to
    /// stderr while the sweep runs.
    pub progress: bool,
}

impl SweepOptions {
    /// `threads` workers, progress only when stderr is a terminal.
    pub fn with_threads(threads: usize) -> Self {
        SweepOptions {
            threads: threads.max(1),
            progress: std::io::stderr().is_terminal(),
        }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(threads)
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::auto()
    }
}

/// Wall-clock metrics of one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Grid points run.
    pub points: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl SweepMetrics {
    /// Throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.points as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line rendering: `80 points in 3.2s (25.0 points/s, 4 threads)`.
    pub fn render(&self) -> String {
        format!(
            "{} points in {:.1}s ({:.1} points/s, {} thread{})",
            self.points,
            self.elapsed.as_secs_f64(),
            self.points_per_sec(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

struct Progress {
    enabled: bool,
    name: String,
    total: usize,
    done: usize,
    started: Instant,
    last_draw: Option<Instant>,
}

impl Progress {
    fn new(sweep: &Sweep, enabled: bool) -> Self {
        Progress {
            enabled,
            name: sweep.name.clone(),
            total: sweep.len(),
            done: 0,
            started: Instant::now(),
            last_draw: None,
        }
    }

    fn tick(&mut self) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let throttled = self
            .last_draw
            .is_some_and(|at| at.elapsed() < Duration::from_millis(100));
        if throttled && self.done < self.total {
            return;
        }
        self.last_draw = Some(Instant::now());
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        eprint!(
            "\r  [{}] {}/{} points, {:.1} points/s, {:.1}s elapsed",
            self.name, self.done, self.total, rate, elapsed
        );
        let _ = std::io::stderr().flush();
    }

    fn finish(&mut self) {
        if self.enabled && self.last_draw.is_some() {
            eprintln!();
        }
    }
}

/// Runs every point of the sweep and returns the per-point outcomes in
/// grid order. This is the engine under [`run_sweep`]; determinism tests
/// use it directly to compare outcomes (stats and pattern digests) across
/// thread counts.
pub fn run_sweep_points(sweep: &Sweep, options: &SweepOptions) -> Vec<PointOutcome> {
    let points = sweep.grid();
    let threads = options.threads.max(1).min(points.len().max(1));
    let mut progress = Progress::new(sweep, options.progress);

    let mut outcomes: Vec<PointOutcome> = if threads <= 1 {
        let mut scratch = SimScratch::new();
        points
            .iter()
            .map(|point| {
                let outcome = sweep.run_point(point, &mut scratch);
                progress.tick();
                outcome
            })
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<PointOutcome>();
        let mut collected = Vec::with_capacity(points.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let points = &points[..];
                scope.spawn(move || {
                    let mut scratch = SimScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else { break };
                        if tx.send(sweep.run_point(point, &mut scratch)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for outcome in rx {
                collected.push(outcome);
                progress.tick();
            }
        });
        collected
    };
    progress.finish();

    outcomes.sort_by_key(|outcome| outcome.index);
    outcomes
}

/// Runs the sweep with the given options and merges the outcomes into the
/// figure report. Bit-identical to [`Sweep::run_sequential`] for every
/// thread count.
pub fn run_sweep(sweep: &Sweep, options: &SweepOptions) -> FigureResult {
    run_sweep_with_metrics(sweep, options).0
}

/// Like [`run_sweep`], also reporting wall-clock metrics.
pub fn run_sweep_with_metrics(
    sweep: &Sweep,
    options: &SweepOptions,
) -> (FigureResult, SweepMetrics) {
    let started = Instant::now();
    let outcomes = run_sweep_points(sweep, options);
    let metrics = SweepMetrics {
        points: outcomes.len(),
        threads: options.threads.max(1).min(outcomes.len().max(1)),
        elapsed: started.elapsed(),
    };
    (sweep.merge(&outcomes), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_workloads::EnvironmentKind;

    fn tiny_sweep() -> Sweep {
        Sweep::figure("tiny", EnvironmentKind::Random, 3, &[2, 4], &[1, 2], 80)
    }

    fn quiet(threads: usize) -> SweepOptions {
        SweepOptions {
            threads,
            progress: false,
        }
    }

    #[test]
    fn parallel_outcomes_match_sequential_exactly() {
        let sweep = tiny_sweep();
        let sequential = run_sweep_points(&sweep, &quiet(1));
        for threads in [2, 4] {
            let parallel = run_sweep_points(&sweep, &quiet(threads));
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn merged_reports_are_identical_across_thread_counts() {
        use rdt_json::ToJson;
        let sweep = tiny_sweep();
        let baseline = sweep.run_sequential().to_json().pretty();
        for threads in [1, 3] {
            let report = run_sweep(&sweep, &quiet(threads)).to_json().pretty();
            assert_eq!(report, baseline, "{threads} threads");
        }
    }

    #[test]
    fn outcomes_arrive_sorted_and_complete() {
        let sweep = tiny_sweep();
        let outcomes = run_sweep_points(&sweep, &quiet(4));
        assert_eq!(outcomes.len(), sweep.len());
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
        }
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let sweep = Sweep::figure("micro", EnvironmentKind::Ring, 2, &[2], &[1], 20);
        let a = run_sweep_points(&sweep, &quiet(64));
        let b = run_sweep_points(&sweep, &quiet(1));
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_count_the_grid() {
        let sweep = tiny_sweep();
        let (_, metrics) = run_sweep_with_metrics(&sweep, &quiet(2));
        assert_eq!(metrics.points, sweep.len());
        assert_eq!(metrics.threads, 2);
        assert!(metrics.points_per_sec() > 0.0);
        assert!(metrics.render().contains("points"));
    }
}
