//! Text and JSON rendering of experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use rdt_core::ProtocolKind;
use rdt_json::ToJson;

use crate::experiment::{FigureResult, RecoveryExecResult, Table1Result};
use crate::protocol_set;

/// Renders a figure as a fixed-width text table: one row per
/// checkpoint-interval multiplier, one `R` column per protocol, plus the
/// reduction of the BHMR protocol versus FDAS.
pub fn render_figure(result: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} — R (forced/basic) in the {} environment, n={}, {} msgs, {} seeds ==",
        result.name,
        result.environment,
        result.n,
        result.messages,
        result.seeds.len()
    );
    let _ = write!(out, "{:>10} ", "ckpt-ivl");
    for p in protocol_set() {
        let _ = write!(out, "{:>15} ", p.name());
    }
    let _ = writeln!(out, "{:>12}", "bhmr-vs-fdas");
    for row in &result.rows {
        let _ = write!(out, "{:>9}x ", row.multiplier);
        for p in protocol_set() {
            match row.r_of(p) {
                Some(r) => {
                    let _ = write!(out, "{r:>15.4} ");
                }
                None => {
                    let _ = write!(out, "{:>15} ", "-");
                }
            }
        }
        match row.reduction_vs_fdas(ProtocolKind::Bhmr) {
            Some(red) => {
                let _ = writeln!(out, "{:>11.1}%", red * 100.0);
            }
            None => {
                let _ = writeln!(out, "{:>12}", "-");
            }
        }
    }
    out
}

/// Renders TAB-1: for every environment the full protocol comparison at
/// the fixed checkpoint interval.
pub fn render_table1(result: &Table1Result) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== TAB-1 — protocol comparison at checkpoint interval {}x mean send interval ==",
        result.multiplier
    );
    let _ = writeln!(
        out,
        "{:>14} {:>16} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "environment", "protocol", "R", "forced", "basic", "piggyback B/m", "vs fdas"
    );
    for env in &result.environments {
        for row in &env.rows {
            for point in &row.points {
                let vs = row
                    .reduction_vs_fdas(
                        point
                            .protocol
                            .parse()
                            .expect("points carry valid protocol names"),
                    )
                    .map(|r| format!("{:.1}%", r * 100.0))
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "{:>14} {:>16} {:>10.4} {:>12.1} {:>12.1} {:>14.1} {:>12}",
                    env.environment,
                    point.protocol,
                    point.mean_r,
                    point.mean_forced,
                    point.mean_basic,
                    point.piggyback_bytes_per_msg,
                    vs
                );
            }
        }
    }
    out
}

/// Renders BENCH-RECOVERY-EXEC: per environment × protocol, the damage a
/// live crash actually does once the simulator rolls the system back to
/// its recovery line.
pub fn render_recovery_exec(result: &RecoveryExecResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== BENCH-RECOVERY-EXEC — executed rollback under crash injection, n={}, {} msgs, \
         rate {}/1000 ticks, ≤{} crashes, {} seeds ==",
        result.n,
        result.messages,
        result.crash_rate,
        result.max_crashes,
        result.seeds.len()
    );
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>8} {:>9} {:>10} {:>10} {:>9} {:>8} {:>7} {:>6} {:>11} {:>8}",
        "env",
        "protocol",
        "crashes",
        "max-depth",
        "mean-depth",
        "mean-span",
        "to-init",
        "orphans",
        "undone",
        "lost",
        "span-ticks",
        "forced"
    );
    for row in &result.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>16} {:>8} {:>9} {:>10.2} {:>10.2} {:>9} {:>8} {:>7} {:>6} {:>11.1} {:>8}",
            row.environment,
            row.protocol,
            row.crashes,
            row.max_rollback_depth,
            row.mean_rollback_depth,
            row.mean_domino_span,
            row.rolled_to_initial,
            row.orphans_discarded,
            row.deliveries_undone,
            row.lost_replayed,
            row.mean_rollback_span_ticks,
            row.forced_checkpoints
        );
    }
    out
}

/// Writes any experiment result as pretty JSON under
/// `results/<name>.json` (creating the directory), and returns the path.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_json<T: ToJson>(
    results_dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(results_dir)?;
    let path = results_dir.join(format!("{name}.json"));
    let json = value.to_json().pretty();
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::figure;
    use rdt_workloads::EnvironmentKind;

    #[test]
    fn figure_rendering_contains_all_protocols() {
        let result = figure("figX", EnvironmentKind::Random, 3, &[2], &[1], 60);
        let text = render_figure(&result);
        for p in protocol_set() {
            assert!(text.contains(p.name()), "missing {p}");
        }
        assert!(text.contains("figX"));
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let result = figure("figY", EnvironmentKind::Ring, 3, &[2], &[1], 40);
        let dir = std::env::temp_dir().join("rdt-bench-test-results");
        let path = write_json(&dir, "figY", &result).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"name\": \"figY\""));
        let _ = std::fs::remove_file(path);
    }
}
