//! Wall-clock reporting for sweep executions: throughput metrics and the
//! live progress line.
//!
//! This module is part of the workspace's *metrics layer* — the only code
//! outside `rdt-sim`'s [`Stopwatch`](rdt_sim::Stopwatch) and the criterion
//! shim allowed to read the host clock (`rdt-lint`'s `wall-clock` rule
//! enforces that). Everything here is presentation: no measured duration
//! ever feeds back into simulation results.

use std::io::{IsTerminal, Write as _};
use std::time::{Duration, Instant};

use crate::experiment::Sweep;

/// Wall-clock metrics of one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Grid points run.
    pub points: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl SweepMetrics {
    /// Throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.points as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line rendering: `80 points in 3.2s (25.0 points/s, 4 threads)`.
    pub fn render(&self) -> String {
        format!(
            "{} points in {:.1}s ({:.1} points/s, {} thread{})",
            self.points,
            self.elapsed.as_secs_f64(),
            self.points_per_sec(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

/// Whether progress lines should default to on: only when stderr is a
/// terminal (CI logs stay clean).
pub(crate) fn progress_default() -> bool {
    std::io::stderr().is_terminal()
}

pub(crate) struct Progress {
    enabled: bool,
    name: String,
    total: usize,
    done: usize,
    started: Instant,
    last_draw: Option<Instant>,
}

impl Progress {
    pub(crate) fn new(sweep: &Sweep, enabled: bool) -> Self {
        Progress {
            enabled,
            name: sweep.name.clone(),
            total: sweep.len(),
            done: 0,
            started: Instant::now(),
            last_draw: None,
        }
    }

    pub(crate) fn tick(&mut self, done: usize) {
        self.done = done;
        if !self.enabled {
            return;
        }
        let throttled = self
            .last_draw
            .is_some_and(|at| at.elapsed() < Duration::from_millis(100));
        if throttled && self.done < self.total {
            return;
        }
        self.last_draw = Some(Instant::now());
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        eprint!(
            "\r  [{}] {}/{} points, {:.1} points/s, {:.1}s elapsed",
            self.name, self.done, self.total, rate, elapsed
        );
        let _ = std::io::stderr().flush();
    }

    pub(crate) fn finish(&mut self) {
        if self.enabled && self.last_draw.is_some() {
            eprintln!();
        }
    }
}
