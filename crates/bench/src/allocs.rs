//! Allocation-counting hook for the `experiments` binary.
//!
//! The workspace libraries forbid `unsafe`, so the counting
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper itself lives in the
//! benchmark *binary*; this module only holds the (safe) counter it
//! reports into. When no counting allocator is installed — unit tests,
//! downstream users — the counter stays at zero and [`enabled`] reports
//! `false`, so allocation columns read as zeros rather than lies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Records one heap allocation. Called by the benchmark binary's global
/// allocator on every `alloc`/`realloc`; `Relaxed` suffices because
/// readers only difference totals around single-threaded runs.
#[inline]
pub fn note_alloc() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Marks a counting allocator as installed (called once at benchmark
/// binary start-up, before any measurement).
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Whether a counting allocator is live, i.e. whether
/// [`allocation_count`] means anything.
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Total heap allocations observed so far (zero when no counting
/// allocator is installed).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_notes() {
        let before = allocation_count();
        note_alloc();
        note_alloc();
        assert!(allocation_count() >= before + 2);
    }
}
