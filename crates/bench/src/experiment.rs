//! The experiments themselves.

use rdt_causality::ProcessId;
use rdt_core::ProtocolKind;
use rdt_json::{Json, ToJson};
use rdt_recovery::{analyze, Failure};
use rdt_rgraph::{min_max, RdtChecker};
use rdt_sim::{
    run_protocol_kind, run_protocol_kind_legacy, run_protocol_kind_with_scratch,
    BasicCheckpointModel, DelayModel, RunStats, SimConfig, SimRng, SimScratch, StopCondition,
};
use rdt_workloads::EnvironmentKind;

/// Mean interval between two sends of one process, in ticks (fixes the
/// time scale of every experiment).
pub const MEAN_SEND_INTERVAL: u64 = 20;

/// Mean channel delay, in ticks.
pub const MEAN_DELAY: u64 = 50;

/// The protocol series plotted in the figures, most to least
/// sophisticated.
pub fn protocol_set() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Bhmr,
        ProtocolKind::BhmrNoSimple,
        ProtocolKind::BhmrCausalOnly,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
        ProtocolKind::Nras,
        ProtocolKind::Cas,
        ProtocolKind::Cbr,
    ]
}

fn config(n: usize, seed: u64, ckpt_mean: u64, messages: u64) -> SimConfig {
    SimConfig::new(n)
        .with_seed(seed)
        .with_delay(DelayModel::Exponential { mean: MEAN_DELAY })
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: ckpt_mean })
        .with_stop(StopCondition::MessagesSent(messages))
}

/// One protocol's aggregate over the seeds of one sweep point.
#[derive(Debug, Clone)]
pub struct ProtocolPoint {
    /// Protocol name.
    pub protocol: String,
    /// Mean of `R = forced / basic` over the seeds.
    pub mean_r: f64,
    /// Sample standard deviation of `R`.
    pub std_r: f64,
    /// Mean forced checkpoints per run.
    pub mean_forced: f64,
    /// Mean basic checkpoints per run.
    pub mean_basic: f64,
    /// Mean piggyback size per message, bytes.
    pub piggyback_bytes_per_msg: f64,
}

/// One x-axis point of a figure: the basic-checkpoint interval as a
/// multiple of the mean send interval, with every protocol's numbers.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Basic-checkpoint mean interval = `multiplier × MEAN_SEND_INTERVAL`.
    pub multiplier: u64,
    /// Per-protocol aggregates.
    pub points: Vec<ProtocolPoint>,
}

impl SweepRow {
    /// `R` of one protocol at this row, if present.
    pub fn r_of(&self, protocol: ProtocolKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.protocol == protocol.name())
            .map(|p| p.mean_r)
    }

    /// Relative reduction of forced checkpoints of `protocol` vs FDAS at
    /// this row: `(R_fdas - R_p) / R_fdas`.
    pub fn reduction_vs_fdas(&self, protocol: ProtocolKind) -> Option<f64> {
        let fdas = self.r_of(ProtocolKind::Fdas)?;
        let p = self.r_of(protocol)?;
        (fdas > 0.0).then(|| (fdas - p) / fdas)
    }
}

/// A complete figure: `R` per protocol over the checkpoint-interval sweep.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Experiment id (`fig7`, `fig8`, `fig9`).
    pub name: String,
    /// Environment swept.
    pub environment: String,
    /// Number of processes.
    pub n: usize,
    /// Messages injected per run.
    pub messages: u64,
    /// Seeds averaged over.
    pub seeds: Vec<u64>,
    /// One row per checkpoint-interval multiplier.
    pub rows: Vec<SweepRow>,
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

fn run_point(
    env: EnvironmentKind,
    n: usize,
    protocol: ProtocolKind,
    ckpt_mean: u64,
    seeds: &[u64],
    messages: u64,
) -> ProtocolPoint {
    let mut rs = Vec::new();
    let mut forced = Vec::new();
    let mut basics = Vec::new();
    let mut piggyback = Vec::new();
    for &seed in seeds {
        let mut app = env.build(n, MEAN_SEND_INTERVAL);
        let outcome = run_protocol_kind(
            protocol,
            &config(n, seed, ckpt_mean, messages),
            app.as_mut(),
        );
        rs.push(outcome.stats.total.forced_ratio());
        forced.push(outcome.stats.total.forced_checkpoints as f64);
        basics.push(outcome.stats.total.basic_checkpoints as f64);
        piggyback.push(outcome.stats.total.mean_piggyback_bytes());
    }
    let (mean_r, std_r) = mean_std(&rs);
    ProtocolPoint {
        protocol: protocol.name().to_string(),
        mean_r,
        std_r,
        mean_forced: mean_std(&forced).0,
        mean_basic: mean_std(&basics).0,
        piggyback_bytes_per_msg: mean_std(&piggyback).0,
    }
}

/// Runs one of the evaluation's figures: `R` per protocol while the basic
/// checkpoint interval sweeps over `multipliers × MEAN_SEND_INTERVAL`.
///
/// * `fig7` — [`EnvironmentKind::Random`]
/// * `fig8` — [`EnvironmentKind::Groups`]
/// * `fig9` — [`EnvironmentKind::ClientServer`]
///
/// This is the sequential execution of the corresponding [`Sweep`]; the
/// parallel engine ([`crate::parallel::run_sweep`]) produces bit-identical
/// results for the same grid.
pub fn figure(
    name: &str,
    env: EnvironmentKind,
    n: usize,
    multipliers: &[u64],
    seeds: &[u64],
    messages: u64,
) -> FigureResult {
    Sweep::figure(name, env, n, multipliers, seeds, messages).run_sequential()
}

/// A declarative (checkpoint-interval × protocol × seed) experiment grid.
///
/// The grid is enumerated up front into [`SweepPoint`]s: each point is one
/// independent simulator run whose RNG seed is derived *purely* from its
/// seed-list entry and its grid index ([`SimRng::derive_seed`]), never
/// from execution order. Any scheduler — the sequential loop in
/// [`Sweep::run_sequential`] or the work-stealing engine in
/// [`crate::parallel`] — therefore computes the same per-point outcomes,
/// and [`Sweep::merge`] folds them back in grid order so even the floating
/// point aggregation is bit-identical.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Experiment id (`fig7`, `fig8`, `fig9`, ...).
    pub name: String,
    /// Environment every point runs in.
    pub environment: EnvironmentKind,
    /// Number of processes.
    pub n: usize,
    /// Checkpoint-interval multipliers (the figure's x-axis).
    pub multipliers: Vec<u64>,
    /// Protocols compared (one figure series each).
    pub protocols: Vec<ProtocolKind>,
    /// Seed-list entries averaged over per cell.
    pub seeds: Vec<u64>,
    /// Messages injected per run.
    pub messages: u64,
}

/// One cell of a [`Sweep`] grid: a single simulator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Position in the enumerated grid (multiplier-major, then protocol,
    /// then seed).
    pub index: usize,
    /// Checkpoint-interval multiplier of this cell.
    pub multiplier: u64,
    /// Protocol of this cell.
    pub protocol: ProtocolKind,
    /// Seed-list entry this run is averaged under.
    pub seed: u64,
    /// The run's actual simulator seed:
    /// `SimRng::derive_seed(seed, index)`.
    pub sim_seed: u64,
}

/// What one [`SweepPoint`]'s run produces — everything [`Sweep::merge`]
/// and the determinism tests need, without retaining the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Grid index of the point this outcome belongs to.
    pub index: usize,
    /// The run's aggregate statistics.
    pub stats: RunStats,
    /// Structural digest of the run's checkpoint-and-communication
    /// pattern ([`rdt_rgraph::Pattern::digest`]): two runs produced the
    /// same execution iff their digests (and stats) agree.
    pub pattern_digest: u64,
}

impl Sweep {
    /// The sweep behind [`figure`]: the standard protocol set over
    /// `multipliers × MEAN_SEND_INTERVAL` checkpoint intervals.
    pub fn figure(
        name: &str,
        env: EnvironmentKind,
        n: usize,
        multipliers: &[u64],
        seeds: &[u64],
        messages: u64,
    ) -> Sweep {
        Sweep {
            name: name.to_string(),
            environment: env,
            n,
            multipliers: multipliers.to_vec(),
            protocols: protocol_set(),
            seeds: seeds.to_vec(),
            messages,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.multipliers.len() * self.protocols.len() * self.seeds.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the full grid, multiplier-major, then protocol, then
    /// seed. Point `index` is the position in this enumeration, and fixes
    /// the point's derived simulator seed.
    pub fn grid(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &multiplier in &self.multipliers {
            for &protocol in &self.protocols {
                for &seed in &self.seeds {
                    let index = points.len();
                    points.push(SweepPoint {
                        index,
                        multiplier,
                        protocol,
                        seed,
                        sim_seed: SimRng::derive_seed(seed, index as u64),
                    });
                }
            }
        }
        points
    }

    /// Runs one grid point. A pure function of the sweep and the point —
    /// workers may run points in any order on any thread.
    pub fn run_point(&self, point: &SweepPoint, scratch: &mut SimScratch) -> PointOutcome {
        let mut app = self.environment.build(self.n, MEAN_SEND_INTERVAL);
        let config = config(
            self.n,
            point.sim_seed,
            point.multiplier * MEAN_SEND_INTERVAL,
            self.messages,
        );
        run_protocol_kind_with_scratch(point.protocol, &config, app.as_mut(), scratch, |outcome| {
            PointOutcome {
                index: point.index,
                stats: outcome.stats.clone(),
                pattern_digest: outcome.trace.to_pattern().digest(),
            }
        })
    }

    /// Folds per-point outcomes (sorted by grid index, one per point) back
    /// into the figure report.
    ///
    /// The fold visits outcomes strictly in grid order, so the floating
    /// point accumulation is independent of the execution schedule that
    /// produced them.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is not exactly the grid, in index order.
    pub fn merge(&self, outcomes: &[PointOutcome]) -> FigureResult {
        assert_eq!(outcomes.len(), self.len(), "merge needs every grid point");
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i, "merge needs outcomes in grid order");
        }
        let per_cell = self.seeds.len();
        let mut cells = outcomes.chunks_exact(per_cell);
        let mut rows = Vec::with_capacity(self.multipliers.len());
        for &multiplier in &self.multipliers {
            let mut points = Vec::with_capacity(self.protocols.len());
            for &protocol in &self.protocols {
                let cell = cells.next().expect("length checked above");
                let rs: Vec<f64> = cell.iter().map(|o| o.stats.total.forced_ratio()).collect();
                let forced: Vec<f64> = cell
                    .iter()
                    .map(|o| o.stats.total.forced_checkpoints as f64)
                    .collect();
                let basics: Vec<f64> = cell
                    .iter()
                    .map(|o| o.stats.total.basic_checkpoints as f64)
                    .collect();
                let piggyback: Vec<f64> = cell
                    .iter()
                    .map(|o| o.stats.total.mean_piggyback_bytes())
                    .collect();
                let (mean_r, std_r) = mean_std(&rs);
                points.push(ProtocolPoint {
                    protocol: protocol.name().to_string(),
                    mean_r,
                    std_r,
                    mean_forced: mean_std(&forced).0,
                    mean_basic: mean_std(&basics).0,
                    piggyback_bytes_per_msg: mean_std(&piggyback).0,
                });
            }
            rows.push(SweepRow { multiplier, points });
        }
        FigureResult {
            name: self.name.clone(),
            environment: self.environment.name().to_string(),
            n: self.n,
            messages: self.messages,
            seeds: self.seeds.clone(),
            rows,
        }
    }

    /// Runs the whole grid on the calling thread, in grid order.
    pub fn run_sequential(&self) -> FigureResult {
        let mut scratch = SimScratch::new();
        let outcomes: Vec<PointOutcome> = self
            .grid()
            .iter()
            .map(|point| self.run_point(point, &mut scratch))
            .collect();
        self.merge(&outcomes)
    }
}

/// TAB-1: the cross-environment protocol comparison at a fixed mid-range
/// checkpoint interval.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One figure-style row per environment (single multiplier).
    pub environments: Vec<FigureResult>,
    /// Multiplier used.
    pub multiplier: u64,
}

/// Runs TAB-1.
pub fn table1(n: usize, seeds: &[u64], messages: u64) -> Table1Result {
    let multiplier = 4;
    let environments = [
        EnvironmentKind::Random,
        EnvironmentKind::Groups,
        EnvironmentKind::ClientServer,
        EnvironmentKind::Ring,
        EnvironmentKind::Pipeline,
    ]
    .iter()
    .map(|&env| {
        figure(
            &format!("table1-{}", env.name()),
            env,
            n,
            &[multiplier],
            seeds,
            messages,
        )
    })
    .collect();
    Table1Result {
        environments,
        multiplier,
    }
}

/// COR-4.5: cross-validation of the on-the-fly minimum consistent global
/// checkpoints against the offline R-graph fixpoint.
#[derive(Debug, Clone)]
pub struct Cor45Result {
    /// Checkpoints whose reported minimum was compared.
    pub checked: usize,
    /// Disagreements (must be 0 for RDT-ensuring protocols).
    pub mismatches: usize,
    /// Protocols included.
    pub protocols: Vec<String>,
}

/// Runs COR-4.5 over the dependency-tracking protocols.
pub fn corollary45(env: EnvironmentKind, n: usize, seeds: &[u64], messages: u64) -> Cor45Result {
    let protocols: Vec<ProtocolKind> = ProtocolKind::all()
        .iter()
        .copied()
        .filter(|k| k.tracks_dependencies())
        .collect();
    let mut checked = 0;
    let mut mismatches = 0;
    for &protocol in &protocols {
        for &seed in seeds {
            let mut app = env.build(n, MEAN_SEND_INTERVAL);
            let outcome = run_protocol_kind(
                protocol,
                &config(n, seed, 4 * MEAN_SEND_INTERVAL, messages),
                app.as_mut(),
            );
            let pattern = outcome.trace.to_pattern().to_closed();
            for records in &outcome.records {
                for record in records {
                    let Some(reported) = &record.min_consistent_gc else {
                        continue;
                    };
                    let offline = min_max::min_consistent_containing(&pattern, &[record.id]);
                    checked += 1;
                    match offline {
                        Some(gc) if gc.as_slice() == reported.as_slice() => {}
                        _ => mismatches += 1,
                    }
                }
            }
        }
    }
    Cor45Result {
        checked,
        mismatches,
        protocols: protocols.iter().map(|p| p.name().to_string()).collect(),
    }
}

/// RDT-CHECK: run every protocol in every environment and verify the
/// resulting pattern against the offline RDT checker.
#[derive(Debug, Clone)]
pub struct RdtCheckResult {
    /// `(protocol, environment, seed, holds)` for every run.
    pub runs: Vec<(String, String, u64, bool)>,
    /// Runs of RDT-ensuring protocols that failed the check (must be 0).
    pub unexpected_failures: usize,
    /// Runs of the uncoordinated control that *passed* (hidden
    /// dependencies simply did not arise on that seed).
    pub uncoordinated_passes: usize,
}

/// Runs RDT-CHECK.
pub fn rdt_check(n: usize, seeds: &[u64], messages: u64) -> RdtCheckResult {
    let mut runs = Vec::new();
    let mut unexpected_failures = 0;
    let mut uncoordinated_passes = 0;
    for &env in EnvironmentKind::all() {
        for &protocol in ProtocolKind::all() {
            for &seed in seeds {
                let mut app = env.build(n, MEAN_SEND_INTERVAL);
                let outcome = run_protocol_kind(
                    protocol,
                    &config(n, seed, 2 * MEAN_SEND_INTERVAL, messages),
                    app.as_mut(),
                );
                let holds = RdtChecker::new(&outcome.trace.to_pattern()).check().holds();
                if protocol.ensures_rdt() && !holds {
                    unexpected_failures += 1;
                }
                if protocol == ProtocolKind::Uncoordinated && holds {
                    uncoordinated_passes += 1;
                }
                runs.push((
                    protocol.name().to_string(),
                    env.name().to_string(),
                    seed,
                    holds,
                ));
            }
        }
    }
    RdtCheckResult {
        runs,
        unexpected_failures,
        uncoordinated_passes,
    }
}

/// BENCH-RDTCHECK: wall-clock comparison of the word-parallel closure
/// kernels against the naive per-bit reference, on the same
/// protocol-generated patterns the `rdtcheck` verification runs over.
#[derive(Debug, Clone)]
pub struct ClosureBenchResult {
    /// One row per pattern size: `(messages, delivered messages,
    /// naive nanoseconds, optimized nanoseconds, speedup)`.
    ///
    /// Each timing covers one full closure pass — both message-chain
    /// closures plus the R-graph reachability — and is the minimum over
    /// the measurement repetitions (the statistic least disturbed by
    /// scheduling noise).
    pub rows: Vec<(u64, u64, u64, u64, f64)>,
    /// Repetitions each timing is the minimum of.
    pub repetitions: u32,
}

impl ClosureBenchResult {
    /// Smallest speedup across the sizes (the headline regression metric).
    pub fn min_speedup(&self) -> f64 {
        self.rows
            .iter()
            .map(|&(_, _, _, _, s)| s)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs BENCH-RDTCHECK: for each size, generate a fig7-style pattern
/// (random environment, BHMR) and time the full closure pass — naive
/// per-start DFS kernel versus the word-parallel SCC kernel.
pub fn closure_bench(sizes: &[u64], repetitions: u32) -> ClosureBenchResult {
    use rdt_rgraph::{RGraph, ZigzagReachability};
    use rdt_sim::Stopwatch;

    let mut rows = Vec::with_capacity(sizes.len());
    for &messages in sizes {
        let mut app = EnvironmentKind::Random.build(8, MEAN_SEND_INTERVAL);
        let outcome = run_protocol_kind(
            ProtocolKind::Bhmr,
            &config(8, 7, 3 * MEAN_SEND_INTERVAL, messages),
            app.as_mut(),
        );
        let pattern = outcome.trace.to_pattern().to_closed();
        let graph = RGraph::new(&pattern);
        let delivered = pattern.delivered_messages().count() as u64;

        let time_min = |f: &dyn Fn() -> usize| -> u64 {
            let mut best = u64::MAX;
            for _ in 0..repetitions.max(1) {
                let watch = Stopwatch::start();
                std::hint::black_box(f());
                best = best.min(watch.elapsed().as_nanos() as u64);
            }
            best
        };
        let naive_ns = time_min(&|| {
            let zz = ZigzagReachability::new_naive(&pattern);
            graph.reachability_naive().total_reachable_pairs() + zz.delivered_messages().len()
        });
        let optimized_ns = time_min(&|| {
            let zz = ZigzagReachability::new(&pattern);
            graph.reachability().total_reachable_pairs() + zz.delivered_messages().len()
        });
        let speedup = naive_ns as f64 / optimized_ns.max(1) as f64;
        rows.push((messages, delivered, naive_ns, optimized_ns, speedup));
    }
    ClosureBenchResult { rows, repetitions }
}

/// One protocol × environment cell of BENCH-SIM-THROUGHPUT.
#[derive(Debug, Clone)]
pub struct SimThroughputRow {
    /// Protocol name.
    pub protocol: String,
    /// Environment name.
    pub environment: String,
    /// Number of processes (the environment's figure scale).
    pub n: usize,
    /// Trace events per run (sends + deliveries + checkpoints + crashes).
    /// Identical across the two engines — the differential suite pins
    /// their schedules byte-for-byte.
    pub events: u64,
    /// Full-run wall time on the legacy per-message-allocating protocol
    /// implementations, nanoseconds (min over the repetitions).
    pub legacy_ns: u64,
    /// Full-run wall time on the packed round-executor engine.
    pub executor_ns: u64,
    /// Events per second through the legacy engine.
    pub legacy_events_per_sec: f64,
    /// Events per second through the executor engine.
    pub executor_events_per_sec: f64,
    /// `legacy_ns / executor_ns`.
    pub speedup: f64,
    /// Heap allocations in one full legacy run (zero unless the
    /// benchmark binary's counting allocator is installed).
    pub legacy_allocs: u64,
    /// Heap allocations in one full executor run.
    pub executor_allocs: u64,
}

/// BENCH-SIM-THROUGHPUT: end-to-end simulator throughput per protocol ×
/// environment, packed round-executor engine versus the legacy protocol
/// implementations on identical schedules.
#[derive(Debug, Clone)]
pub struct SimThroughputResult {
    /// Messages injected per run.
    pub messages: u64,
    /// Repetitions each timing is the minimum of.
    pub repetitions: u32,
    /// Whether a counting allocator was live, i.e. whether the
    /// allocation columns are measurements rather than zeros.
    pub alloc_counting: bool,
    /// One row per protocol × environment.
    pub rows: Vec<SimThroughputRow>,
}

impl SimThroughputResult {
    /// The row for `environment` × `protocol`, if present.
    pub fn row(&self, environment: &str, protocol: ProtocolKind) -> Option<&SimThroughputRow> {
        self.rows
            .iter()
            .find(|row| row.environment == environment && row.protocol == protocol.name())
    }

    /// The regression gate: on BHMR in the random environment (the
    /// paper's fig. 7 configuration) the executor engine must beat the
    /// legacy engine by at least 1.5×, and — when allocation counting is
    /// live — must allocate strictly less over the whole run.
    ///
    /// # Errors
    ///
    /// Returns the failed criterion as a human-readable message.
    pub fn gate(&self) -> Result<(), String> {
        let row = self
            .row("random", ProtocolKind::Bhmr)
            .ok_or("missing bhmr/random row")?;
        if row.speedup < 1.5 {
            return Err(format!(
                "executor speedup on bhmr/random is {:.2}x, need >= 1.5x",
                row.speedup
            ));
        }
        if self.alloc_counting && row.executor_allocs >= row.legacy_allocs {
            return Err(format!(
                "executor run allocated {} times vs legacy {} — the zero-copy path regressed",
                row.executor_allocs, row.legacy_allocs
            ));
        }
        Ok(())
    }
}

/// Runs BENCH-SIM-THROUGHPUT: for each dependency-tracking protocol in
/// the random (fig. 7, n=8) and groups (fig. 8, n=12) environments, time
/// one full simulation on the packed round-executor engine
/// ([`run_protocol_kind`]) against the same schedule on the legacy
/// implementations ([`run_protocol_kind_legacy`]). A pilot run per
/// engine also differences the process-wide allocation counter (live
/// only under the benchmark binary's counting allocator).
pub fn sim_throughput(messages: u64, repetitions: u32) -> SimThroughputResult {
    use rdt_sim::Stopwatch;

    let environments = [
        (EnvironmentKind::Random, 8usize),
        (EnvironmentKind::Groups, 12),
    ];
    let kinds = [
        ProtocolKind::Bhmr,
        ProtocolKind::BhmrNoSimple,
        ProtocolKind::BhmrCausalOnly,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
    ];
    let mut rows = Vec::with_capacity(environments.len() * kinds.len());
    for &(env, n) in &environments {
        for &kind in &kinds {
            let cfg = config(n, 7, 3 * MEAN_SEND_INTERVAL, messages);
            let run = |legacy: bool| {
                let mut app = env.build(n, MEAN_SEND_INTERVAL);
                if legacy {
                    run_protocol_kind_legacy(kind, &cfg, app.as_mut())
                } else {
                    run_protocol_kind(kind, &cfg, app.as_mut())
                }
            };
            // Pilot runs: allocation counts (deterministic — runs are
            // seed-pure) and the event total, plus cache warm-up.
            let count_allocs = |legacy: bool| {
                let before = crate::allocs::allocation_count();
                let outcome = std::hint::black_box(run(legacy));
                let allocs = crate::allocs::allocation_count() - before;
                (allocs, outcome.trace.events().len() as u64)
            };
            let (legacy_allocs, events) = count_allocs(true);
            let (executor_allocs, executor_events) = count_allocs(false);
            assert_eq!(events, executor_events, "engines diverged on {kind}");
            // Interleave the two engines rep by rep so a load or
            // frequency excursion on a shared machine hits both timing
            // windows alike instead of skewing the ratio; min-over-reps
            // then discards the disturbed reps of each.
            let time_once = |legacy: bool| {
                let watch = Stopwatch::start();
                std::hint::black_box(run(legacy));
                watch.elapsed().as_nanos() as u64
            };
            let (mut legacy_ns, mut executor_ns) = (u64::MAX, u64::MAX);
            for _ in 0..repetitions.max(1) {
                legacy_ns = legacy_ns.min(time_once(true));
                executor_ns = executor_ns.min(time_once(false));
            }
            let per_sec = |ns: u64| events as f64 / (ns.max(1) as f64 / 1e9);
            rows.push(SimThroughputRow {
                protocol: kind.name().to_string(),
                environment: env.name().to_string(),
                n,
                events,
                legacy_ns,
                executor_ns,
                legacy_events_per_sec: per_sec(legacy_ns),
                executor_events_per_sec: per_sec(executor_ns),
                speedup: legacy_ns as f64 / executor_ns.max(1) as f64,
                legacy_allocs,
                executor_allocs,
            });
        }
    }
    SimThroughputResult {
        messages,
        repetitions,
        alloc_counting: crate::allocs::enabled(),
        rows,
    }
}

/// One trace length of BENCH-INCREMENTAL.
#[derive(Debug, Clone)]
pub struct IncrementalBenchRow {
    /// Trace events processed (sends + deliveries + checkpoints).
    pub events: u64,
    /// Checkpoints among those events.
    pub checkpoints: u64,
    /// Nanoseconds for the append-only engine to ingest the whole trace,
    /// querying the violation count after every event (min over reps).
    pub incremental_ns: u64,
    /// Estimated nanoseconds for the from-scratch strategy: rebuild the
    /// batch analysis on the event prefix after every event. Extrapolated
    /// from evenly spaced sampled prefixes (a Riemann sum of the measured
    /// per-prefix rebuild cost), since running all `events` rebuilds is
    /// exactly the quadratic blow-up this benchmark demonstrates.
    pub batch_est_ns: u64,
    /// `batch_est_ns / incremental_ns`.
    pub speedup: f64,
    /// Incremental ingest throughput, events per second.
    pub events_per_sec: f64,
}

/// BENCH-INCREMENTAL: per-event analysis maintained by the append-only
/// [`IncrementalAnalysis`](rdt_rgraph::IncrementalAnalysis) engine versus
/// rebuilding the batch pipeline from scratch after every event.
#[derive(Debug, Clone)]
pub struct IncrementalBenchResult {
    /// One row per trace length.
    pub rows: Vec<IncrementalBenchRow>,
    /// Repetitions each timing is the minimum of.
    pub repetitions: u32,
    /// Evenly spaced prefixes the batch estimate is extrapolated from.
    pub batch_samples: u32,
}

impl IncrementalBenchResult {
    /// Smallest speedup among rows with at least `events` trace events —
    /// the regression gate: incremental must never lose to from-scratch
    /// rebuilds once traces are non-trivial.
    pub fn min_speedup_at(&self, events: u64) -> f64 {
        self.rows
            .iter()
            .filter(|row| row.events >= events)
            .map(|row| row.speedup)
            .fold(f64::INFINITY, f64::min)
    }
}

fn prefix_pattern(n: usize, events: &[rdt_sim::TraceEvent]) -> rdt_rgraph::Pattern {
    use rdt_rgraph::{PatternBuilder, PatternMessageId};
    let mut builder = PatternBuilder::new(n);
    let mut map: Vec<Option<PatternMessageId>> = Vec::new();
    for event in events {
        match *event {
            rdt_sim::TraceEvent::Send {
                from, to, message, ..
            } => {
                if map.len() <= message.0 {
                    map.resize(message.0 + 1, None);
                }
                map[message.0] = Some(builder.send(from, to));
            }
            rdt_sim::TraceEvent::Deliver { message, .. } => {
                let id = map[message.0].expect("delivery of an unsent message");
                builder.deliver(id).expect("double delivery in trace");
            }
            rdt_sim::TraceEvent::Checkpoint { id, .. } => {
                builder.checkpoint(id.process);
            }
            rdt_sim::TraceEvent::Crash { .. } => {}
        }
    }
    builder.build().expect("prefix of a valid trace")
}

/// Runs BENCH-INCREMENTAL: for each length, generate a fig7-style BHMR
/// trace, truncate it to exactly that many events, and time (a) one
/// engine ingesting the trace with a violation query after every event
/// against (b) the estimated cost of rebuilding the batch analysis
/// ([`RdtChecker`] on the event prefix) after every event.
pub fn incremental_vs_batch(
    sizes: &[u64],
    repetitions: u32,
    batch_samples: u32,
) -> IncrementalBenchResult {
    use rdt_rgraph::IncrementalAnalysis;
    use rdt_sim::{Stopwatch, TraceEvent};

    let n = 8;
    let mut rows = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut app = EnvironmentKind::Random.build(n, MEAN_SEND_INTERVAL);
        let outcome = run_protocol_kind(
            ProtocolKind::Bhmr,
            // Stopping after `size` messages yields at least 2×`size`
            // events (every message is sent and delivered), so the
            // truncation below always has enough to cut.
            &config(n, 11, 3 * MEAN_SEND_INTERVAL, size),
            app.as_mut(),
        );
        let mut events = outcome.trace.into_events();
        assert!(events.len() >= size as usize, "trace shorter than target");
        events.truncate(size as usize);
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
            .count() as u64;

        // (a) One engine, every event appended once, violation count read
        // back after each append — the online probe's exact work.
        let mut incremental_ns = u64::MAX;
        for _ in 0..repetitions.max(1) {
            let watch = Stopwatch::start();
            let mut engine = IncrementalAnalysis::new(n);
            let mut mids: Vec<u32> = Vec::new();
            let mut violations = 0u64;
            for event in &events {
                match *event {
                    TraceEvent::Send {
                        from, to, message, ..
                    } => {
                        if mids.len() <= message.0 {
                            mids.resize(message.0 + 1, u32::MAX);
                        }
                        mids[message.0] = engine.append_send(from, to);
                    }
                    TraceEvent::Deliver { message, .. } => engine.append_deliver(mids[message.0]),
                    TraceEvent::Checkpoint { id, .. } => {
                        engine.append_checkpoint(id.process);
                    }
                    TraceEvent::Crash { .. } => {}
                }
                violations = engine.untrackable_pairs();
            }
            std::hint::black_box(violations);
            incremental_ns = incremental_ns.min(watch.elapsed().as_nanos() as u64);
        }

        // (b) From-scratch rebuilds at `batch_samples` evenly spaced
        // prefixes; summing `t(k·L/S) · L/S` estimates the cost of
        // rebuilding after every one of the L events.
        let samples = (batch_samples.max(1) as u64).min(size);
        let mut sampled_total_ns = 0u64;
        for sample in 1..=samples {
            let len = (size * sample / samples) as usize;
            let mut best = u64::MAX;
            for _ in 0..repetitions.max(1) {
                let watch = Stopwatch::start();
                let pattern = prefix_pattern(n, &events[..len]);
                let report = RdtChecker::new(&pattern).check();
                std::hint::black_box(report.holds());
                best = best.min(watch.elapsed().as_nanos() as u64);
            }
            sampled_total_ns += best;
        }
        let batch_est_ns = sampled_total_ns.saturating_mul(size / samples);

        let speedup = batch_est_ns as f64 / incremental_ns.max(1) as f64;
        let events_per_sec = size as f64 / (incremental_ns.max(1) as f64 / 1e9);
        rows.push(IncrementalBenchRow {
            events: size,
            checkpoints,
            incremental_ns,
            batch_est_ns,
            speedup,
            events_per_sec,
        });
    }
    IncrementalBenchResult {
        rows,
        repetitions,
        batch_samples,
    }
}

/// One deterministic operation of the BENCH-COMPACTION stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompactionOp {
    /// Checkpoint on a process.
    Checkpoint(u32),
    /// Send from → to.
    Send(u32, u32),
    /// Deliver the k-th send of the stream.
    Deliver(u64),
}

/// Minimal xorshift64 stream generator (the stream must be reproducible
/// from the seed alone, independent of any simulator state).
struct StreamRng(u64);

impl StreamRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Generates the deterministic event stream both engines ingest: random
/// sends with FIFO deliveries (bounded in-flight window) and round-robin
/// checkpoints, so every process's interval count keeps advancing and the
/// recovery line tracks the frontier.
fn compaction_stream(n: usize, events: u64, seed: u64) -> Vec<CompactionOp> {
    let mut rng = StreamRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut ops = Vec::with_capacity(events as usize);
    let mut in_flight = std::collections::VecDeque::new();
    let mut sends = 0u64;
    let mut next_ckpt = 0u32;
    for _ in 0..events {
        let roll = rng.below(16);
        if roll < 2 {
            ops.push(CompactionOp::Checkpoint(next_ckpt));
            next_ckpt = (next_ckpt + 1) % n as u32;
        } else if (roll < 9 && !in_flight.is_empty()) || in_flight.len() > 64 {
            ops.push(CompactionOp::Deliver(
                in_flight.pop_front().expect("guarded non-empty"),
            ));
        } else {
            let from = rng.below(n as u64) as u32;
            let to = (from + 1 + rng.below(n as u64 - 1) as u32) % n as u32;
            ops.push(CompactionOp::Send(from, to));
            in_flight.push_back(sends);
            sends += 1;
        }
    }
    ops
}

fn apply_compaction_op(
    engine: &mut rdt_rgraph::IncrementalAnalysis,
    mids: &mut Vec<u32>,
    op: CompactionOp,
) {
    match op {
        CompactionOp::Checkpoint(p) => {
            engine.append_checkpoint(ProcessId::new(p as usize));
        }
        CompactionOp::Send(from, to) => {
            mids.push(
                engine.append_send(ProcessId::new(from as usize), ProcessId::new(to as usize)),
            );
        }
        CompactionOp::Deliver(k) => engine.append_deliver(mids[k as usize]),
    }
}

/// One tenth of a BENCH-COMPACTION ingest, with its throughput and the
/// engine's resident closure size at the decile boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionDecile {
    /// Decile index, 1-based.
    pub decile: u32,
    /// Events ingested in this decile.
    pub events: u64,
    /// Wall-clock nanoseconds for the decile (compaction time included).
    pub ns: u64,
    /// Ingest throughput over the decile, events per second.
    pub events_per_sec: f64,
    /// Resident closure nodes at the end of the decile.
    pub resident_nodes: usize,
}

/// BENCH-COMPACTION: one engine ingesting the stream with periodic
/// recovery-line compaction versus the same engine left to grow without
/// bound (run on a truncated prefix — completing the full stream
/// uncompacted is exactly the quadratic blow-up being demonstrated).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionBenchResult {
    /// Processes in the stream.
    pub n: usize,
    /// Events the compacted engine ingests.
    pub events: u64,
    /// Events the uncompacted control ingests (a prefix of the stream).
    pub control_events: u64,
    /// The compacted engine compacts every this many events.
    pub compact_stride: u64,
    /// Per-decile throughput of the compacted engine.
    pub compacted: Vec<CompactionDecile>,
    /// Per-decile throughput of the uncompacted control over its prefix.
    pub control: Vec<CompactionDecile>,
    /// Compactions that discarded state.
    pub compactions: u64,
    /// Closure/TDV rows reclaimed across those compactions.
    pub reclaimed_rows: u64,
    /// Largest resident closure seen at a compacted decile boundary.
    pub peak_resident_compacted: usize,
    /// Resident closure right after the final compaction.
    pub resident_after_final_compaction: usize,
    /// Resident closure of the control at the end of its prefix.
    pub control_final_resident: usize,
    /// Untrackable-pair count of the compacted engine at the control's
    /// truncation point (differential spot-check).
    pub untrackable_at_cap_compacted: u64,
    /// Untrackable-pair count of the control at the same point.
    pub untrackable_at_cap_control: u64,
    /// Untrackable-pair count of the compacted engine after the full
    /// stream.
    pub untrackable_final: u64,
}

fn decile_ratio(deciles: &[CompactionDecile]) -> f64 {
    match (deciles.first(), deciles.last()) {
        (Some(first), Some(last)) if first.events_per_sec > 0.0 => {
            last.events_per_sec / first.events_per_sec
        }
        _ => 0.0,
    }
}

impl CompactionBenchResult {
    /// Last-decile throughput over first-decile throughput, compacted.
    pub fn compacted_throughput_ratio(&self) -> f64 {
        decile_ratio(&self.compacted)
    }

    /// Last-decile throughput over first-decile throughput, control.
    pub fn control_throughput_ratio(&self) -> f64 {
        decile_ratio(&self.control)
    }

    /// The acceptance gates of the experiment: flat per-event cost under
    /// compaction (last decile at least half the first-decile throughput),
    /// visible collapse without it, bounded resident closure, exact
    /// analysis results, and non-vacuous reclamation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable explanation of the first violated gate.
    pub fn gate(&self) -> Result<(), String> {
        let compacted = self.compacted_throughput_ratio();
        if compacted < 0.5 {
            return Err(format!(
                "compacted last-decile throughput fell to {compacted:.2}x of the first decile \
                 (gate: >= 0.5x)"
            ));
        }
        let control = self.control_throughput_ratio();
        if control >= 0.5 {
            return Err(format!(
                "uncompacted control kept {control:.2}x of its first-decile throughput — the \
                 collapse the compacted engine avoids is not visible"
            ));
        }
        if self.untrackable_at_cap_compacted != self.untrackable_at_cap_control {
            return Err(format!(
                "differential spot-check failed at event {}: compacted counts {} untrackable \
                 pairs, control counts {}",
                self.control_events,
                self.untrackable_at_cap_compacted,
                self.untrackable_at_cap_control
            ));
        }
        let bound = (4 * self.compact_stride) as usize;
        if self.resident_after_final_compaction > bound {
            return Err(format!(
                "resident closure after the final compaction is {} nodes (gate: <= {bound}, \
                 4x the compaction stride)",
                self.resident_after_final_compaction
            ));
        }
        if self.compactions == 0 || self.reclaimed_rows == 0 {
            return Err("no compaction discarded state — the comparison is vacuous".to_string());
        }
        Ok(())
    }
}

/// Runs BENCH-COMPACTION: stream `events` deterministic events (a
/// fixed-seed mixture of sends, FIFO deliveries and round-robin
/// checkpoints over `n` processes) through (a) an engine compacted to its
/// recovery line every `compact_stride` events and (b) an uncompacted
/// control truncated to `control_events`, timing each tenth of either
/// ingest and querying the violation count after every event.
pub fn compaction_bench(
    n: usize,
    events: u64,
    control_events: u64,
    compact_stride: u64,
    seed: u64,
) -> CompactionBenchResult {
    use rdt_rgraph::IncrementalAnalysis;
    use rdt_sim::Stopwatch;

    assert!(events >= 10, "need at least one event per decile");
    assert!(control_events <= events, "control runs a prefix");
    assert!(compact_stride > 0, "stride must be positive");
    let ops = compaction_stream(n, events, seed);

    let ingest = |total: u64, stride: Option<u64>| {
        let mut engine = IncrementalAnalysis::new(n);
        let mut mids: Vec<u32> = Vec::new();
        let mut deciles = Vec::with_capacity(10);
        let mut untrackable_at_cap = 0u64;
        let mut resident_after_compaction = 0usize;
        let mut done = 0u64;
        for decile in 1..=10u32 {
            let until = total * u64::from(decile) / 10;
            let watch = Stopwatch::start();
            while done < until {
                apply_compaction_op(&mut engine, &mut mids, ops[done as usize]);
                std::hint::black_box(engine.untrackable_pairs());
                done += 1;
                if done == control_events {
                    untrackable_at_cap = engine.untrackable_pairs();
                }
                if let Some(stride) = stride {
                    if done.is_multiple_of(stride) {
                        engine.compact_to_recovery_line();
                        resident_after_compaction = engine.resident_closure_nodes();
                    }
                }
            }
            let ns = watch.elapsed().as_nanos() as u64;
            let decile_events = until - (total * u64::from(decile - 1) / 10);
            deciles.push(CompactionDecile {
                decile,
                events: decile_events,
                ns,
                events_per_sec: decile_events as f64 / (ns.max(1) as f64 / 1e9),
                resident_nodes: engine.resident_closure_nodes(),
            });
        }
        (
            engine,
            deciles,
            untrackable_at_cap,
            resident_after_compaction,
        )
    };

    let (compacted_engine, compacted, untrackable_at_cap_compacted, resident_after_final) =
        ingest(events, Some(compact_stride));
    let (control_engine, control, untrackable_at_cap_control, _) = ingest(control_events, None);

    CompactionBenchResult {
        n,
        events,
        control_events,
        compact_stride,
        peak_resident_compacted: compacted
            .iter()
            .map(|d| d.resident_nodes)
            .max()
            .unwrap_or(0),
        resident_after_final_compaction: resident_after_final,
        control_final_resident: control_engine.resident_closure_nodes(),
        compactions: compacted_engine.compactions(),
        reclaimed_rows: compacted_engine.reclaimed_rows(),
        untrackable_at_cap_compacted,
        untrackable_at_cap_control,
        untrackable_final: compacted_engine.untrackable_pairs(),
        compacted,
        control,
    }
}

/// ABL-1: piggyback size versus forced-checkpoint count across the
/// protocol lattice.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// `(protocol, piggyback bytes/msg, mean R)` at the reference point.
    pub lattice: Vec<(String, f64, f64)>,
    /// Environment used.
    pub environment: String,
}

/// Runs ABL-1 in the random environment at the mid-range checkpoint
/// interval.
pub fn ablation(n: usize, seeds: &[u64], messages: u64) -> AblationResult {
    let env = EnvironmentKind::Random;
    let lattice = protocol_set()
        .into_iter()
        .map(|p| {
            let point = run_point(env, n, p, 4 * MEAN_SEND_INTERVAL, seeds, messages);
            (
                point.protocol.clone(),
                point.piggyback_bytes_per_msg,
                point.mean_r,
            )
        })
        .collect();
    AblationResult {
        lattice,
        environment: env.name().to_string(),
    }
}

/// ABL-2: sensitivity of the BHMR-vs-FDAS reduction to the request/reply
/// structure of the workload (group environment, acknowledgement
/// probability swept).
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    /// `(reply probability, R_bhmr, R_fdas, reduction)` per sweep point.
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// Processes and layout description.
    pub n: usize,
}

/// Runs ABL-2: the denser the request/reply echoes, the more causal
/// knowledge the piggybacked matrices certify, and the larger the BHMR
/// reduction over FDAS grows.
pub fn sensitivity(n: usize, seeds: &[u64], messages: u64) -> SensitivityResult {
    use rdt_workloads::{GroupEnvironment, GroupLayout};
    let mut rows = Vec::new();
    for &prob in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let r = |protocol: ProtocolKind| -> f64 {
            let mut values = Vec::new();
            for &seed in seeds {
                let mut app =
                    GroupEnvironment::new(GroupLayout::overlapping(n, 4, 1), MEAN_SEND_INTERVAL)
                        .with_reply_probability(prob);
                let outcome = run_protocol_kind(
                    protocol,
                    &config(n, seed, 4 * MEAN_SEND_INTERVAL, messages),
                    &mut app,
                );
                values.push(outcome.stats.total.forced_ratio());
            }
            mean_std(&values).0
        };
        let bhmr = r(ProtocolKind::Bhmr);
        let fdas = r(ProtocolKind::Fdas);
        let reduction = if fdas > 0.0 {
            (fdas - bhmr) / fdas
        } else {
            0.0
        };
        rows.push((prob, bhmr, fdas, reduction));
    }
    SensitivityResult { rows, n }
}

/// NEC-1: *hindsight necessity* of forced checkpoints.
#[derive(Debug, Clone)]
pub struct NecessityResult {
    /// `(protocol, forced checkpoints examined, necessary in hindsight,
    /// necessity ratio, load-bearing basic checkpoints, basic checkpoints
    /// examined)`.
    ///
    /// A *basic* checkpoint is load-bearing when its removal breaks RDT —
    /// the protocol silently relied on it to break a chain it would
    /// otherwise have had to force on.
    pub rows: Vec<(String, u64, u64, f64, u64, u64)>,
    /// Environment used.
    pub environment: String,
}

/// Runs NEC-1: for every forced checkpoint of a run, remove it from the
/// pattern and re-check RDT. A forced checkpoint is *necessary in
/// hindsight* iff its removal breaks RDT; the ratio measures how much
/// conservativeness remains in each on-line predicate (the theme of the
/// "visible characterizations" line: with full hindsight, fewer breaks
/// suffice — an on-line protocol can only approximate).
///
/// Expectation: the BHMR predicate is sharper than FDAS, so a larger
/// fraction of its forced checkpoints is genuinely needed.
pub fn necessity(n: usize, seeds: &[u64], messages: u64) -> NecessityResult {
    let env = EnvironmentKind::Random;
    let mut rows = Vec::new();
    for protocol in [
        ProtocolKind::Bhmr,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
        ProtocolKind::Cbr,
    ] {
        let mut examined = 0u64;
        let mut necessary = 0u64;
        let mut basic_examined = 0u64;
        let mut basic_load_bearing = 0u64;
        for &seed in seeds {
            let mut app = env.build(n, MEAN_SEND_INTERVAL);
            let outcome = run_protocol_kind(
                protocol,
                &config(n, seed, 4 * MEAN_SEND_INTERVAL, messages),
                app.as_mut(),
            );
            let pattern = outcome.trace.to_pattern();
            debug_assert!(RdtChecker::new(&pattern).check().holds());
            for records in &outcome.records {
                for record in records {
                    let surgered = pattern.without_checkpoint(record.id);
                    let still_rdt = RdtChecker::new(&surgered).check().holds();
                    match record.kind {
                        rdt_core::CheckpointKind::Forced => {
                            examined += 1;
                            if !still_rdt {
                                necessary += 1;
                            }
                        }
                        rdt_core::CheckpointKind::Basic => {
                            basic_examined += 1;
                            if !still_rdt {
                                basic_load_bearing += 1;
                            }
                        }
                        rdt_core::CheckpointKind::Initial => {}
                    }
                }
            }
        }
        let ratio = if examined == 0 {
            0.0
        } else {
            necessary as f64 / examined as f64
        };
        rows.push((
            protocol.name().to_string(),
            examined,
            necessary,
            ratio,
            basic_load_bearing,
            basic_examined,
        ));
    }
    NecessityResult {
        rows,
        environment: env.name().to_string(),
    }
}

/// SCALE-1: how the protocols scale with the number of processes.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// `(n, protocol, mean R, piggyback bytes/msg)` per sweep point.
    pub rows: Vec<(usize, String, f64, f64)>,
    /// Environment used.
    pub environment: String,
}

/// Runs SCALE-1 in the random environment: `R` and the per-message
/// piggyback cost as `n` grows, for the three piggyback classes (O(n²)
/// BHMR, O(n) FDAS, O(1) BCS).
pub fn scaling(sizes: &[usize], seeds: &[u64], messages: u64) -> ScalingResult {
    let env = EnvironmentKind::Random;
    let mut rows = Vec::new();
    for &n in sizes {
        for protocol in [ProtocolKind::Bhmr, ProtocolKind::Fdas, ProtocolKind::Bcs] {
            let point = run_point(env, n, protocol, 4 * MEAN_SEND_INTERVAL, seeds, messages);
            rows.push((
                n,
                protocol.name().to_string(),
                point.mean_r,
                point.piggyback_bytes_per_msg,
            ));
        }
    }
    ScalingResult {
        rows,
        environment: env.name().to_string(),
    }
}

/// COORD-1: coordinated (Chandy–Lamport) snapshots versus
/// communication-induced checkpointing, at matched checkpoint rates.
#[derive(Debug, Clone)]
pub struct CoordinatedResult {
    /// `(scheme, checkpoints, control messages, piggyback bytes,
    /// mean rollback distance after losing the newest checkpoint)`.
    pub rows: Vec<(String, u64, u64, u64, f64)>,
    /// Processes.
    pub n: usize,
}

/// Runs COORD-1: the same random workload either checkpoints through
/// Chandy–Lamport marker waves (control messages, zero piggyback) or
/// through CIC protocols (zero control messages, piggybacked vectors).
pub fn coordinated(n: usize, seeds: &[u64], sim_ticks: u64) -> CoordinatedResult {
    use rdt_sim::SimTime;
    use rdt_workloads::{ChandyLamport, RandomEnvironment};

    let snapshot_interval = 40 * MEAN_SEND_INTERVAL;
    let mut rows = Vec::new();

    let rollback = |pattern: &rdt_rgraph::Pattern| -> f64 {
        let mut total = 0.0;
        for i in 0..n {
            let process = ProcessId::new(i);
            let cap = pattern.last_checkpoint_index(process).saturating_sub(1);
            total += analyze(
                pattern,
                &[Failure {
                    process,
                    resume_cap: cap,
                }],
            )
            .mean_discarded();
        }
        total / n as f64
    };

    // Chandy–Lamport over an otherwise uncoordinated run.
    {
        let mut checkpoints = 0;
        let mut control = 0;
        let mut piggyback = 0;
        let mut distance = Vec::new();
        for &seed in seeds {
            let config = SimConfig::new(n)
                .with_seed(seed)
                .with_fifo(true)
                .with_delay(DelayModel::Exponential { mean: MEAN_DELAY })
                .with_basic_checkpoints(BasicCheckpointModel::Disabled)
                .with_stop(StopCondition::Time(SimTime::from_ticks(sim_ticks)));
            let mut app = ChandyLamport::new(
                RandomEnvironment::new(MEAN_SEND_INTERVAL),
                snapshot_interval,
            );
            let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
            checkpoints += outcome.stats.total.total_checkpoints();
            control += app.markers_sent();
            piggyback += outcome.stats.total.piggyback_bytes_sent;
            distance.push(rollback(&outcome.trace.to_pattern().to_closed()));
        }
        rows.push((
            "chandy-lamport".to_string(),
            checkpoints,
            control,
            piggyback,
            mean_std(&distance).0,
        ));
    }

    // CIC protocols with basic-checkpoint timers at the matched rate.
    for protocol in [ProtocolKind::Bhmr, ProtocolKind::Fdas, ProtocolKind::Bcs] {
        let mut checkpoints = 0;
        let mut piggyback = 0;
        let mut distance = Vec::new();
        for &seed in seeds {
            let config = SimConfig::new(n)
                .with_seed(seed)
                .with_fifo(true)
                .with_delay(DelayModel::Exponential { mean: MEAN_DELAY })
                .with_basic_checkpoints(BasicCheckpointModel::Exponential {
                    mean: snapshot_interval,
                })
                .with_stop(StopCondition::Time(SimTime::from_ticks(sim_ticks)));
            let mut app = RandomEnvironment::new(MEAN_SEND_INTERVAL);
            let outcome = run_protocol_kind(protocol, &config, &mut app);
            checkpoints += outcome.stats.total.total_checkpoints();
            piggyback += outcome.stats.total.piggyback_bytes_sent;
            distance.push(rollback(&outcome.trace.to_pattern().to_closed()));
        }
        rows.push((
            protocol.name().to_string(),
            checkpoints,
            0,
            piggyback,
            mean_std(&distance).0,
        ));
    }

    CoordinatedResult { rows, n }
}

/// REC-1: rollback damage after a failure, per protocol, plus the
/// checkpoint-storage picture (GC reclaim ratio).
#[derive(Debug, Clone)]
pub struct RecoveryResult {
    /// `(protocol, mean checkpoints discarded per process, mean processes
    /// rolled to initial, mean messages lost, mean GC reclaim ratio)`.
    pub rows: Vec<(String, f64, f64, f64, f64)>,
    /// Environment used.
    pub environment: String,
}

/// Runs REC-1: every process in turn loses its most recent checkpoint
/// (resume cap = last − 1); the rollback damage is averaged over failures
/// and seeds.
pub fn recovery_experiment(n: usize, seeds: &[u64], messages: u64) -> RecoveryResult {
    let env = EnvironmentKind::Random;
    let protocols = [
        ProtocolKind::Bhmr,
        ProtocolKind::Fdas,
        ProtocolKind::Cbr,
        ProtocolKind::Uncoordinated,
    ];
    let mut rows = Vec::new();
    for &protocol in &protocols {
        let mut discarded = Vec::new();
        let mut to_initial = Vec::new();
        let mut lost = Vec::new();
        let mut reclaim = Vec::new();
        for &seed in seeds {
            let mut app = env.build(n, MEAN_SEND_INTERVAL);
            let outcome = run_protocol_kind(
                protocol,
                &config(n, seed, 2 * MEAN_SEND_INTERVAL, messages),
                app.as_mut(),
            );
            let pattern = outcome.trace.to_pattern().to_closed();
            reclaim.push(rdt_recovery::gc::storage_report(&pattern).reclaim_ratio());
            for i in 0..n {
                let process = ProcessId::new(i);
                let cap = pattern.last_checkpoint_index(process).saturating_sub(1);
                let report = analyze(
                    &pattern,
                    &[Failure {
                        process,
                        resume_cap: cap,
                    }],
                );
                discarded.push(report.mean_discarded());
                to_initial.push(report.rolled_to_initial as f64);
                lost.push(report.lost_messages as f64);
            }
        }
        rows.push((
            protocol.name().to_string(),
            mean_std(&discarded).0,
            mean_std(&to_initial).0,
            mean_std(&lost).0,
            mean_std(&reclaim).0,
        ));
    }
    RecoveryResult {
        rows,
        environment: env.name().to_string(),
    }
}

/// One protocol × environment cell of BENCH-RECOVERY-EXEC, aggregated
/// over the seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryExecRow {
    /// Protocol name.
    pub protocol: String,
    /// Environment name.
    pub environment: String,
    /// Runs aggregated (one per seed).
    pub runs: u64,
    /// Crashes that actually fired across the runs.
    pub crashes: u64,
    /// Worst per-process rollback over every crash, in checkpoints.
    pub max_rollback_depth: u32,
    /// Mean (over crashes) of the per-crash worst rollback depth.
    pub mean_rollback_depth: f64,
    /// Mean (over crashes) of the number of processes rolled back.
    pub mean_domino_span: f64,
    /// Processes rolled to their initial checkpoint, total over crashes.
    pub rolled_to_initial: u64,
    /// Orphaned in-flight messages discarded, total.
    pub orphans_discarded: u64,
    /// Deliveries undone by rollbacks, total.
    pub deliveries_undone: u64,
    /// Lost messages replayed from the sender-side log, total.
    pub lost_replayed: u64,
    /// Mean simulated recovery latency (ticks rolled back), over crashes.
    pub mean_rollback_span_ticks: f64,
    /// Forced checkpoints taken, total — the price paid for bounded
    /// rollback.
    pub forced_checkpoints: u64,
}

/// BENCH-RECOVERY-EXEC: live crash injection during the run, recovery-line
/// rollback executed by the simulator, damage measured per protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryExecResult {
    /// Number of processes per run.
    pub n: usize,
    /// Messages injected per run.
    pub messages: u64,
    /// Expected crashes per 1000 ticks.
    pub crash_rate: f64,
    /// Crash budget per run.
    pub max_crashes: u32,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// One row per environment × protocol, environment-major, in the
    /// order of [`recovery_exec_protocols`].
    pub rows: Vec<RecoveryExecRow>,
}

impl RecoveryExecResult {
    /// The row of `protocol` in `environment`, if present.
    pub fn row(&self, environment: &str, protocol: ProtocolKind) -> Option<&RecoveryExecRow> {
        self.rows
            .iter()
            .find(|row| row.environment == environment && row.protocol == protocol.name())
    }

    /// The acceptance gate of the experiment: on the domino environment,
    /// uncoordinated checkpointing must exhibit the unbounded collapse
    /// (some process rolled back to its initial state) while every
    /// RDT-ensuring protocol keeps its worst rollback strictly below the
    /// uncoordinated worst case.
    ///
    /// # Errors
    ///
    /// Returns a human-readable explanation of the first violated clause.
    pub fn rdt_bounds_domino(&self) -> Result<(), String> {
        let unc = self
            .row("domino", ProtocolKind::Uncoordinated)
            .ok_or("missing uncoordinated domino row")?;
        if unc.crashes == 0 {
            return Err("no crashes fired in the uncoordinated domino runs".to_string());
        }
        if unc.rolled_to_initial == 0 {
            return Err(
                "uncoordinated checkpointing never collapsed to the initial state on the domino \
                 workload"
                    .to_string(),
            );
        }
        for &protocol in recovery_exec_protocols() {
            if protocol == ProtocolKind::Uncoordinated {
                continue;
            }
            let row = self
                .row("domino", protocol)
                .ok_or_else(|| format!("missing domino row for {protocol}"))?;
            if row.max_rollback_depth >= unc.max_rollback_depth {
                return Err(format!(
                    "{} max rollback depth {} is not below uncoordinated's {} on domino",
                    protocol, row.max_rollback_depth, unc.max_rollback_depth
                ));
            }
        }
        Ok(())
    }
}

/// The protocol series of BENCH-RECOVERY-EXEC: the RDT family that should
/// bound rollback, plus the uncoordinated baseline that should not.
pub fn recovery_exec_protocols() -> &'static [ProtocolKind] {
    &[
        ProtocolKind::Bhmr,
        ProtocolKind::BhmrNoSimple,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
        ProtocolKind::Uncoordinated,
    ]
}

/// Per-run summary shipped back from the worker pool (the full outcome,
/// trace included, would be needlessly heavy).
#[derive(Debug, Clone, Copy, Default)]
struct RecoveryExecSample {
    crashes: u64,
    max_depth: u32,
    sum_max_depth: u64,
    sum_domino_span: u64,
    rolled_to_initial: u64,
    orphans_discarded: u64,
    deliveries_undone: u64,
    lost_replayed: u64,
    sum_rollback_span: u64,
    forced_checkpoints: u64,
}

/// Runs BENCH-RECOVERY-EXEC: every protocol of
/// [`recovery_exec_protocols`] under live crash injection on the domino
/// and random environments, fanned over `threads` workers. Per-point
/// seeds derive only from `(environment, seed)`, so every protocol faces
/// the same workload schedule *and* the same crash clock — the comparison
/// isolates what the checkpoints are worth when the crash actually comes.
///
/// Results are in grid order and bit-identical for every thread count.
pub fn recovery_exec(
    n: usize,
    seeds: &[u64],
    messages: u64,
    crash_rate: f64,
    max_crashes: u32,
    threads: usize,
) -> RecoveryExecResult {
    let environments = [EnvironmentKind::Domino, EnvironmentKind::Random];
    let protocols = recovery_exec_protocols();

    let mut items: Vec<(EnvironmentKind, ProtocolKind, u64)> = Vec::new();
    for (env_index, &env) in environments.iter().enumerate() {
        for &protocol in protocols {
            for &seed in seeds {
                items.push((env, protocol, SimRng::derive_seed(seed, env_index as u64)));
            }
        }
    }

    let samples = rdt_sim::parallel_map_indexed(
        &items,
        threads,
        SimScratch::new,
        |scratch, _, &(env, protocol, seed)| {
            let mut config = config(n, seed, 2 * MEAN_SEND_INTERVAL, messages)
                .with_crash_rate(crash_rate)
                .with_max_crashes(max_crashes);
            if env == EnvironmentKind::Domino {
                // The domino workload checkpoints itself (before every
                // reply); timer-driven basics would break the zigzag and
                // hand uncoordinated checkpointing a consistent line by
                // luck.
                config = config.with_basic_checkpoints(BasicCheckpointModel::Disabled);
            }
            let mut app = env.build(n, MEAN_SEND_INTERVAL);
            run_protocol_kind_with_scratch(protocol, &config, app.as_mut(), scratch, |outcome| {
                let report = outcome.recovery.as_ref().expect("crashes enabled");
                let mut sample = RecoveryExecSample {
                    crashes: report.crashes.len() as u64,
                    max_depth: report.max_rollback_depth(),
                    rolled_to_initial: report.total_rolled_to_initial() as u64,
                    orphans_discarded: report.total_orphans_discarded(),
                    deliveries_undone: report.total_deliveries_undone(),
                    lost_replayed: report.total_lost_replayed(),
                    forced_checkpoints: outcome.stats.total.forced_checkpoints,
                    ..RecoveryExecSample::default()
                };
                for crash in &report.crashes {
                    sample.sum_max_depth += u64::from(crash.max_depth());
                    sample.sum_domino_span += crash.domino_span as u64;
                    sample.sum_rollback_span += crash.rollback_span.ticks();
                }
                sample
            })
        },
        |_| {},
    );

    let mut rows = Vec::with_capacity(environments.len() * protocols.len());
    let mut cursor = samples.chunks_exact(seeds.len().max(1));
    for &env in &environments {
        for &protocol in protocols {
            let chunk = cursor.next().expect("grid covers every cell");
            let mut total = RecoveryExecSample::default();
            for sample in chunk {
                total.crashes += sample.crashes;
                total.max_depth = total.max_depth.max(sample.max_depth);
                total.sum_max_depth += sample.sum_max_depth;
                total.sum_domino_span += sample.sum_domino_span;
                total.rolled_to_initial += sample.rolled_to_initial;
                total.orphans_discarded += sample.orphans_discarded;
                total.deliveries_undone += sample.deliveries_undone;
                total.lost_replayed += sample.lost_replayed;
                total.sum_rollback_span += sample.sum_rollback_span;
                total.forced_checkpoints += sample.forced_checkpoints;
            }
            let per_crash = |sum: u64| {
                if total.crashes == 0 {
                    0.0
                } else {
                    sum as f64 / total.crashes as f64
                }
            };
            rows.push(RecoveryExecRow {
                protocol: protocol.name().to_string(),
                environment: env.name().to_string(),
                runs: chunk.len() as u64,
                crashes: total.crashes,
                max_rollback_depth: total.max_depth,
                mean_rollback_depth: per_crash(total.sum_max_depth),
                mean_domino_span: per_crash(total.sum_domino_span),
                rolled_to_initial: total.rolled_to_initial,
                orphans_discarded: total.orphans_discarded,
                deliveries_undone: total.deliveries_undone,
                lost_replayed: total.lost_replayed,
                mean_rollback_span_ticks: per_crash(total.sum_rollback_span),
                forced_checkpoints: total.forced_checkpoints,
            });
        }
    }

    RecoveryExecResult {
        n,
        messages,
        crash_rate,
        max_crashes,
        seeds: seeds.to_vec(),
        rows,
    }
}

impl ToJson for ProtocolPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("mean_r", self.mean_r.to_json()),
            ("std_r", self.std_r.to_json()),
            ("mean_forced", self.mean_forced.to_json()),
            ("mean_basic", self.mean_basic.to_json()),
            (
                "piggyback_bytes_per_msg",
                self.piggyback_bytes_per_msg.to_json(),
            ),
        ])
    }
}

impl ToJson for SweepRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("multiplier", self.multiplier.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl ToJson for FigureResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("environment", self.environment.to_json()),
            ("n", self.n.to_json()),
            ("messages", self.messages.to_json()),
            ("seeds", self.seeds.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for Table1Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("environments", self.environments.to_json()),
            ("multiplier", self.multiplier.to_json()),
        ])
    }
}

impl ToJson for Cor45Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("checked", self.checked.to_json()),
            ("mismatches", self.mismatches.to_json()),
            ("protocols", self.protocols.to_json()),
        ])
    }
}

impl ToJson for RdtCheckResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", self.runs.to_json()),
            ("unexpected_failures", self.unexpected_failures.to_json()),
            ("uncoordinated_passes", self.uncoordinated_passes.to_json()),
        ])
    }
}

impl ToJson for ClosureBenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("repetitions", self.repetitions.to_json()),
            ("min_speedup", self.min_speedup().to_json()),
        ])
    }
}

impl ToJson for SimThroughputRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("environment", self.environment.to_json()),
            ("n", self.n.to_json()),
            ("events", self.events.to_json()),
            ("legacy_ns", self.legacy_ns.to_json()),
            ("executor_ns", self.executor_ns.to_json()),
            (
                "legacy_events_per_sec",
                self.legacy_events_per_sec.to_json(),
            ),
            (
                "executor_events_per_sec",
                self.executor_events_per_sec.to_json(),
            ),
            ("speedup", self.speedup.to_json()),
            ("legacy_allocs", self.legacy_allocs.to_json()),
            ("executor_allocs", self.executor_allocs.to_json()),
        ])
    }
}

impl ToJson for SimThroughputResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("messages", self.messages.to_json()),
            ("repetitions", self.repetitions.to_json()),
            ("alloc_counting", self.alloc_counting.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ToJson for IncrementalBenchRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("events", self.events.to_json()),
            ("checkpoints", self.checkpoints.to_json()),
            ("incremental_ns", self.incremental_ns.to_json()),
            ("batch_est_ns", self.batch_est_ns.to_json()),
            ("speedup", self.speedup.to_json()),
            ("events_per_sec", self.events_per_sec.to_json()),
        ])
    }
}

impl ToJson for IncrementalBenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("repetitions", self.repetitions.to_json()),
            ("batch_samples", self.batch_samples.to_json()),
        ])
    }
}

impl ToJson for CompactionDecile {
    fn to_json(&self) -> Json {
        Json::obj([
            ("decile", self.decile.to_json()),
            ("events", self.events.to_json()),
            ("ns", self.ns.to_json()),
            ("events_per_sec", self.events_per_sec.to_json()),
            ("resident_nodes", self.resident_nodes.to_json()),
        ])
    }
}

impl ToJson for CompactionBenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("events", self.events.to_json()),
            ("control_events", self.control_events.to_json()),
            ("compact_stride", self.compact_stride.to_json()),
            ("compacted", self.compacted.to_json()),
            ("control", self.control.to_json()),
            ("compactions", self.compactions.to_json()),
            ("reclaimed_rows", self.reclaimed_rows.to_json()),
            (
                "peak_resident_compacted",
                self.peak_resident_compacted.to_json(),
            ),
            (
                "resident_after_final_compaction",
                self.resident_after_final_compaction.to_json(),
            ),
            (
                "control_final_resident",
                self.control_final_resident.to_json(),
            ),
            (
                "untrackable_at_cap_compacted",
                self.untrackable_at_cap_compacted.to_json(),
            ),
            (
                "untrackable_at_cap_control",
                self.untrackable_at_cap_control.to_json(),
            ),
            ("untrackable_final", self.untrackable_final.to_json()),
            (
                "compacted_throughput_ratio",
                self.compacted_throughput_ratio().to_json(),
            ),
            (
                "control_throughput_ratio",
                self.control_throughput_ratio().to_json(),
            ),
        ])
    }
}

impl ToJson for AblationResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lattice", self.lattice.to_json()),
            ("environment", self.environment.to_json()),
        ])
    }
}

impl ToJson for SensitivityResult {
    fn to_json(&self) -> Json {
        Json::obj([("rows", self.rows.to_json()), ("n", self.n.to_json())])
    }
}

impl ToJson for NecessityResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("environment", self.environment.to_json()),
        ])
    }
}

impl ToJson for ScalingResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("environment", self.environment.to_json()),
        ])
    }
}

impl ToJson for CoordinatedResult {
    fn to_json(&self) -> Json {
        Json::obj([("rows", self.rows.to_json()), ("n", self.n.to_json())])
    }
}

impl ToJson for RecoveryResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("environment", self.environment.to_json()),
        ])
    }
}

impl ToJson for RecoveryExecRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", self.protocol.to_json()),
            ("environment", self.environment.to_json()),
            ("runs", self.runs.to_json()),
            ("crashes", self.crashes.to_json()),
            ("max_rollback_depth", self.max_rollback_depth.to_json()),
            ("mean_rollback_depth", self.mean_rollback_depth.to_json()),
            ("mean_domino_span", self.mean_domino_span.to_json()),
            ("rolled_to_initial", self.rolled_to_initial.to_json()),
            ("orphans_discarded", self.orphans_discarded.to_json()),
            ("deliveries_undone", self.deliveries_undone.to_json()),
            ("lost_replayed", self.lost_replayed.to_json()),
            (
                "mean_rollback_span_ticks",
                self.mean_rollback_span_ticks.to_json(),
            ),
            ("forced_checkpoints", self.forced_checkpoints.to_json()),
        ])
    }
}

impl ToJson for RecoveryExecResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", self.n.to_json()),
            ("messages", self.messages.to_json()),
            ("crash_rate", self.crash_rate.to_json()),
            ("max_crashes", self.max_crashes.to_json()),
            ("seeds", self.seeds.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

/// Per-protocol replay timing row of BENCH-CERTIFY: how long one
/// protocol takes to replay every canonical schedule of the scope
/// (replay only — engine checks excluded), from a dedicated pass so the
/// certification runs themselves stay timer-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyReplayRow {
    /// Protocol name.
    pub protocol: String,
    /// Wall-clock nanoseconds to replay every schedule.
    pub ns: u64,
    /// Schedules replayed.
    pub patterns: u64,
}

impl ToJson for CertifyReplayRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::Str(self.protocol.clone())),
            ("ns", self.ns.to_json()),
            ("patterns", self.patterns.to_json()),
        ])
    }
}

/// One scope-push certification run of BENCH-CERTIFY (the full `3,5`
/// sweep, the sampled `4,4` probe).
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyScaleRun {
    /// The scope, rendered `n,m,b`.
    pub scope: String,
    /// Sampling fraction, when the run was sampled.
    pub sample: Option<f64>,
    /// Full-space structure count (exact even under sampling).
    pub structures: u64,
    /// Canonical realizable schedules of the scope.
    pub replayable: u64,
    /// Schedules actually replayed.
    pub replayed: u64,
    /// Wall-clock nanoseconds of the certification run.
    pub ns: u64,
    /// Whether the run certified clean.
    pub certified_ok: bool,
}

impl ToJson for CertifyScaleRun {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("scope", Json::Str(self.scope.clone())),
            ("structures", self.structures.to_json()),
            ("replayable", self.replayable.to_json()),
            ("replayed", self.replayed.to_json()),
            ("ns", self.ns.to_json()),
            ("certified_ok", Json::Bool(self.certified_ok)),
        ];
        if let Some(frac) = self.sample {
            pairs.insert(1, ("sample", Json::F64(frac)));
        }
        Json::obj(pairs)
    }
}

/// BENCH-CERTIFY: the orbit-pruned certifier pipeline against the
/// prefix-sharing baseline on the reference scope, with the byte-level
/// report comparison that makes the speedup meaningful, plus per-protocol
/// replay timings and (full mode) the scope-push runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyScaleResult {
    /// Reference scope, rendered `n,m,b`.
    pub scope: String,
    /// Worker threads of the timed runs (1 = the single-core comparison
    /// the gate is defined over).
    pub threads: usize,
    /// Wall-clock nanoseconds of the baseline engine on the scope.
    pub baseline_ns: u64,
    /// Wall-clock nanoseconds of the orbit-pruned engine on the scope.
    pub orbit_ns: u64,
    /// `baseline_ns / orbit_ns`.
    pub speedup: f64,
    /// Whether the two engines' reports are byte-identical (pretty JSON).
    pub reports_equal: bool,
    /// Full-space structures covered.
    pub structures: u64,
    /// Canonical representatives retained.
    pub canonical: u64,
    /// Structures pruned as relabelings of a canonical representative
    /// (counted, never generated by the orbit engine).
    pub orbits_pruned: u64,
    /// Canonical but unrealizable skeletons.
    pub unrealizable: u64,
    /// Schedules replayed per protocol.
    pub replayed: u64,
    /// Self-describing work units fanned across the pool.
    pub units: u64,
    /// Full layouts discarded whole by the masked relabeling compare.
    pub layouts_pruned: u64,
    /// Generation subtrees cut at interior line boundaries.
    pub subtree_cuts: u64,
    /// (schedule × protocol) replays that reused another protocol's
    /// engine verdict for the identical op stream.
    pub dedup_hits: u64,
    /// Fraction of the no-sharing replay volume avoided by prefix
    /// sharing + verdict dedup.
    pub prefix_reuse_ratio: f64,
    /// Structures covered per second by the orbit engine.
    pub structures_per_sec: f64,
    /// Per-protocol replay timings (dedicated pass).
    pub replay: Vec<CertifyReplayRow>,
    /// Scope-push certification runs (full mode only).
    pub scope_push: Vec<CertifyScaleRun>,
}

impl CertifyScaleResult {
    /// The acceptance gates of the experiment: the orbit engine must
    /// reproduce the baseline's report byte for byte and be at least
    /// twice as fast on the reference scope, with non-vacuous pruning
    /// and verdict sharing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable explanation of the first violated gate.
    pub fn gate(&self) -> Result<(), String> {
        if !self.reports_equal {
            return Err("orbit-pruned report differs from the baseline engine's".to_string());
        }
        if self.speedup < 2.0 {
            return Err(format!(
                "orbit-pruned engine is only {:.2}x the baseline (gate: >= 2.0x)",
                self.speedup
            ));
        }
        if self.orbits_pruned == 0 || self.layouts_pruned + self.subtree_cuts == 0 {
            return Err("orbit pruning never fired — the comparison is vacuous".to_string());
        }
        if self.dedup_hits == 0 {
            return Err("verdict sharing never fired — the comparison is vacuous".to_string());
        }
        for run in &self.scope_push {
            if !run.certified_ok {
                return Err(format!("scope-push run {} did not certify", run.scope));
            }
        }
        Ok(())
    }
}

fn timed_certify(
    scope: &rdt_verify::Scope,
    options: &rdt_verify::CertifyOptions,
) -> (rdt_verify::CertifyReport, rdt_verify::CertifyStats, u64) {
    let watch = rdt_sim::Stopwatch::start();
    let (report, stats) = rdt_verify::certify_with_stats(scope, options);
    let ns = watch.elapsed().as_nanos() as u64;
    (report, stats, ns)
}

/// Times `timed_certify` twice and keeps the faster wall clock — the
/// first run pays the page-fault/allocator warmup, so a single-shot
/// measurement understates the steady-state speedup the gate asserts.
fn timed_certify_best_of_two(
    scope: &rdt_verify::Scope,
    options: &rdt_verify::CertifyOptions,
) -> (rdt_verify::CertifyReport, rdt_verify::CertifyStats, u64) {
    let (_, _, warm_ns) = timed_certify(scope, options);
    let (report, stats, ns) = timed_certify(scope, options);
    (report, stats, ns.min(warm_ns))
}

/// Runs BENCH-CERTIFY: both certifier engines over `scope` at `threads`
/// workers with the full protocol set, a byte-level report comparison, a
/// dedicated per-protocol replay-timing pass, and (when `push_scopes` is
/// nonempty) the scope-push runs — e.g. a full `3,5` and a sampled `4,4`.
pub fn certify_scale(
    scope: &rdt_verify::Scope,
    threads: usize,
    push_scopes: &[(rdt_verify::Scope, Option<f64>)],
) -> CertifyScaleResult {
    use rdt_verify::{CertifyEngine, CertifyOptions};

    let base_options = CertifyOptions {
        threads,
        engine: CertifyEngine::PrefixBaseline,
        ..CertifyOptions::default()
    };
    let orbit_options = CertifyOptions {
        threads,
        engine: CertifyEngine::OrbitPruned,
        ..CertifyOptions::default()
    };
    let (base_report, _, baseline_ns) = timed_certify_best_of_two(scope, &base_options);
    let (orbit_report, stats, orbit_ns) = timed_certify_best_of_two(scope, &orbit_options);
    let reports_equal = base_report.to_json().pretty() == orbit_report.to_json().pretty();

    // Per-protocol replay timing, as a dedicated pass: timing inside the
    // certification loop would put two clock reads on every one of the
    // hot path's millions of replays.
    let mut schedules = Vec::new();
    rdt_verify::enumerate_schedules_orbit(scope, |s| schedules.push(s.clone()));
    let mut replay = Vec::new();
    for protocol in rdt_verify::CertProtocol::default_set() {
        let mut out = rdt_verify::ReplayedOps::default();
        let watch = rdt_sim::Stopwatch::start();
        for schedule in &schedules {
            protocol.replay_ops(schedule, &mut out);
        }
        replay.push(CertifyReplayRow {
            protocol: protocol.name().to_string(),
            ns: watch.elapsed().as_nanos() as u64,
            patterns: schedules.len() as u64,
        });
    }

    let scope_push = push_scopes
        .iter()
        .map(|(push_scope, sample)| {
            let options = CertifyOptions {
                threads,
                sample: *sample,
                ..CertifyOptions::default()
            };
            let (report, _, ns) = timed_certify(push_scope, &options);
            CertifyScaleRun {
                scope: push_scope.to_string(),
                sample: *sample,
                structures: report.counts.structures,
                replayable: report.counts.replayable,
                replayed: report.sampled,
                ns,
                certified_ok: report.certified_ok(),
            }
        })
        .collect();

    let counts = &orbit_report.counts;
    CertifyScaleResult {
        scope: scope.to_string(),
        threads,
        baseline_ns,
        orbit_ns,
        speedup: baseline_ns as f64 / orbit_ns.max(1) as f64,
        reports_equal,
        structures: counts.structures,
        canonical: counts.canonical,
        orbits_pruned: counts.pruned_symmetry,
        unrealizable: counts.unrealizable,
        replayed: counts.replayable,
        units: stats.orbit.units,
        layouts_pruned: stats.orbit.layouts_pruned,
        subtree_cuts: stats.orbit.subtree_cuts,
        dedup_hits: stats.dedup_hits,
        prefix_reuse_ratio: stats.prefix_reuse_ratio(),
        structures_per_sec: counts.structures as f64 / (orbit_ns.max(1) as f64 / 1_000_000_000.0),
        replay,
        scope_push,
    }
}

impl ToJson for CertifyScaleResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scope", Json::Str(self.scope.clone())),
            ("threads", self.threads.to_json()),
            ("baseline_ns", self.baseline_ns.to_json()),
            ("orbit_ns", self.orbit_ns.to_json()),
            ("speedup", self.speedup.to_json()),
            ("reports_equal", Json::Bool(self.reports_equal)),
            ("structures", self.structures.to_json()),
            ("canonical", self.canonical.to_json()),
            ("orbits_pruned", self.orbits_pruned.to_json()),
            ("unrealizable", self.unrealizable.to_json()),
            ("replayed", self.replayed.to_json()),
            ("units", self.units.to_json()),
            ("layouts_pruned", self.layouts_pruned.to_json()),
            ("subtree_cuts", self.subtree_cuts.to_json()),
            ("dedup_hits", self.dedup_hits.to_json()),
            ("prefix_reuse_ratio", self.prefix_reuse_ratio.to_json()),
            ("structures_per_sec", self.structures_per_sec.to_json()),
            ("replay", self.replay.to_json()),
            ("scope_push", self.scope_push.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_machinery_produces_full_grid() {
        let result = figure("fig7", EnvironmentKind::Random, 4, &[2, 8], &[1, 2], 150);
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert_eq!(row.points.len(), protocol_set().len());
            assert!(row.r_of(ProtocolKind::Bhmr).is_some());
            assert!(row.reduction_vs_fdas(ProtocolKind::Bhmr).is_some());
        }
    }

    #[test]
    fn corollary45_has_no_mismatches_on_small_runs() {
        let result = corollary45(EnvironmentKind::Random, 3, &[5], 60);
        assert!(result.checked > 0);
        assert_eq!(result.mismatches, 0);
    }

    #[test]
    fn rdt_check_small_grid() {
        let result = rdt_check(3, &[9], 40);
        assert_eq!(result.unexpected_failures, 0);
    }

    #[test]
    fn necessity_counts_are_sane() {
        let result = necessity(3, &[5], 60);
        for (protocol, examined, necessary, ratio, load_bearing, basics) in &result.rows {
            assert!(necessary <= examined, "{protocol}");
            assert!((0.0..=1.0).contains(ratio), "{protocol}");
            assert!(load_bearing <= basics, "{protocol}");
        }
    }

    #[test]
    fn recovery_rows_cover_protocols() {
        let result = recovery_experiment(3, &[3], 80);
        assert_eq!(result.rows.len(), 4);
        for (_, discarded, _, _, reclaim) in &result.rows {
            assert!(*discarded >= 0.0);
            assert!((0.0..=1.0).contains(reclaim));
        }
    }

    #[test]
    fn recovery_exec_gate_holds_and_is_thread_invariant() {
        let result = recovery_exec(4, &[1, 2], 200, 4.0, 2, 1);
        assert_eq!(result.rows.len(), 2 * recovery_exec_protocols().len());
        for row in &result.rows {
            assert_eq!(row.runs, 2);
            assert!(
                row.lost_replayed <= row.deliveries_undone,
                "{}",
                row.protocol
            );
        }
        result.rdt_bounds_domino().unwrap();
        // The fan-out is a pure map over the grid: any thread count yields
        // bit-identical rows.
        assert_eq!(result, recovery_exec(4, &[1, 2], 200, 4.0, 2, 4));
    }

    #[test]
    fn compaction_bench_spot_check_is_exact() {
        // Tiny scale: throughput gates are noise at this size, but the
        // differential spot-check and the reclamation counters must hold.
        let bench = compaction_bench(4, 4_000, 2_000, 250, 7);
        assert_eq!(bench.compacted.len(), 10);
        assert_eq!(bench.control.len(), 10);
        assert_eq!(
            bench.untrackable_at_cap_compacted,
            bench.untrackable_at_cap_control
        );
        assert!(bench.compactions > 0);
        assert!(bench.reclaimed_rows > 0);
        assert!(bench.peak_resident_compacted > 0);
        assert!(
            bench.resident_after_final_compaction < bench.control_final_resident,
            "compaction must actually shrink the resident closure"
        );
    }

    #[test]
    fn sim_throughput_covers_the_dependency_lattice_in_both_environments() {
        let bench = sim_throughput(60, 1);
        assert_eq!(bench.rows.len(), 10);
        assert!(bench.row("random", ProtocolKind::Bhmr).is_some());
        assert!(bench.row("groups", ProtocolKind::Fdi).is_some());
        for row in &bench.rows {
            assert!(row.events > 0, "{}/{}", row.environment, row.protocol);
            assert!(row.legacy_ns > 0 && row.executor_ns > 0);
        }
        // No counting allocator in the test harness: the columns must
        // honestly read as disabled rather than fabricate counts.
        assert!(!bench.alloc_counting);
        assert_eq!(bench.row("random", ProtocolKind::Bhmr).unwrap().n, 8);
        assert_eq!(bench.row("groups", ProtocolKind::Bhmr).unwrap().n, 12);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn certify_scale_spot_check_counts_and_shape() {
        // Tiny scale: the >= 2x speedup gate is noise at this size, but
        // report equality, the orbit accounting, and the JSON shape must
        // hold exactly.
        let scope = rdt_verify::Scope::tiny();
        let sampled = rdt_verify::Scope::with_basics(2, 2, 0).expect("in range");
        let bench = certify_scale(&scope, 1, &[(sampled, Some(0.5))]);
        assert!(bench.reports_equal);
        assert_eq!(bench.structures, 140);
        assert_eq!(bench.structures - bench.canonical, bench.orbits_pruned);
        assert_eq!(
            bench.replay.len(),
            rdt_verify::CertProtocol::default_set().len()
        );
        for row in &bench.replay {
            assert_eq!(row.patterns, bench.replayed);
        }
        assert_eq!(bench.scope_push.len(), 1);
        let push = &bench.scope_push[0];
        assert_eq!(push.sample, Some(0.5));
        assert!(push.certified_ok);
        assert!(push.replayed < push.replayable);
        let json = bench.to_json().pretty();
        for key in [
            "\"baseline_ns\"",
            "\"orbit_ns\"",
            "\"speedup\"",
            "\"prefix_reuse_ratio\"",
            "\"structures_per_sec\"",
            "\"scope_push\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
