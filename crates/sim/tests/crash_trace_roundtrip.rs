//! Direct round-trip coverage for [`TraceEvent::Crash`]: JSON serde both
//! ways, pattern conversion (crash markers carry no pattern structure),
//! and linearization of crashy union-history traces. Previously these
//! paths were only exercised indirectly through the simulator.

use rdt_core::ProtocolKind;
use rdt_json::{Json, ToJson};
use rdt_sim::{
    run_protocol_kind, scripted, BasicCheckpointModel, DelayModel, SimConfig, SimTime,
    StopCondition, Trace, TraceEvent,
};

/// A handwritten crashy trace in the `--save-trace` wire format: P0 sends
/// to P1, P1 checkpoints and delivers, P1 crashes, then P0 checkpoints.
const CRASHY_TRACE: &str = r#"{
  "n": 2,
  "events": [
    ["send", 1, 0, 1, 0],
    ["ckpt", 2, 1, 1, "basic"],
    ["deliver", 3, 1, 0, 0],
    ["crash", 4, 1],
    ["ckpt", 5, 0, 1, "forced"]
  ]
}"#;

#[test]
fn crash_markers_roundtrip_through_json() {
    let trace = Trace::from_json_str(CRASHY_TRACE).expect("well-formed crashy trace");
    assert_eq!(trace.num_processes(), 2);
    assert_eq!(trace.events().len(), 5);
    let crash = &trace.events()[3];
    match *crash {
        TraceEvent::Crash { at, process } => {
            assert_eq!(at, SimTime::from_ticks(4));
            assert_eq!(process.index(), 1);
        }
        ref other => panic!("expected a crash marker, parsed {other:?}"),
    }

    // Serialize → parse must reproduce the events exactly.
    let reparsed = Trace::from_json_str(&trace.to_json().to_string()).expect("round-trip");
    assert_eq!(reparsed.events(), trace.events());
    assert_eq!(reparsed.num_processes(), trace.num_processes());
}

#[test]
fn malformed_crash_events_are_rejected() {
    // A crash marker missing its process operand.
    let missing = r#"{"n": 2, "events": [["crash", 4]]}"#;
    assert!(Trace::from_json_str(missing).is_err());
    // Crash markers out of chronological order.
    let unordered = r#"{"n": 2, "events": [["ckpt", 5, 0, 1, "basic"], ["crash", 4, 1]]}"#;
    assert!(Trace::from_json_str(unordered).is_err());
}

#[test]
fn crash_markers_carry_no_pattern_structure() {
    let crashy = Trace::from_json_str(CRASHY_TRACE).expect("well-formed crashy trace");

    // The same trace with the crash markers stripped out, rebuilt through
    // the wire format (the only public construction path).
    let events: Vec<Json> = crashy
        .events()
        .iter()
        .filter(|e| !matches!(e, TraceEvent::Crash { .. }))
        .map(ToJson::to_json)
        .collect();
    let stripped_json = Json::obj([("n", Json::U64(2)), ("events", Json::Arr(events))]);
    let stripped = Trace::from_json_str(&stripped_json.to_string()).expect("stripped trace");

    let (a, b) = (crashy.to_pattern(), stripped.to_pattern());
    assert_eq!(a.num_messages(), b.num_messages());
    assert_eq!(a.num_processes(), b.num_processes());
    let (la, lb) = (a.linearize(), b.linearize());
    assert!(la.is_ok(), "crashy union history stays realizable");
    assert_eq!(la.is_ok(), lb.is_ok());
}

#[test]
fn simulated_crashy_traces_roundtrip_and_linearize() {
    // A real crashy run: union-history trace with injected crash markers
    // must survive serde byte-for-byte and still convert to a realizable
    // pattern afterwards.
    let config = SimConfig::new(4)
        .with_seed(3)
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 40 })
        .with_delay(DelayModel::Exponential { mean: 30 })
        .with_stop(StopCondition::MessagesSent(80))
        .with_crash_rate(4.0)
        .with_max_crashes(2);
    let script: Vec<(usize, usize)> = (0..100)
        .map(|k| (k % 4, (k + 1 + (k / 7) % 3) % 4))
        .collect();
    let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, &mut scripted(script));

    let crashes = outcome
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Crash { .. }))
        .count();
    assert!(crashes > 0, "seed 3 is pinned to fire at least one crash");

    let reparsed = Trace::from_json_str(&outcome.trace.to_json().to_string()).expect("round-trip");
    assert_eq!(reparsed.events(), outcome.trace.events());
    let pattern = reparsed.to_pattern();
    assert!(pattern.linearize().is_ok());
    assert_eq!(
        pattern.num_messages() as u64,
        outcome.stats.total.messages_sent
    );
}
