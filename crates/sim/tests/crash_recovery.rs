//! End-to-end crash-injection behavior through the public `rdt-sim` API:
//! lost-message replay, report invariants, and cross-protocol sanity.

use rdt_core::ProtocolKind;
use rdt_sim::{
    run_protocol_kind, scripted, BasicCheckpointModel, DelayModel, SimConfig, StopCondition,
    TraceEvent, TraceMetrics,
};

/// Four processes, mixed destinations, timers on: enough interleaving for
/// every recovery code path (orphans, undone deliveries, lost messages).
fn traffic_config(seed: u64) -> SimConfig {
    SimConfig::new(4)
        .with_seed(seed)
        .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 40 })
        .with_delay(DelayModel::Exponential { mean: 30 })
        .with_stop(StopCondition::MessagesSent(80))
        .with_crash_rate(4.0)
        .with_max_crashes(2)
}

fn traffic_script() -> Vec<(usize, usize)> {
    (0..100)
        .map(|k| (k % 4, (k + 1 + (k / 7) % 3) % 4))
        .collect()
}

#[test]
fn lost_messages_are_replayed_from_the_log() {
    // Pinned seed where the crash undoes deliveries whose sends survive
    // the rollback: those are lost messages, and the sender-side log must
    // replay every one of them as a fresh send.
    let outcome = run_protocol_kind(
        ProtocolKind::Uncoordinated,
        &traffic_config(3),
        &mut scripted(traffic_script()),
    );
    let report = outcome.recovery.expect("crashes enabled");
    assert!(
        report.total_lost_replayed() > 0,
        "seed 3 is pinned to exercise the lost-message path"
    );
    assert!(report.total_orphans_discarded() > 0);
    // Replays are ordinary sends: the union-history trace still converts
    // to a realizable pattern and its message count matches the stats.
    let pattern = outcome.trace.to_pattern();
    assert!(pattern.linearize().is_ok());
    assert_eq!(
        pattern.num_messages() as u64,
        outcome.stats.total.messages_sent
    );
}

#[test]
fn crash_reports_are_internally_consistent() {
    for seed in 0..8u64 {
        for kind in [
            ProtocolKind::Uncoordinated,
            ProtocolKind::Fdas,
            ProtocolKind::Bhmr,
        ] {
            let config = traffic_config(seed);
            let outcome = run_protocol_kind(kind, &config, &mut scripted(traffic_script()));
            let report = outcome.recovery.expect("crashes enabled");
            assert!(report.crashes.len() <= config.max_crashes as usize);
            let markers = outcome
                .trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::Crash { .. }))
                .count();
            assert_eq!(markers, report.crashes.len());
            assert_eq!(TraceMetrics::of(&outcome.trace).crashes as usize, markers);
            for crash in &report.crashes {
                assert_eq!(crash.line.len(), config.n);
                assert_eq!(crash.rollback_depth.len(), config.n);
                assert!(crash.domino_span >= 1, "the victim always rolls back");
                assert!(crash.domino_span <= config.n);
                assert!(crash.rolled_to_initial <= crash.domino_span);
                assert!(crash.lost_replayed <= crash.deliveries_undone);
                assert!(u64::from(crash.max_depth()) <= report.total_rollback_depth());
            }
        }
    }
}

#[test]
fn recovery_compaction_is_observationally_transparent() {
    // Compacting the shadow engine after every recovery line must not
    // change anything observable: same trace, same crash records, same
    // online verdicts — only the engine's resident footprint shrinks.
    let mut total_compactions = 0u64;
    for seed in [3u64, 5, 7] {
        let plain = traffic_config(seed).with_online_rdt_probe(true);
        let compacting = plain.clone().with_compaction(true);
        let a = run_protocol_kind(ProtocolKind::Fdas, &plain, &mut scripted(traffic_script()));
        let b = run_protocol_kind(
            ProtocolKind::Fdas,
            &compacting,
            &mut scripted(traffic_script()),
        );
        assert_eq!(a.trace.events(), b.trace.events(), "seed {seed} trace");
        let (ra, rb) = (
            a.recovery.expect("crashes enabled"),
            b.recovery.expect("crashes enabled"),
        );
        assert_eq!(ra.crashes, rb.crashes, "seed {seed} crash records");
        assert_eq!(ra.compactions, 0, "plain runs never compact");
        let (oa, ob) = (
            a.online_rdt.expect("probe enabled"),
            b.online_rdt.expect("probe enabled"),
        );
        assert_eq!(oa.events_appended, ob.events_appended);
        assert_eq!(oa.untrackable_pairs, ob.untrackable_pairs);
        assert_eq!(oa.first_violation_event, ob.first_violation_event);
        assert!(rb.reclaimed_rows >= rb.compactions, "rows per compaction");
        total_compactions += rb.compactions;
    }
    assert!(
        total_compactions > 0,
        "at least one seed must discard state, or the test is vacuous"
    );
}

#[test]
fn crash_schedule_is_independent_of_the_protocol() {
    // The crash stream is drawn from a dedicated RNG: as long as the
    // underlying schedule is identical (same workload, same seed), every
    // protocol sees the crash clock start at the same instants.
    let first_crash = |kind: ProtocolKind| {
        run_protocol_kind(kind, &traffic_config(3), &mut scripted(traffic_script()))
            .recovery
            .expect("crashes enabled")
            .crashes
            .first()
            .map(|c| (c.at, c.process))
    };
    let unc = first_crash(ProtocolKind::Uncoordinated);
    assert!(unc.is_some(), "seed 3 fires at least one crash");
    assert_eq!(unc, first_crash(ProtocolKind::Fdas));
    assert_eq!(unc, first_crash(ProtocolKind::Bhmr));
}
