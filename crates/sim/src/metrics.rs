//! Post-run trace analysis: distributions behind the aggregate counters,
//! plus the workspace's one sanctioned wall-clock reader ([`Stopwatch`]).

use std::time::{Duration, Instant};

use rdt_core::CheckpointKind;

use crate::{SimTime, Trace, TraceEvent};

/// Wall-clock phase timer: the single place simulation and benchmark code
/// is allowed to read the host clock.
///
/// Everything outside the metrics layer must stay a pure function of its
/// inputs (the `rdt-lint` `wall-clock` rule enforces this), so throughput
/// reporting and progress lines obtain elapsed time through a `Stopwatch`
/// instead of calling [`Instant::now`] inline.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in (fractional) seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Summary statistics of a sample of `u64` values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Sample standard deviation (0 with fewer than two samples).
    pub std_dev: f64,
}

impl SampleStats {
    /// Computes the summary of `values`.
    pub fn of(values: &[u64]) -> SampleStats {
        if values.is_empty() {
            return SampleStats::default();
        }
        let count = values.len() as u64;
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / count as f64;
        let std_dev = if values.len() < 2 {
            0.0
        } else {
            (values
                .iter()
                .map(|&v| (v as f64 - mean).powi(2))
                .sum::<f64>()
                / (values.len() - 1) as f64)
                .sqrt()
        };
        SampleStats {
            count,
            min,
            max,
            mean,
            std_dev,
        }
    }
}

/// Distribution-level metrics extracted from one [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMetrics {
    /// Message latency (send to delivery), in ticks, over all delivered
    /// messages.
    pub message_latency: SampleStats,
    /// Checkpoint-interval lengths (ticks between consecutive checkpoints
    /// of one process), pooled over processes.
    pub checkpoint_intervals: SampleStats,
    /// Length of forced-checkpoint bursts: maximal runs of consecutive
    /// checkpoints of one process that are all forced. Long bursts are the
    /// checkpoint cascades dependency-tracking protocols are prone to on
    /// cyclic traffic.
    pub forced_bursts: SampleStats,
    /// Per-process event counts `(sends, deliveries, basic, forced)`.
    pub per_process: Vec<(u64, u64, u64, u64)>,
    /// Injected crashes recorded in the trace.
    pub crashes: u64,
}

impl TraceMetrics {
    /// Computes the metrics of `trace`.
    pub fn of(trace: &Trace) -> TraceMetrics {
        let n = trace.num_processes();
        let mut send_times: Vec<Option<SimTime>> = Vec::new();
        let mut latencies = Vec::new();
        let mut last_checkpoint: Vec<Option<SimTime>> = vec![None; n];
        let mut intervals = Vec::new();
        let mut burst: Vec<u64> = vec![0; n];
        let mut bursts = Vec::new();
        let mut per_process = vec![(0u64, 0u64, 0u64, 0u64); n];
        let mut crashes = 0u64;

        for event in trace.events() {
            match *event {
                TraceEvent::Send {
                    at, from, message, ..
                } => {
                    if send_times.len() <= message.0 {
                        send_times.resize(message.0 + 1, None);
                    }
                    send_times[message.0] = Some(at);
                    per_process[from.index()].0 += 1;
                }
                TraceEvent::Deliver {
                    at, to, message, ..
                } => {
                    if let Some(Some(sent)) = send_times.get(message.0) {
                        latencies.push(at.since(*sent).ticks());
                    }
                    per_process[to.index()].1 += 1;
                }
                TraceEvent::Checkpoint { at, id, kind } => {
                    let i = id.process.index();
                    if let Some(prev) = last_checkpoint[i] {
                        intervals.push(at.since(prev).ticks());
                    }
                    last_checkpoint[i] = Some(at);
                    match kind {
                        CheckpointKind::Forced => {
                            burst[i] += 1;
                            per_process[i].3 += 1;
                        }
                        _ => {
                            if burst[i] > 0 {
                                bursts.push(burst[i]);
                                burst[i] = 0;
                            }
                            if kind == CheckpointKind::Basic {
                                per_process[i].2 += 1;
                            }
                        }
                    }
                }
                TraceEvent::Crash { .. } => crashes += 1,
            }
        }
        bursts.extend(burst.into_iter().filter(|&b| b > 0));

        TraceMetrics {
            message_latency: SampleStats::of(&latencies),
            checkpoint_intervals: SampleStats::of(&intervals),
            forced_bursts: SampleStats::of(&bursts),
            per_process,
            crashes,
        }
    }

    /// Renders a compact human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let line = |s: &SampleStats| {
            format!(
                "n={} min={} max={} mean={:.1} sd={:.1}",
                s.count, s.min, s.max, s.mean, s.std_dev
            )
        };
        let _ = writeln!(
            out,
            "message latency (ticks)   : {}",
            line(&self.message_latency)
        );
        let _ = writeln!(
            out,
            "checkpoint interval (ticks): {}",
            line(&self.checkpoint_intervals)
        );
        let _ = writeln!(
            out,
            "forced-checkpoint bursts  : {}",
            line(&self.forced_bursts)
        );
        if self.crashes > 0 {
            let _ = writeln!(out, "injected crashes          : {}", self.crashes);
        }
        for (i, (s, d, b, f)) in self.per_process.iter().enumerate() {
            let _ = writeln!(
                out,
                "P{i}: {s} sends, {d} deliveries, {b} basic + {f} forced"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scripted, BasicCheckpointModel, Runner, SimConfig, StopCondition};
    use rdt_core::{Fdas, Uncoordinated};

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::of(&[2, 4, 6]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(SampleStats::of(&[]), SampleStats::default());
        assert_eq!(SampleStats::of(&[7]).std_dev, 0.0);
    }

    #[test]
    fn latency_matches_constant_delay() {
        let config = SimConfig::new(2)
            .with_seed(1)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_delay(crate::DelayModel::Constant { ticks: 25 })
            .with_stop(StopCondition::MessagesSent(10));
        let outcome = Runner::new(&config, Uncoordinated::new)
            .run(&mut scripted((0..10).map(|_| (0, 1)).collect()));
        let metrics = TraceMetrics::of(&outcome.trace);
        assert_eq!(metrics.message_latency.count, 10);
        assert_eq!(metrics.message_latency.min, 25);
        assert_eq!(metrics.message_latency.max, 25);
    }

    #[test]
    fn per_process_counts_match_stats() {
        let config = SimConfig::new(2)
            .with_seed(3)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 20 })
            .with_stop(StopCondition::MessagesSent(20));
        let outcome = Runner::new(&config, Fdas::new).run(&mut scripted(
            (0..20).map(|k| (k % 2, (k + 1) % 2)).collect(),
        ));
        let metrics = TraceMetrics::of(&outcome.trace);
        for (i, stats) in outcome.stats.per_process.iter().enumerate() {
            let (s, d, b, f) = metrics.per_process[i];
            assert_eq!(s, stats.messages_sent);
            assert_eq!(d, stats.messages_delivered);
            assert_eq!(b, stats.basic_checkpoints);
            assert_eq!(f, stats.forced_checkpoints);
        }
    }

    #[test]
    fn render_is_readable() {
        let trace = Trace::new(2);
        let metrics = TraceMetrics::of(&trace);
        let text = metrics.render();
        assert!(text.contains("message latency"));
        assert!(text.contains("P0:"));
    }
}
