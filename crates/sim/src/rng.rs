//! Deterministic randomness for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::SimDuration;

/// Seeded random number generator with the distributions the workloads and
/// delay models need.
///
/// Wraps `rand`'s `SmallRng` so every run is a pure function of its seed;
/// one `SimRng` per run, threaded through the event loop and the
/// application callbacks.
///
/// # Example
///
/// ```rust
/// use rdt_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator (used to give each process
    /// its own stream without correlation).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix a fresh draw with the salt through splitmix64 finalization.
        let mut z = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean, rounded to
    /// ticks (minimum 1 tick so time always advances).
    ///
    /// # Panics
    ///
    /// Panics if `mean_ticks == 0`.
    pub fn exponential(&mut self, mean_ticks: u64) -> SimDuration {
        assert!(mean_ticks > 0, "mean must be positive");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let ticks = (-u.ln() * mean_ticks as f64).round() as u64;
        SimDuration::from_ticks(ticks.max(1))
    }

    /// Uniformly distributed duration in `[lo, hi]` ticks (minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_duration(&mut self, lo: u64, hi: u64) -> SimDuration {
        SimDuration::from_ticks(self.uniform_u64(lo, hi).max(1))
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.uniform_u64(0, u64::MAX) == b.uniform_u64(0, u64::MAX)).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_deterministic_and_distinct() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        assert_eq!(a1.uniform_u64(0, u64::MAX), a2.uniform_u64(0, u64::MAX));
        let mut b1 = root1.fork(1);
        assert_ne!(a1.uniform_u64(0, u64::MAX), b1.uniform_u64(0, u64::MAX));
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed(5);
        let mean = 1000u64;
        let total: u64 = (0..20_000).map(|_| rng.exponential(mean).ticks()).sum();
        let empirical = total as f64 / 20_000.0;
        assert!((empirical - mean as f64).abs() < mean as f64 * 0.05, "mean {empirical}");
    }

    #[test]
    fn durations_are_never_zero() {
        let mut rng = SimRng::seed(6);
        for _ in 0..1000 {
            assert!(rng.exponential(1).ticks() >= 1);
            assert!(rng.uniform_duration(0, 1).ticks() >= 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::seed(8);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
