//! Deterministic randomness for simulations.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman
//! & Vigna) seeded through splitmix64, so the crate needs no external RNG
//! dependency and every stream is a pure, portable function of its seed —
//! the same seed produces the same draws on every platform and toolchain.

use crate::SimDuration;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded random number generator with the distributions the workloads and
/// delay models need.
///
/// Every run is a pure function of its seed; one `SimRng` per run,
/// threaded through the event loop and the application callbacks.
///
/// # Example
///
/// ```rust
/// use rdt_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits of one draw).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator (used to give each process
    /// its own stream without correlation).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        // Mix a fresh draw with the salt through splitmix64 finalization.
        let mut z = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed(z ^ (z >> 31))
    }

    /// Derives the seed of one point of a deterministic sweep: a pure
    /// mix of `(base_seed, point_index)` that does not depend on any
    /// generator state, so a sweep's points can be computed in any order
    /// (or on any thread) and still see identical randomness.
    pub fn derive_seed(base_seed: u64, point_index: u64) -> u64 {
        let mut sm = base_seed ^ point_index.wrapping_mul(0xA076_1D64_78BD_642F);
        // Two rounds so that low-entropy (base, index) pairs still land far
        // apart in seed space.
        let first = splitmix64(&mut sm);
        let mut sm2 = first ^ base_seed.rotate_left(32);
        splitmix64(&mut sm2)
    }

    /// Uniform integer in `[lo, hi]` (inclusive), by rejection sampling so
    /// the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return lo + draw % span;
            }
        }
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.uniform_u64(0, n as u64 - 1) as usize
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean, rounded to
    /// ticks (minimum 1 tick so time always advances).
    ///
    /// # Panics
    ///
    /// Panics if `mean_ticks == 0`.
    pub fn exponential(&mut self, mean_ticks: u64) -> SimDuration {
        assert!(mean_ticks > 0, "mean must be positive");
        // Draw in (0, 1) so the logarithm is finite.
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let ticks = (-u.ln() * mean_ticks as f64).round() as u64;
        SimDuration::from_ticks(ticks.max(1))
    }

    /// Uniformly distributed duration in `[lo, hi]` ticks (minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_duration(&mut self, lo: u64, hi: u64) -> SimDuration {
        SimDuration::from_ticks(self.uniform_u64(lo, hi).max(1))
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32)
            .filter(|_| a.uniform_u64(0, u64::MAX) == b.uniform_u64(0, u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_deterministic_and_distinct() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        assert_eq!(a1.uniform_u64(0, u64::MAX), a2.uniform_u64(0, u64::MAX));
        let mut b1 = root1.fork(1);
        assert_ne!(a1.uniform_u64(0, u64::MAX), b1.uniform_u64(0, u64::MAX));
    }

    #[test]
    fn derive_seed_is_pure_and_spreads() {
        assert_eq!(SimRng::derive_seed(1, 0), SimRng::derive_seed(1, 0));
        assert_ne!(SimRng::derive_seed(1, 0), SimRng::derive_seed(1, 1));
        assert_ne!(SimRng::derive_seed(1, 0), SimRng::derive_seed(2, 0));
        // Sequential indices must not collide over a realistic sweep size.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42] {
            for index in 0..10_000u64 {
                assert!(seen.insert(SimRng::derive_seed(base, index)), "collision");
            }
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed(5);
        let mean = 1000u64;
        let total: u64 = (0..20_000).map(|_| rng.exponential(mean).ticks()).sum();
        let empirical = total as f64 / 20_000.0;
        assert!(
            (empirical - mean as f64).abs() < mean as f64 * 0.05,
            "mean {empirical}"
        );
    }

    #[test]
    fn uniform_is_unbiased_at_the_edges() {
        let mut rng = SimRng::seed(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.uniform_u64(0, 2) as usize] += 1;
        }
        for count in counts {
            assert!((9_000..11_000).contains(&count), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn durations_are_never_zero() {
        let mut rng = SimRng::seed(6);
        for _ in 0..1000 {
            assert!(rng.exponential(1).ticks() >= 1);
            assert!(rng.uniform_duration(0, 1).ticks() >= 1);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SimRng::seed(8);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
