//! Dynamic protocol selection.

use rdt_core::{
    Bcs, Bhmr, BhmrCausalOnly, BhmrNoSimple, Cas, Cbr, Fdas, Fdi, Nras, ProtocolKind, Uncoordinated,
};

use crate::{Application, RunOutcome, Runner, SimConfig, SimScratch};

/// Runs one simulation with the protocol chosen by `kind`.
///
/// The protocols stay monomorphized — this function only selects which
/// concrete [`Runner`] to instantiate — so harnesses can sweep the whole
/// protocol lattice from configuration data without paying for dynamic
/// dispatch inside the event loop.
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, scripted, SimConfig};
///
/// let config = SimConfig::new(2).with_seed(1);
/// for kind in ProtocolKind::all() {
///     let outcome = run_protocol_kind(*kind, &config, &mut scripted(vec![(0, 1)]));
///     assert_eq!(outcome.stats.total.messages_sent, 1);
/// }
/// ```
pub fn run_protocol_kind(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
) -> RunOutcome {
    match kind {
        ProtocolKind::Bhmr => Runner::new(config, Bhmr::new).run(app),
        ProtocolKind::BhmrNoSimple => Runner::new(config, BhmrNoSimple::new).run(app),
        ProtocolKind::BhmrCausalOnly => Runner::new(config, BhmrCausalOnly::new).run(app),
        ProtocolKind::Fdas => Runner::new(config, Fdas::new).run(app),
        ProtocolKind::Fdi => Runner::new(config, Fdi::new).run(app),
        ProtocolKind::Nras => Runner::new(config, Nras::new).run(app),
        ProtocolKind::Cas => Runner::new(config, Cas::new).run(app),
        ProtocolKind::Cbr => Runner::new(config, Cbr::new).run(app),
        ProtocolKind::Bcs => Runner::new(config, Bcs::new).run(app),
        ProtocolKind::Uncoordinated => Runner::new(config, Uncoordinated::new).run(app),
    }
}

/// Like [`run_protocol_kind`], but drawing buffers from `scratch` and
/// reclaiming them after `consume` has read the outcome.
///
/// This is the allocation-free inner loop for sweep harnesses: `consume`
/// extracts whatever it needs (statistics, a pattern digest) from the
/// borrowed [`RunOutcome`], then the trace and record buffers flow back
/// into `scratch` for the next run. Results are identical to
/// [`run_protocol_kind`] — the scratch only recycles memory.
pub fn run_protocol_kind_with_scratch<R>(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
    scratch: &mut SimScratch,
    consume: impl FnOnce(&RunOutcome) -> R,
) -> R {
    let outcome = match kind {
        ProtocolKind::Bhmr => Runner::new_with_scratch(config, Bhmr::new, scratch).run(app),
        ProtocolKind::BhmrNoSimple => {
            Runner::new_with_scratch(config, BhmrNoSimple::new, scratch).run(app)
        }
        ProtocolKind::BhmrCausalOnly => {
            Runner::new_with_scratch(config, BhmrCausalOnly::new, scratch).run(app)
        }
        ProtocolKind::Fdas => Runner::new_with_scratch(config, Fdas::new, scratch).run(app),
        ProtocolKind::Fdi => Runner::new_with_scratch(config, Fdi::new, scratch).run(app),
        ProtocolKind::Nras => Runner::new_with_scratch(config, Nras::new, scratch).run(app),
        ProtocolKind::Cas => Runner::new_with_scratch(config, Cas::new, scratch).run(app),
        ProtocolKind::Cbr => Runner::new_with_scratch(config, Cbr::new, scratch).run(app),
        ProtocolKind::Bcs => Runner::new_with_scratch(config, Bcs::new, scratch).run(app),
        ProtocolKind::Uncoordinated => {
            Runner::new_with_scratch(config, Uncoordinated::new, scratch).run(app)
        }
    };
    let result = consume(&outcome);
    scratch.reclaim(outcome);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scripted, BasicCheckpointModel, DelayModel, StopCondition};

    #[test]
    fn all_kinds_run_and_report_their_name_consistently() {
        let config = SimConfig::new(3)
            .with_seed(21)
            .with_delay(DelayModel::Uniform { lo: 5, hi: 50 })
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 40 })
            .with_stop(StopCondition::MessagesSent(20));
        let script: Vec<(usize, usize)> = (0..30).map(|k| (k % 3, (k + 1) % 3)).collect();
        for &kind in ProtocolKind::all() {
            let outcome = run_protocol_kind(kind, &config, &mut scripted(script.clone()));
            assert_eq!(outcome.stats.total.messages_sent, 20, "{kind}");
            assert_eq!(outcome.stats.total.messages_delivered, 20, "{kind}");
            if kind == ProtocolKind::Uncoordinated {
                assert_eq!(outcome.stats.total.forced_checkpoints, 0);
            }
        }
    }

    #[test]
    fn identical_schedules_across_dependency_protocols() {
        // Delay draws happen in the same order regardless of protocol, so
        // message schedules coincide; forced-checkpoint counts then order
        // by the protocol lattice.
        let config = SimConfig::new(4)
            .with_seed(99)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 30 })
            .with_stop(StopCondition::MessagesSent(40));
        let script: Vec<(usize, usize)> = (0..60).map(|k| (k % 4, (k + 1 + k % 3) % 4)).collect();

        let sent_times = |kind: ProtocolKind| {
            let outcome = run_protocol_kind(kind, &config, &mut scripted(script.clone()));
            outcome
                .trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    crate::TraceEvent::Send { at, .. } => Some(*at),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            sent_times(ProtocolKind::Bhmr),
            sent_times(ProtocolKind::Fdas)
        );
        assert_eq!(
            sent_times(ProtocolKind::Bhmr),
            sent_times(ProtocolKind::Uncoordinated)
        );
    }
}
