//! Dynamic protocol selection.

use rdt_core::{
    spawner, Bcs, Bhmr, BhmrCausalOnly, BhmrNoSimple, Cas, Cbr, ExecutorSpec, Fdas, Fdi, Nras,
    ProtocolKind, Uncoordinated,
};

use crate::{Application, RunOutcome, Runner, SimConfig, SimError, SimScratch};

/// Runs one simulation with the protocol chosen by `kind`.
///
/// The protocols stay monomorphized — this function only selects which
/// concrete [`Runner`] to instantiate — so harnesses can sweep the whole
/// protocol lattice from configuration data without paying for dynamic
/// dispatch inside the event loop.
///
/// The five dependency-tracking protocols run on the packed
/// round-executor engine (`rdt_core::ExecutorCell`): zero per-message
/// allocation and word-parallel predicate evaluation, behaviourally
/// identical to the legacy implementations (pinned by the differential
/// suite). [`run_protocol_kind_legacy`] keeps the legacy path available
/// as an oracle and for benchmarking.
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, scripted, SimConfig};
///
/// let config = SimConfig::new(2).with_seed(1);
/// for kind in ProtocolKind::all() {
///     let outcome = run_protocol_kind(*kind, &config, &mut scripted(vec![(0, 1)]));
///     assert_eq!(outcome.stats.total.messages_sent, 1);
/// }
/// ```
pub fn run_protocol_kind(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
) -> RunOutcome {
    match kind {
        ProtocolKind::Bhmr => Runner::new(config, spawner(ExecutorSpec::Bhmr)).run(app),
        ProtocolKind::BhmrNoSimple => {
            Runner::new(config, spawner(ExecutorSpec::BhmrNoSimple)).run(app)
        }
        ProtocolKind::BhmrCausalOnly => {
            Runner::new(config, spawner(ExecutorSpec::BhmrCausalOnly)).run(app)
        }
        ProtocolKind::Fdas => Runner::new(config, spawner(ExecutorSpec::Fdas)).run(app),
        ProtocolKind::Fdi => Runner::new(config, spawner(ExecutorSpec::Fdi)).run(app),
        ProtocolKind::Nras => Runner::new(config, Nras::new).run(app),
        ProtocolKind::Cas => Runner::new(config, Cas::new).run(app),
        ProtocolKind::Cbr => Runner::new(config, Cbr::new).run(app),
        ProtocolKind::Bcs => Runner::new(config, Bcs::new).run(app),
        ProtocolKind::Uncoordinated => Runner::new(config, Uncoordinated::new).run(app),
    }
}

/// Fallible [`run_protocol_kind`]: internal runner inconsistencies come
/// back as a typed [`SimError`] instead of a panic — the dispatch for
/// embedders (like the streaming daemon) driving simulations from
/// untrusted configuration.
pub fn try_run_protocol_kind(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
) -> Result<RunOutcome, SimError> {
    match kind {
        ProtocolKind::Bhmr => Runner::new(config, spawner(ExecutorSpec::Bhmr)).try_run(app),
        ProtocolKind::BhmrNoSimple => {
            Runner::new(config, spawner(ExecutorSpec::BhmrNoSimple)).try_run(app)
        }
        ProtocolKind::BhmrCausalOnly => {
            Runner::new(config, spawner(ExecutorSpec::BhmrCausalOnly)).try_run(app)
        }
        ProtocolKind::Fdas => Runner::new(config, spawner(ExecutorSpec::Fdas)).try_run(app),
        ProtocolKind::Fdi => Runner::new(config, spawner(ExecutorSpec::Fdi)).try_run(app),
        ProtocolKind::Nras => Runner::new(config, Nras::new).try_run(app),
        ProtocolKind::Cas => Runner::new(config, Cas::new).try_run(app),
        ProtocolKind::Cbr => Runner::new(config, Cbr::new).try_run(app),
        ProtocolKind::Bcs => Runner::new(config, Bcs::new).try_run(app),
        ProtocolKind::Uncoordinated => Runner::new(config, Uncoordinated::new).try_run(app),
    }
}

/// Like [`run_protocol_kind`], but running the dependency-tracking
/// protocols on their *legacy* (per-message-allocating, scalar)
/// implementations.
///
/// Kept as the differential oracle and as the baseline arm of the
/// `sim-throughput` benchmark; results are identical to
/// [`run_protocol_kind`] on every schedule.
pub fn run_protocol_kind_legacy(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
) -> RunOutcome {
    match kind {
        ProtocolKind::Bhmr => Runner::new(config, Bhmr::new).run(app),
        ProtocolKind::BhmrNoSimple => Runner::new(config, BhmrNoSimple::new).run(app),
        ProtocolKind::BhmrCausalOnly => Runner::new(config, BhmrCausalOnly::new).run(app),
        ProtocolKind::Fdas => Runner::new(config, Fdas::new).run(app),
        ProtocolKind::Fdi => Runner::new(config, Fdi::new).run(app),
        _ => run_protocol_kind(kind, config, app),
    }
}

/// Like [`run_protocol_kind`], but drawing buffers from `scratch` and
/// reclaiming them after `consume` has read the outcome.
///
/// This is the allocation-free inner loop for sweep harnesses: `consume`
/// extracts whatever it needs (statistics, a pattern digest) from the
/// borrowed [`RunOutcome`], then the trace and record buffers flow back
/// into `scratch` for the next run. Results are identical to
/// [`run_protocol_kind`] — the scratch only recycles memory.
pub fn run_protocol_kind_with_scratch<R>(
    kind: ProtocolKind,
    config: &SimConfig,
    app: &mut dyn Application,
    scratch: &mut SimScratch,
    consume: impl FnOnce(&RunOutcome) -> R,
) -> R {
    let outcome = match kind {
        ProtocolKind::Bhmr => {
            Runner::new_with_scratch(config, spawner(ExecutorSpec::Bhmr), scratch).run(app)
        }
        ProtocolKind::BhmrNoSimple => {
            Runner::new_with_scratch(config, spawner(ExecutorSpec::BhmrNoSimple), scratch).run(app)
        }
        ProtocolKind::BhmrCausalOnly => {
            Runner::new_with_scratch(config, spawner(ExecutorSpec::BhmrCausalOnly), scratch)
                .run(app)
        }
        ProtocolKind::Fdas => {
            Runner::new_with_scratch(config, spawner(ExecutorSpec::Fdas), scratch).run(app)
        }
        ProtocolKind::Fdi => {
            Runner::new_with_scratch(config, spawner(ExecutorSpec::Fdi), scratch).run(app)
        }
        ProtocolKind::Nras => Runner::new_with_scratch(config, Nras::new, scratch).run(app),
        ProtocolKind::Cas => Runner::new_with_scratch(config, Cas::new, scratch).run(app),
        ProtocolKind::Cbr => Runner::new_with_scratch(config, Cbr::new, scratch).run(app),
        ProtocolKind::Bcs => Runner::new_with_scratch(config, Bcs::new, scratch).run(app),
        ProtocolKind::Uncoordinated => {
            Runner::new_with_scratch(config, Uncoordinated::new, scratch).run(app)
        }
    };
    let result = consume(&outcome);
    scratch.reclaim(outcome);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scripted, BasicCheckpointModel, DelayModel, StopCondition};

    #[test]
    fn all_kinds_run_and_report_their_name_consistently() {
        let config = SimConfig::new(3)
            .with_seed(21)
            .with_delay(DelayModel::Uniform { lo: 5, hi: 50 })
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 40 })
            .with_stop(StopCondition::MessagesSent(20));
        let script: Vec<(usize, usize)> = (0..30).map(|k| (k % 3, (k + 1) % 3)).collect();
        for &kind in ProtocolKind::all() {
            let outcome = run_protocol_kind(kind, &config, &mut scripted(script.clone()));
            assert_eq!(outcome.stats.total.messages_sent, 20, "{kind}");
            assert_eq!(outcome.stats.total.messages_delivered, 20, "{kind}");
            if kind == ProtocolKind::Uncoordinated {
                assert_eq!(outcome.stats.total.forced_checkpoints, 0);
            }
        }
    }

    #[test]
    fn executor_path_is_bit_identical_to_legacy() {
        // The default dispatch runs the packed executor; the legacy path
        // must produce byte-for-byte the same outcome on every schedule,
        // including one with crash-recovery in play.
        let base = SimConfig::new(4)
            .with_seed(7)
            .with_delay(DelayModel::Uniform { lo: 5, hi: 60 })
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 25 })
            .with_stop(StopCondition::MessagesSent(60));
        let crashy = base.clone().with_crash_rate(2.0).with_max_crashes(2);
        let script: Vec<(usize, usize)> = (0..90).map(|k| (k % 4, (k + 1 + k % 3) % 4)).collect();
        for config in [&base, &crashy] {
            for kind in [
                ProtocolKind::Bhmr,
                ProtocolKind::BhmrNoSimple,
                ProtocolKind::BhmrCausalOnly,
                ProtocolKind::Fdas,
                ProtocolKind::Fdi,
            ] {
                let a = run_protocol_kind(kind, config, &mut scripted(script.clone()));
                let b = run_protocol_kind_legacy(kind, config, &mut scripted(script.clone()));
                assert_eq!(a.trace.events(), b.trace.events(), "{kind}");
                assert_eq!(a.records, b.records, "{kind}");
                assert_eq!(a.stats.total, b.stats.total, "{kind}");
                assert_eq!(a.stats.per_process, b.stats.per_process, "{kind}");
                match (&a.recovery, &b.recovery) {
                    (Some(ra), Some(rb)) => assert_eq!(ra.crashes, rb.crashes, "{kind}"),
                    (None, None) => {}
                    _ => panic!("recovery presence diverged for {kind}"),
                }
            }
        }
    }

    #[test]
    fn identical_schedules_across_dependency_protocols() {
        // Delay draws happen in the same order regardless of protocol, so
        // message schedules coincide; forced-checkpoint counts then order
        // by the protocol lattice.
        let config = SimConfig::new(4)
            .with_seed(99)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 30 })
            .with_stop(StopCondition::MessagesSent(40));
        let script: Vec<(usize, usize)> = (0..60).map(|k| (k % 4, (k + 1 + k % 3) % 4)).collect();

        let sent_times = |kind: ProtocolKind| {
            let outcome = run_protocol_kind(kind, &config, &mut scripted(script.clone()));
            outcome
                .trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    crate::TraceEvent::Send { at, .. } => Some(*at),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            sent_times(ProtocolKind::Bhmr),
            sent_times(ProtocolKind::Fdas)
        );
        assert_eq!(
            sent_times(ProtocolKind::Bhmr),
            sent_times(ProtocolKind::Uncoordinated)
        );
    }
}
