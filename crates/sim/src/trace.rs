//! Recorded traces and their conversion to checkpoint & communication
//! patterns.

use std::fmt;

use rdt_causality::{CheckpointId, ProcessId};
use rdt_core::CheckpointKind;
use rdt_json::{Json, ToJson};
use rdt_rgraph::{Pattern, PatternBuilder, PatternError, PatternMessageId};

use crate::SimTime;

/// Why a trace could not be converted into a pattern. Runner-produced
/// traces never hit these; externally ingested traces (files, sockets)
/// can, and must get an error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A delivery event named a message no send event introduced.
    UnsentDelivery {
        /// Index of the offending event in the trace.
        event: usize,
        /// The message the delivery named.
        message: SimMessageId,
    },
    /// A message was delivered twice.
    DoubleDelivery {
        /// Index of the offending event in the trace.
        event: usize,
        /// The message delivered again.
        message: SimMessageId,
    },
    /// A process index is not `< n`.
    ProcessOutOfRange {
        /// Index of the offending event in the trace.
        event: usize,
        /// The offending process index.
        process: usize,
    },
    /// A send named a message id larger than the trace itself — message
    /// ids are dense in send order, so this cannot be a real trace (and
    /// honouring it would allocate unboundedly).
    MessageOutOfRange {
        /// Index of the offending event in the trace.
        event: usize,
        /// The message id the send claimed.
        message: SimMessageId,
    },
    /// The pattern builder rejected the assembled event sequence.
    Build(PatternError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnsentDelivery { event, message } => {
                write!(f, "trace event {event}: delivery of unsent {message}")
            }
            TraceError::DoubleDelivery { event, message } => {
                write!(f, "trace event {event}: {message} delivered twice")
            }
            TraceError::ProcessOutOfRange { event, process } => {
                write!(f, "trace event {event}: process {process} out of range")
            }
            TraceError::MessageOutOfRange { event, message } => {
                write!(f, "trace event {event}: send names non-dense {message}")
            }
            TraceError::Build(e) => write!(f, "trace does not build a pattern: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Identifier of a message within one simulation run (dense, send order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimMessageId(pub usize);

impl fmt::Display for SimMessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One event of a recorded trace, with its simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was sent.
    Send {
        /// Time of the send event.
        at: SimTime,
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Run-wide message id.
        message: SimMessageId,
    },
    /// A message was delivered.
    Deliver {
        /// Time of the delivery event.
        at: SimTime,
        /// Delivering (destination) process.
        to: ProcessId,
        /// The sender.
        from: ProcessId,
        /// Run-wide message id.
        message: SimMessageId,
    },
    /// A local checkpoint was taken.
    Checkpoint {
        /// Time of the checkpoint.
        at: SimTime,
        /// The checkpoint (process + index).
        id: CheckpointId,
        /// Basic or forced (initial checkpoints are implicit and not
        /// recorded).
        kind: CheckpointKind,
    },
    /// A process crashed, lost its volatile state, and was rolled back to
    /// the recovery line (fault injection). The events of the rolled-back
    /// segments stay in the trace — it records the *union history* of the
    /// run; [`Trace::to_pattern`] ignores crash markers.
    Crash {
        /// Time of the crash.
        at: SimTime,
        /// The crashed process.
        process: ProcessId,
    },
}

impl TraceEvent {
    /// The simulated time of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Checkpoint { at, .. }
            | TraceEvent::Crash { at, .. } => at,
        }
    }

    /// The process on which the event occurred.
    pub fn process(&self) -> ProcessId {
        match *self {
            TraceEvent::Send { from, .. } => from,
            TraceEvent::Deliver { to, .. } => to,
            TraceEvent::Checkpoint { id, .. } => id.process,
            TraceEvent::Crash { process, .. } => process,
        }
    }
}

/// The full record of one simulation run: every send, delivery and
/// checkpoint, in global chronological order.
///
/// The chronological order is by construction a linear extension of the
/// run's causality, so [`Trace::to_pattern`] can rebuild the checkpoint and
/// communication pattern event by event.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    n: usize,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace over `n` processes.
    pub fn new(n: usize) -> Self {
        Trace {
            n,
            events: Vec::new(),
        }
    }

    /// Creates an empty trace over `n` processes reusing `buffer`'s
    /// allocation (the buffer is cleared first).
    pub fn with_buffer(n: usize, mut buffer: Vec<TraceEvent>) -> Self {
        buffer.clear();
        Trace { n, events: buffer }
    }

    /// Consumes the trace, returning the event buffer for reuse.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Appends an event (runner-internal; events must arrive in
    /// chronological order).
    pub(crate) fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.at() <= event.at()),
            "trace events must be chronological"
        );
        self.events.push(event);
    }

    /// All events, chronological.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The state of the run at time `at`: a copy of the trace with every
    /// event after `at` dropped. Messages whose delivery falls beyond the
    /// cut become in-transit.
    ///
    /// This is the *failure-time view* for recovery analysis: truncate at
    /// the crash instant, convert to a pattern, and compute the recovery
    /// line from the checkpoints that existed then.
    pub fn truncate_at(&self, at: SimTime) -> Trace {
        Trace {
            n: self.n,
            events: self
                .events
                .iter()
                .take_while(|event| event.at() <= at)
                .copied()
                .collect(),
        }
    }

    /// Time of the last event (`SimTime::ZERO` for an empty trace).
    pub fn end_time(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, TraceEvent::at)
    }

    /// Number of checkpoints recorded (excluding the implicit initial
    /// ones).
    pub fn checkpoint_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
            .count()
    }

    /// Number of forced checkpoints recorded.
    pub fn forced_checkpoint_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Checkpoint {
                        kind: CheckpointKind::Forced,
                        ..
                    }
                )
            })
            .count()
    }

    /// Converts the trace into a checkpoint and communication pattern for
    /// the `rdt-rgraph` theory queries.
    ///
    /// The pattern is *not* closed; call
    /// [`Pattern::to_closed`] (or rely on
    /// [`RdtChecker`](rdt_rgraph::RdtChecker), which closes internally)
    /// when the analysis requires closed intervals.
    ///
    /// # Panics
    ///
    /// Panics if the trace is internally inconsistent (a delivery without
    /// its send) — cannot happen for runner-produced traces. Externally
    /// ingested traces should use
    /// [`try_to_pattern`](Trace::try_to_pattern) instead.
    pub fn to_pattern(&self) -> Pattern {
        match self.try_to_pattern() {
            Ok(pattern) => pattern,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`to_pattern`](Trace::to_pattern): inconsistent traces
    /// (delivery before its send, double delivery, out-of-range process
    /// indices) are reported as [`TraceError`]s instead of panicking —
    /// the conversion for traces that did not come from the runner.
    pub fn try_to_pattern(&self) -> Result<Pattern, TraceError> {
        let mut builder = PatternBuilder::new(self.n);
        let mut message_map: Vec<Option<PatternMessageId>> = Vec::new();
        let check = |event: usize, p: ProcessId| {
            if p.index() < self.n {
                Ok(())
            } else {
                Err(TraceError::ProcessOutOfRange {
                    event,
                    process: p.index(),
                })
            }
        };
        for (i, event) in self.events.iter().enumerate() {
            match *event {
                TraceEvent::Send {
                    from, to, message, ..
                } => {
                    check(i, from)?;
                    check(i, to)?;
                    if message.0 >= self.events.len() {
                        return Err(TraceError::MessageOutOfRange { event: i, message });
                    }
                    if message_map.len() <= message.0 {
                        message_map.resize(message.0 + 1, None);
                    }
                    message_map[message.0] = Some(builder.send(from, to));
                }
                TraceEvent::Deliver { message, .. } => {
                    let id = message_map
                        .get(message.0)
                        .copied()
                        .flatten()
                        .ok_or(TraceError::UnsentDelivery { event: i, message })?;
                    builder
                        .deliver(id)
                        .map_err(|_| TraceError::DoubleDelivery { event: i, message })?;
                }
                TraceEvent::Checkpoint { id, .. } => {
                    check(i, id.process)?;
                    let built = builder.checkpoint(id.process);
                    debug_assert_eq!(built, id, "trace checkpoint indices must be dense");
                }
                // Crash markers carry no pattern structure: the trace is
                // the union history, and the recovery line computation
                // consumes the pattern as-is.
                TraceEvent::Crash { .. } => {}
            }
        }
        builder.build().map_err(TraceError::Build)
    }

    /// Parses a trace serialized with [`ToJson`] (the `rdt-cli`
    /// `--save-trace` format).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// JSON, missing fields, or an unknown event shape.
    pub fn from_json_str(text: &str) -> Result<Trace, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        Trace::from_json(&json)
    }

    /// Rebuilds a trace from its [`ToJson`] value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(json: &Json) -> Result<Trace, String> {
        let n = json
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("trace: missing numeric field `n`")? as usize;
        if n == 0 {
            return Err("trace: `n` must be at least 1".to_string());
        }
        let events = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or("trace: missing array field `events`")?;
        let mut trace = Trace::new(n);
        let proc = |i: usize, v: u64| -> Result<ProcessId, String> {
            if (v as usize) < n {
                Ok(ProcessId::new(v as usize))
            } else {
                Err(format!("trace event {i}: process {v} out of range (n={n})"))
            }
        };
        for (i, event) in events.iter().enumerate() {
            let fields = event
                .as_array()
                .ok_or_else(|| format!("trace event {i}: not an array"))?;
            let bad = || format!("trace event {i}: malformed");
            let tag = fields.first().and_then(Json::as_str).ok_or_else(bad)?;
            let num = |k: usize| fields.get(k).and_then(Json::as_u64).ok_or_else(bad);
            let at = SimTime::from_ticks(num(1)?);
            let parsed = match tag {
                "send" => TraceEvent::Send {
                    at,
                    from: proc(i, num(2)?)?,
                    to: proc(i, num(3)?)?,
                    message: SimMessageId(num(4)? as usize),
                },
                "deliver" => TraceEvent::Deliver {
                    at,
                    to: proc(i, num(2)?)?,
                    from: proc(i, num(3)?)?,
                    message: SimMessageId(num(4)? as usize),
                },
                "ckpt" => {
                    let kind = match fields.get(4).and_then(Json::as_str) {
                        Some("basic") => CheckpointKind::Basic,
                        Some("forced") => CheckpointKind::Forced,
                        Some("initial") => CheckpointKind::Initial,
                        _ => return Err(bad()),
                    };
                    TraceEvent::Checkpoint {
                        at,
                        id: CheckpointId::new(proc(i, num(2)?)?, num(3)? as u32),
                        kind,
                    }
                }
                "crash" => TraceEvent::Crash {
                    at,
                    process: proc(i, num(2)?)?,
                },
                other => return Err(format!("trace event {i}: unknown tag `{other}`")),
            };
            if trace
                .events
                .last()
                .is_some_and(|last| last.at() > parsed.at())
            {
                return Err(format!("trace event {i}: events must be chronological"));
            }
            trace.events.push(parsed);
        }
        Ok(trace)
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        match *self {
            TraceEvent::Send {
                at,
                from,
                to,
                message,
            } => Json::Arr(vec![
                "send".to_json(),
                Json::U64(at.ticks()),
                Json::U64(from.index() as u64),
                Json::U64(to.index() as u64),
                Json::U64(message.0 as u64),
            ]),
            TraceEvent::Deliver {
                at,
                to,
                from,
                message,
            } => Json::Arr(vec![
                "deliver".to_json(),
                Json::U64(at.ticks()),
                Json::U64(to.index() as u64),
                Json::U64(from.index() as u64),
                Json::U64(message.0 as u64),
            ]),
            TraceEvent::Checkpoint { at, id, kind } => Json::Arr(vec![
                "ckpt".to_json(),
                Json::U64(at.ticks()),
                Json::U64(id.process.index() as u64),
                Json::U64(u64::from(id.index)),
                match kind {
                    CheckpointKind::Basic => "basic",
                    CheckpointKind::Forced => "forced",
                    CheckpointKind::Initial => "initial",
                }
                .to_json(),
            ]),
            TraceEvent::Crash { at, process } => Json::Arr(vec![
                "crash".to_json(),
                Json::U64(at.ticks()),
                Json::U64(process.index() as u64),
            ]),
        }
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::U64(self.n as u64)),
            ("events", self.events.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn to_pattern_roundtrips_structure() {
        let mut trace = Trace::new(2);
        let t = SimTime::from_ticks;
        trace.push(TraceEvent::Send {
            at: t(1),
            from: p(0),
            to: p(1),
            message: SimMessageId(0),
        });
        trace.push(TraceEvent::Checkpoint {
            at: t(2),
            id: CheckpointId::new(p(0), 1),
            kind: CheckpointKind::Basic,
        });
        trace.push(TraceEvent::Deliver {
            at: t(3),
            to: p(1),
            from: p(0),
            message: SimMessageId(0),
        });
        let pattern = trace.to_pattern();
        assert_eq!(pattern.num_processes(), 2);
        assert_eq!(pattern.num_messages(), 1);
        assert_eq!(pattern.checkpoint_count(p(0)), 2);
        assert_eq!(trace.checkpoint_count(), 1);
        assert_eq!(trace.forced_checkpoint_count(), 0);
        assert!(pattern.linearize().is_ok());
    }

    #[test]
    fn truncate_keeps_prefix_and_strands_messages() {
        let mut trace = Trace::new(2);
        let t = SimTime::from_ticks;
        trace.push(TraceEvent::Send {
            at: t(1),
            from: p(0),
            to: p(1),
            message: SimMessageId(0),
        });
        trace.push(TraceEvent::Send {
            at: t(2),
            from: p(0),
            to: p(1),
            message: SimMessageId(1),
        });
        trace.push(TraceEvent::Deliver {
            at: t(5),
            to: p(1),
            from: p(0),
            message: SimMessageId(0),
        });
        trace.push(TraceEvent::Deliver {
            at: t(9),
            to: p(1),
            from: p(0),
            message: SimMessageId(1),
        });
        let cut = trace.truncate_at(t(5));
        assert_eq!(cut.events().len(), 3);
        assert_eq!(cut.end_time(), t(5));
        let pattern = cut.to_pattern();
        assert_eq!(pattern.num_messages(), 2);
        assert_eq!(
            pattern.delivered_messages().count(),
            1,
            "m1 is now in transit"
        );
        // Truncating at the end is the identity.
        assert_eq!(trace.truncate_at(trace.end_time()).events(), trace.events());
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Send {
            at: SimTime::from_ticks(5),
            from: p(1),
            to: p(0),
            message: SimMessageId(3),
        };
        assert_eq!(e.at().ticks(), 5);
        assert_eq!(e.process(), p(1));
        let c = TraceEvent::Checkpoint {
            at: SimTime::from_ticks(6),
            id: CheckpointId::new(p(0), 2),
            kind: CheckpointKind::Forced,
        };
        assert_eq!(c.process(), p(0));
        let x = TraceEvent::Crash {
            at: SimTime::from_ticks(7),
            process: p(1),
        };
        assert_eq!(x.at().ticks(), 7);
        assert_eq!(x.process(), p(1));
    }

    #[test]
    fn crash_markers_round_trip_json_and_skip_pattern() {
        let mut trace = Trace::new(2);
        let t = SimTime::from_ticks;
        trace.push(TraceEvent::Send {
            at: t(1),
            from: p(0),
            to: p(1),
            message: SimMessageId(0),
        });
        trace.push(TraceEvent::Crash {
            at: t(2),
            process: p(1),
        });
        trace.push(TraceEvent::Deliver {
            at: t(3),
            to: p(1),
            from: p(0),
            message: SimMessageId(0),
        });
        let parsed = Trace::from_json_str(&trace.to_json().to_string()).unwrap();
        assert_eq!(parsed.events(), trace.events());
        // The pattern sees the union history, not the crash marker.
        let pattern = trace.to_pattern();
        assert_eq!(pattern.num_messages(), 1);
        assert_eq!(pattern.delivered_messages().count(), 1);
    }
}
