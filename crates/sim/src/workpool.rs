//! Generic work-stealing parallel map over an indexed work list.
//!
//! This is the engine behind the bench crate's sweep grids and the
//! verifier's pattern-space fan-out: the caller hands over a slice of work
//! items, a per-worker state factory (scratch buffers, caches) and a pure
//! `run` function; idle workers pull the next undone index from a shared
//! atomic cursor, so a long-running item never leaves siblings idle the
//! way static partitioning would.
//!
//! Determinism contract: `run` must be a pure function of
//! `(index, item, worker-local state)` where the worker-local state starts
//! identical on every worker (fresh from `init`) and is only ever reused
//! as *scratch* (its observable content must not leak between items).
//! Under that contract the returned vector — always in item order, never
//! in completion order — is bit-identical for every thread count,
//! including 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `run` over every item of `items` on up to `threads` workers and
/// returns the results in item order.
///
/// * `init` creates one worker-local state per worker thread (scratch
///   space; reused across all items that worker steals).
/// * `run(state, index, item)` produces the result of one item.
/// * `observe(done)` is called on the coordinating thread each time a
///   result arrives, with the number of items completed so far — hook for
///   progress reporting; it sees completion order, not item order.
///
/// With `threads <= 1` (or a single item) everything runs on the calling
/// thread and no worker threads are spawned.
pub fn parallel_map_indexed<T, R, S>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize, &T) -> R + Sync,
    mut observe: impl FnMut(usize),
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_indexed_observed(items, threads, init, run, |done, _| observe(done))
}

/// [`parallel_map_indexed`] whose observer also sees each arriving
/// result (`observe(done, &result)`, on the coordinating thread, in
/// completion order) — hook for progress reporting that accumulates
/// work tallies out of the results without waiting for the full map.
pub fn parallel_map_indexed_observed<T, R, S>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize, &T) -> R + Sync,
    mut observe: impl FnMut(usize, &R),
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let result = run(&mut state, i, item);
                observe(i + 1, &result);
                result
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    if tx.send((i, run(&mut state, i, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut done = 0;
        for (i, result) in rx {
            done += 1;
            observe(done, &result);
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was dispatched exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        for threads in [1, 2, 7, 64] {
            let got = parallel_map_indexed(&items, threads, || (), |_, _, &v| v * v, |_| {});
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn observe_sees_every_completion() {
        let items: Vec<u32> = (0..37).collect();
        let mut seen = 0;
        parallel_map_indexed(&items, 4, || (), |_, _, &v| v, |done| seen = done);
        assert_eq!(seen, items.len());
    }

    #[test]
    fn worker_state_is_created_per_worker_and_reused() {
        let creations = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let results = parallel_map_indexed(
            &items,
            4,
            || {
                creations.fetch_add(1, Ordering::Relaxed);
                0u32
            },
            |count, _, &v| {
                *count += 1;
                v
            },
            |_| {},
        );
        assert_eq!(results, items);
        assert!(creations.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u8> = parallel_map_indexed(&[] as &[u8], 8, || (), |_, _, &v| v, |_| {});
        assert!(got.is_empty());
    }
}
