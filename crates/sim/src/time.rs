//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in abstract ticks.
///
/// Ticks have no physical unit; workloads fix the scale by choosing mean
/// message and checkpoint intervals. `u64` ticks keep the event queue
/// totally ordered and the simulation exactly reproducible (no floating
/// point drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in abstract ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Span from an earlier time to this one.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() requires an earlier time");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw ticks.
    pub fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t.ticks(), 15);
        assert_eq!(t.since(SimTime::from_ticks(10)).ticks(), 5);
        assert_eq!((t - SimTime::from_ticks(1)).ticks(), 14);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_ticks(3);
        assert_eq!(u.ticks(), 3);
        assert_eq!(
            (SimDuration::from_ticks(1) + SimDuration::from_ticks(2)).ticks(),
            3
        );
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(4), SimTime::from_ticks(4));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t42");
        assert_eq!(SimDuration::from_ticks(7).to_string(), "7 ticks");
    }
}
