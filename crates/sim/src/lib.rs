//! Deterministic discrete-event simulator for asynchronous message-passing
//! computations with pluggable communication-induced checkpointing.
//!
//! This crate is the *substrate* the paper's evaluation runs on: the model
//! of §2.1 — `n` sequential processes, reliable directed channels with
//! unpredictable but finite delays, no shared memory, no bound on relative
//! speeds — realized as a seeded event-queue simulation.
//!
//! Pieces:
//!
//! * [`SimTime`]/[`SimDuration`] — abstract simulated time.
//! * [`SimRng`] — deterministic per-run randomness (delays, workloads).
//! * [`Application`] — what the processes *do* (the workload); see
//!   `rdt-workloads` for the paper's environments.
//! * [`Runner`] — drives one protocol type (any
//!   [`CicProtocol`](rdt_core::CicProtocol)) under one application over one
//!   configuration and seed, producing a [`Trace`], per-process
//!   checkpoint records and aggregate [`RunStats`].
//! * [`run_protocol_kind`] — dynamic protocol selection by
//!   [`ProtocolKind`](rdt_core::ProtocolKind), monomorphizing internally.
//!
//! Every run is a pure function of `(SimConfig, Application, seed)`: the
//! event queue breaks ties by sequence number, and all randomness flows
//! from one seed. The same configuration therefore produces *identical
//! schedules across protocols that do not alter the communication pattern*,
//! and reproducible traces for the test-suite.
//!
//! # Example
//!
//! ```rust
//! use rdt_core::ProtocolKind;
//! use rdt_sim::{run_protocol_kind, scripted, SimConfig};
//!
//! let config = SimConfig::new(3).with_seed(7);
//! // A tiny scripted workload: P0 sends one message to P1.
//! let outcome = run_protocol_kind(
//!     ProtocolKind::Bhmr,
//!     &config,
//!     &mut scripted(vec![(0, 1)]),
//! );
//! assert_eq!(outcome.stats.total.messages_sent, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod config;
mod dispatch;
mod metrics;
mod rng;
mod runner;
mod time;
mod trace;
mod workpool;

pub use app::{scripted, AppContext, Application, ScriptedApplication};
pub use config::{
    BasicCheckpointModel, DelayModel, SimConfig, StopCondition, DEFAULT_CRASH_SEED_SALT,
};
pub use dispatch::{
    run_protocol_kind, run_protocol_kind_legacy, run_protocol_kind_with_scratch,
    try_run_protocol_kind,
};
pub use metrics::{SampleStats, Stopwatch, TraceMetrics};
pub use rng::SimRng;
pub use runner::{
    CrashRecord, OnlineRdtReport, RecoveryReport, RunOutcome, RunStats, Runner, SimError,
    SimScratch,
};
pub use time::{SimDuration, SimTime};
pub use trace::{SimMessageId, Trace, TraceError, TraceEvent};
pub use workpool::{parallel_map_indexed, parallel_map_indexed_observed};
