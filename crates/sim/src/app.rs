//! The application (workload) interface.

use rdt_causality::ProcessId;

use crate::{SimDuration, SimRng, SimTime};

/// Context handed to [`Application`] callbacks: what the process may do in
/// response to an event.
///
/// Actions are buffered and applied by the runner after the callback
/// returns, in order: sends first (in call order), then the activation
/// timer.
#[derive(Debug)]
pub struct AppContext<'a> {
    me: ProcessId,
    n: usize,
    now: SimTime,
    rng: &'a mut SimRng,
    pub(crate) sends: Vec<(ProcessId, u32)>,
    pub(crate) next_activation: Option<SimDuration>,
    pub(crate) checkpoint_requested: bool,
}

impl<'a> AppContext<'a> {
    /// Test-only convenience; the runner always goes through
    /// [`AppContext::with_buffer`] so the hot path recycles one buffer.
    #[cfg(test)]
    pub(crate) fn new(me: ProcessId, n: usize, now: SimTime, rng: &'a mut SimRng) -> Self {
        Self::with_buffer(me, n, now, rng, Vec::new())
    }

    /// Builds a callback context reusing `sends`'s allocation (cleared
    /// first). The runner recycles one buffer across all callbacks so the
    /// per-event hot path allocates nothing.
    pub(crate) fn with_buffer(
        me: ProcessId,
        n: usize,
        now: SimTime,
        rng: &'a mut SimRng,
        mut sends: Vec<(ProcessId, u32)>,
    ) -> Self {
        sends.clear();
        AppContext {
            me,
            n,
            now,
            rng,
            sends,
            next_activation: None,
            checkpoint_requested: false,
        }
    }

    /// The process this callback runs on.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the computation.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues an application message to `dest` (tag 0).
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or equals the sending process
    /// (channels connect *ordered pairs of distinct* processes, §2.1).
    pub fn send(&mut self, dest: ProcessId) {
        self.send_tagged(dest, 0);
    }

    /// Queues an application message to `dest` carrying a small
    /// application-level `tag` (delivered back through
    /// [`Application::on_deliver_tagged`]). Tags let application-layer
    /// protocols — e.g. Chandy–Lamport markers — distinguish message
    /// kinds; the checkpointing layer treats all tags identically.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or equals the sending process.
    pub fn send_tagged(&mut self, dest: ProcessId, tag: u32) {
        assert!(dest.index() < self.n, "destination {dest} out of range");
        assert_ne!(dest, self.me, "processes do not send to themselves");
        self.sends.push((dest, tag));
    }

    /// Drains the messages queued so far in this callback, *preventing*
    /// them from being sent. Application-layer wrappers use this to
    /// implement blocking semantics (e.g. Koo–Toueg's stop-and-ack phase):
    /// capture an inner workload's sends and re-queue them later.
    pub fn take_queued_sends(&mut self) -> Vec<(ProcessId, u32)> {
        std::mem::take(&mut self.sends)
    }

    /// Whether any message is currently queued in this callback.
    pub fn has_queued_sends(&self) -> bool {
        !self.sends.is_empty()
    }

    /// Asks the runner to take a local checkpoint on this process, applied
    /// **before** any message queued in the same callback (so a
    /// coordinated protocol can record state and then send its markers).
    /// The checkpoint counts as *basic* — from the CIC protocol's
    /// perspective it is application-decided.
    pub fn request_checkpoint(&mut self) {
        self.checkpoint_requested = true;
    }

    /// Schedules the next [`Application::on_activate`] callback after
    /// `delay`. Overwrites any previously scheduled activation from this
    /// callback.
    pub fn schedule_activation(&mut self, delay: SimDuration) {
        self.next_activation = Some(delay);
    }
}

/// A workload: decides when processes send and to whom.
///
/// One `Application` value drives *all* processes (it receives the acting
/// process through the context); workloads that need per-process state keep
/// it indexed by process id. The runner calls:
///
/// * [`on_start`](Application::on_start) once per process at time zero;
/// * [`on_activate`](Application::on_activate) when a previously scheduled
///   activation timer fires;
/// * [`on_deliver`](Application::on_deliver) when a message is delivered
///   (after the checkpointing protocol has processed the arrival).
///
/// Checkpoints are *not* the application's business: basic checkpoints
/// come from the configured timer model, forced ones from the protocol.
pub trait Application {
    /// Called once per process at simulation start.
    fn on_start(&mut self, ctx: &mut AppContext<'_>);

    /// Called when the process's activation timer fires.
    fn on_activate(&mut self, ctx: &mut AppContext<'_>);

    /// Called when a message from `from` is delivered to `ctx.me()`.
    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId);

    /// Called when a message from `from` carrying `tag` is delivered.
    ///
    /// The default forwards to [`on_deliver`](Application::on_deliver);
    /// only applications that send tagged messages need to override this.
    fn on_deliver_tagged(&mut self, ctx: &mut AppContext<'_>, from: ProcessId, tag: u32) {
        let _ = tag;
        self.on_deliver(ctx, from);
    }

    /// Called when a message *arrives*, before it is delivered and before
    /// the checkpointing protocol processes the arrival. Returning `true`
    /// makes the runner take a local (basic) checkpoint first, so the
    /// delivery lands in a fresh interval — the hook application-layer
    /// coordination protocols (e.g. Chandy–Lamport marker handling) need.
    ///
    /// The default never checkpoints. Must be a pure decision: no context
    /// is provided, and the matching state update belongs in
    /// [`on_deliver_tagged`](Application::on_deliver_tagged).
    fn before_deliver(&mut self, me: ProcessId, from: ProcessId, tag: u32) -> bool {
        let _ = (me, from, tag);
        false
    }
}

/// A fixed script of messages, sent one per tick from time zero: entry
/// `(from, to)` queues one message from `P_from` to `P_to`.
///
/// Useful for deterministic unit tests and doc examples; real workloads
/// live in `rdt-workloads`.
#[derive(Debug, Clone)]
pub struct ScriptedApplication {
    script: Vec<(usize, usize)>,
    cursor: Vec<usize>,
}

/// Convenience constructor for [`ScriptedApplication`].
pub fn scripted(script: Vec<(usize, usize)>) -> ScriptedApplication {
    ScriptedApplication {
        script,
        cursor: Vec::new(),
    }
}

impl Application for ScriptedApplication {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        if self.cursor.is_empty() {
            self.cursor = vec![0; ctx.num_processes()];
        }
        // Each process schedules itself to work through its part of the
        // script, one send per activation.
        ctx.schedule_activation(SimDuration::from_ticks(1));
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        let me = ctx.me().index();
        // Find this process's next scripted send.
        let mut seen = 0usize;
        for &(from, to) in &self.script {
            if from != me {
                continue;
            }
            if seen == self.cursor[me] {
                self.cursor[me] += 1;
                ctx.send(ProcessId::new(to));
                ctx.schedule_activation(SimDuration::from_ticks(1));
                return;
            }
            seen += 1;
        }
        // Script exhausted for this process: stop scheduling.
    }

    fn on_deliver(&mut self, _ctx: &mut AppContext<'_>, _from: ProcessId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_actions() {
        let mut rng = SimRng::seed(0);
        let mut ctx = AppContext::new(ProcessId::new(0), 3, SimTime::ZERO, &mut rng);
        ctx.send(ProcessId::new(1));
        ctx.send_tagged(ProcessId::new(2), 7);
        ctx.request_checkpoint();
        ctx.schedule_activation(SimDuration::from_ticks(10));
        assert_eq!(
            ctx.sends,
            vec![(ProcessId::new(1), 0), (ProcessId::new(2), 7)]
        );
        assert!(ctx.checkpoint_requested);
        assert_eq!(ctx.next_activation, Some(SimDuration::from_ticks(10)));
        assert_eq!(ctx.me(), ProcessId::new(0));
        assert_eq!(ctx.num_processes(), 3);
        assert_eq!(ctx.now(), SimTime::ZERO);
        let _ = ctx.rng().uniform_u64(0, 1);
    }

    #[test]
    #[should_panic(expected = "themselves")]
    fn self_send_rejected() {
        let mut rng = SimRng::seed(0);
        let mut ctx = AppContext::new(ProcessId::new(1), 3, SimTime::ZERO, &mut rng);
        ctx.send(ProcessId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_send_rejected() {
        let mut rng = SimRng::seed(0);
        let mut ctx = AppContext::new(ProcessId::new(1), 3, SimTime::ZERO, &mut rng);
        ctx.send(ProcessId::new(3));
    }
}
