//! The discrete-event loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

use rdt_causality::ProcessId;
use rdt_core::{CheckpointRecord, CicProtocol, ProtocolStats};
use rdt_rgraph::IncrementalAnalysis;

use crate::{
    AppContext, Application, SimConfig, SimDuration, SimMessageId, SimRng, SimTime, StopCondition,
    Stopwatch, Trace, TraceEvent,
};

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Sum over all processes.
    pub total: ProtocolStats,
    /// Per-process breakdown.
    pub per_process: Vec<ProtocolStats>,
    /// Simulated time of the last event.
    pub end_time: SimTime,
}

impl RunStats {
    /// The evaluation's headline metric `R`: forced checkpoints per basic
    /// checkpoint, over the whole run.
    pub fn forced_ratio(&self) -> f64 {
        self.total.forced_ratio()
    }
}

/// Reusable per-run simulator allocations: the trace's event buffer, the
/// per-process checkpoint records, and a sizing hint for the event queue.
///
/// Sweep harnesses run thousands of short simulations back to back; giving
/// each [`Runner`] a scratch to draw from (and reclaiming the buffers with
/// [`SimScratch::reclaim`] afterwards) removes the dominant allocations
/// from that loop. A scratch is plain data owned by one worker — using one
/// never changes simulation results, only where the buffers come from.
#[derive(Debug, Default)]
pub struct SimScratch {
    events: Vec<TraceEvent>,
    records: Vec<Vec<CheckpointRecord>>,
    queue_hint: usize,
}

impl SimScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Takes a run's buffers back so the next [`Runner`] built from this
    /// scratch reuses them.
    pub fn reclaim(&mut self, outcome: RunOutcome) {
        // The queue never holds more entries than events still to come, so
        // the trace length is a workable capacity hint for the next run.
        self.queue_hint = self.queue_hint.max(outcome.trace.events().len() / 2);
        self.events = outcome.trace.into_events();
        self.records = outcome.records;
        self.events.clear();
        for records in &mut self.records {
            records.clear();
        }
    }
}

/// Why a [`Runner::try_run`] stopped instead of completing: a crash event
/// fired while one of the structures fault injection installs was absent.
/// [`SimConfig`]-built runners never hit these; they exist so embedders
/// driving the runner programmatically get a typed error, not a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A crash fired but the shadow analysis engine that computes
    /// recovery lines was not installed.
    MissingShadowEngine,
    /// A crash fired but the recovery report that records it was not
    /// installed.
    MissingRecoveryReport,
    /// The online probe's shadow engine rejected an append. The runner
    /// generates events in a valid order, so this indicates a scheduling
    /// bug rather than bad input — but it surfaces as a typed error, not
    /// a panic.
    ShadowEngineRejected(rdt_rgraph::AppendError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingShadowEngine => {
                write!(f, "crash fired without the shadow engine installed")
            }
            SimError::MissingRecoveryReport => {
                write!(f, "crash fired without the recovery report installed")
            }
            SimError::ShadowEngineRejected(e) => {
                write!(f, "shadow engine rejected a simulator event: {e}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The full event trace (convertible to a
    /// [`Pattern`](rdt_rgraph::Pattern)).
    pub trace: Trace,
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Per-process checkpoint records as reported by the protocol, in
    /// order taken (the implicit initial checkpoints are not included).
    pub records: Vec<Vec<CheckpointRecord>>,
    /// What the online RDT probe observed; `None` unless the run was
    /// configured with [`SimConfig::online_rdt_probe`].
    pub online_rdt: Option<OnlineRdtReport>,
    /// What fault injection did to the run; `None` unless the
    /// configuration enables crashes ([`SimConfig::crashes_enabled`]).
    pub recovery: Option<RecoveryReport>,
}

/// One injected crash and the rollback that recovered from it.
///
/// Everything here is a pure function of the run configuration, so the
/// records of two runs with the same seed compare equal (the only wall
/// clock reading, the line-computation time, lives on the enclosing
/// [`RecoveryReport`] instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Simulated time the crash fired.
    pub at: SimTime,
    /// The process that crashed.
    pub process: ProcessId,
    /// The recovery line: per process, the checkpoint index execution
    /// rolled back to. A survivor the domino effect did not reach keeps
    /// its volatile frontier; its entry is then the *virtual* index one
    /// past its last durable checkpoint.
    pub line: Vec<u32>,
    /// Per process, durable checkpoints discarded by the rollback (0 for
    /// processes the domino effect did not reach).
    pub rollback_depth: Vec<u32>,
    /// Number of processes that had to roll back (the victim plus every
    /// process the domino effect dragged along).
    pub domino_span: usize,
    /// Processes rolled all the way back to their initial checkpoint
    /// despite having taken later durable checkpoints — the unbounded
    /// domino-effect signature.
    pub rolled_to_initial: usize,
    /// In-flight messages discarded because their send was rolled back.
    /// The sender's re-execution re-emits each one as a fresh send (with
    /// its post-rollback protocol state), so recovery never silences a
    /// workload that was still talking.
    pub orphans_discarded: u64,
    /// Delivered messages whose delivery was undone by the rollback.
    pub deliveries_undone: u64,
    /// Undone deliveries whose send survived the rollback: lost messages,
    /// replayed from the sender-side log as fresh sends.
    pub lost_replayed: u64,
    /// Simulated time between the earliest checkpoint restored by this
    /// rollback and the crash instant — how far back the system jumped.
    pub rollback_span: SimDuration,
}

impl CrashRecord {
    /// Deepest per-process rollback of this crash, in checkpoints.
    pub fn max_depth(&self) -> u32 {
        self.rollback_depth.iter().copied().max().unwrap_or(0)
    }
}

/// Everything fault injection did to one run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// One record per injected crash, in firing order.
    pub crashes: Vec<CrashRecord>,
    /// Wall time spent computing recovery lines, over all crashes. Kept
    /// out of [`CrashRecord`] so records stay comparable across runs.
    pub line_compute_time: Duration,
    /// State-discarding compactions of the shadow engine, when
    /// [`SimConfig::compact_after_recovery`] is on (0 otherwise).
    pub compactions: u64,
    /// Closure rows reclaimed by those compactions.
    pub reclaimed_rows: u64,
    /// Closure nodes resident in the shadow engine after the last
    /// compaction (`None` until one has run).
    pub resident_nodes_after_compaction: Option<usize>,
}

impl RecoveryReport {
    /// Deepest rollback over all crashes, in checkpoints.
    pub fn max_rollback_depth(&self) -> u32 {
        self.crashes
            .iter()
            .map(CrashRecord::max_depth)
            .max()
            .unwrap_or(0)
    }

    /// Sum of all per-process rollback depths over all crashes.
    pub fn total_rollback_depth(&self) -> u64 {
        self.crashes
            .iter()
            .flat_map(|c| c.rollback_depth.iter())
            .map(|&d| u64::from(d))
            .sum()
    }

    /// Widest domino span over all crashes.
    pub fn max_domino_span(&self) -> usize {
        self.crashes
            .iter()
            .map(|c| c.domino_span)
            .max()
            .unwrap_or(0)
    }

    /// Rolls back to the initial checkpoint, summed over crashes.
    pub fn total_rolled_to_initial(&self) -> usize {
        self.crashes.iter().map(|c| c.rolled_to_initial).sum()
    }

    /// Orphaned in-flight messages discarded, summed over crashes.
    pub fn total_orphans_discarded(&self) -> u64 {
        self.crashes.iter().map(|c| c.orphans_discarded).sum()
    }

    /// Deliveries undone, summed over crashes.
    pub fn total_deliveries_undone(&self) -> u64 {
        self.crashes.iter().map(|c| c.deliveries_undone).sum()
    }

    /// Lost messages replayed from the log, summed over crashes.
    pub fn total_lost_replayed(&self) -> u64 {
        self.crashes.iter().map(|c| c.lost_replayed).sum()
    }

    /// Mean rollback span in ticks (0.0 without crashes).
    pub fn mean_rollback_span_ticks(&self) -> f64 {
        if self.crashes.is_empty() {
            return 0.0;
        }
        let total: u64 = self.crashes.iter().map(|c| c.rollback_span.ticks()).sum();
        total as f64 / self.crashes.len() as f64
    }
}

/// Observations of the online RDT probe over one run.
///
/// When [`SimConfig::online_rdt_probe`] is set, an
/// [`IncrementalAnalysis`] engine shadows the simulation: every trace
/// event (checkpoint, send, delivery) is appended to the engine the moment
/// it is recorded, and the engine's running count of
/// reachable-but-untrackable checkpoint pairs is read back after each
/// append. The probe is observational — it never changes scheduling,
/// protocol behavior, or the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineRdtReport {
    /// Events appended to the engine (equals the trace length).
    pub events_appended: u64,
    /// Reachable-but-untrackable checkpoint pairs at the end of the run
    /// (0 means every rollback dependency was trackable online).
    pub untrackable_pairs: u64,
    /// 1-based index (into the trace) of the first event after which the
    /// untrackable count became nonzero; `None` when the run stayed clean.
    pub first_violation_event: Option<u64>,
    /// Wall time spent inside the engine's `append_*` calls.
    pub append_time: Duration,
    /// Wall time spent reading the violation count back after each append.
    pub query_time: Duration,
}

/// The engine plus bookkeeping behind [`OnlineRdtReport`].
struct OnlineProbe {
    engine: IncrementalAnalysis,
    events: u64,
    first_violation_event: Option<u64>,
    /// First append the engine rejected, latched. The runner emits events
    /// in a valid order, so this stays `None` unless the scheduler is
    /// broken; it is surfaced as [`SimError::ShadowEngineRejected`] when
    /// the run finishes rather than panicking mid-run.
    engine_error: Option<rdt_rgraph::AppendError>,
    append_time: Duration,
    query_time: Duration,
}

impl OnlineProbe {
    fn new(n: usize) -> Self {
        OnlineProbe {
            engine: IncrementalAnalysis::new(n),
            events: 0,
            first_violation_event: None,
            engine_error: None,
            append_time: Duration::ZERO,
            query_time: Duration::ZERO,
        }
    }

    fn latch(&mut self, result: Result<(), rdt_rgraph::AppendError>) {
        if let Err(e) = result {
            if self.engine_error.is_none() {
                self.engine_error = Some(e);
            }
        }
    }

    /// Per-step query: read the violation count, latch the first step at
    /// which it became nonzero.
    fn observe(&mut self) {
        self.events += 1;
        let watch = Stopwatch::start();
        let untrackable = self.engine.untrackable_pairs();
        self.query_time += watch.elapsed();
        if untrackable > 0 && self.first_violation_event.is_none() {
            self.first_violation_event = Some(self.events);
        }
    }

    fn checkpoint(&mut self, process: ProcessId) {
        let watch = Stopwatch::start();
        let result = self.engine.try_append_checkpoint(process).map(|_| ());
        self.append_time += watch.elapsed();
        self.latch(result);
        self.observe();
    }

    fn send(&mut self, from: ProcessId, to: ProcessId) {
        let watch = Stopwatch::start();
        let result = self.engine.try_append_send(from, to).map(|_| ());
        self.append_time += watch.elapsed();
        self.latch(result);
        self.observe();
    }

    fn deliver(&mut self, message: SimMessageId) {
        // The runner assigns `SimMessageId`s sequentially in send order and
        // the probe sees every send, so the simulator's id *is* the
        // engine's message handle.
        let watch = Stopwatch::start();
        let result = self.engine.try_append_deliver(message.0 as u32);
        self.append_time += watch.elapsed();
        self.latch(result);
        self.observe();
    }

    fn finish(self) -> Result<OnlineRdtReport, SimError> {
        if let Some(e) = self.engine_error {
            return Err(SimError::ShadowEngineRejected(e));
        }
        Ok(OnlineRdtReport {
            events_appended: self.events,
            untrackable_pairs: self.engine.untrackable_pairs(),
            first_violation_event: self.first_violation_event,
            append_time: self.append_time,
            query_time: self.query_time,
        })
    }
}

enum QueuedEvent<PB> {
    Arrival {
        to: ProcessId,
        from: ProcessId,
        message: SimMessageId,
        tag: u32,
        piggyback: PB,
    },
    Activation {
        process: ProcessId,
    },
    BasicCheckpoint {
        process: ProcessId,
    },
    Crash {
        process: ProcessId,
    },
}

struct Entry<PB> {
    at: SimTime,
    seq: u64,
    event: QueuedEvent<PB>,
}

/// Buffered application actions drained from an [`AppContext`].
struct AppActions {
    sends: Vec<(ProcessId, u32)>,
    next_activation: Option<crate::SimDuration>,
    checkpoint: bool,
}

impl AppActions {
    fn take(ctx: &mut AppContext<'_>) -> Self {
        AppActions {
            sends: std::mem::take(&mut ctx.sends),
            next_activation: ctx.next_activation,
            checkpoint: ctx.checkpoint_requested,
        }
    }
}

impl<PB> PartialEq for Entry<PB> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<PB> Eq for Entry<PB> {}
impl<PB> PartialOrd for Entry<PB> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<PB> Ord for Entry<PB> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first; ties
        // broken by insertion sequence for determinism.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Runs one protocol type under one application and configuration.
///
/// The runner owns one protocol state machine per process, an event queue,
/// and the run's RNG; [`Runner::run`] drives everything to completion and
/// returns the [`RunOutcome`].
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_core::Fdas;
/// use rdt_sim::{scripted, Runner, SimConfig};
///
/// let config = SimConfig::new(2).with_seed(3);
/// let outcome = Runner::new(&config, Fdas::new).run(&mut scripted(vec![(0, 1)]));
/// assert_eq!(outcome.stats.total.messages_delivered, 1);
/// ```
pub struct Runner<P: CicProtocol> {
    config: SimConfig,
    protocols: Vec<P>,
    trace: Trace,
    records: Vec<Vec<CheckpointRecord>>,
    queue: BinaryHeap<Entry<P::Piggyback>>,
    rng: SimRng,
    next_seq: u64,
    messages_sent: u64,
    now: SimTime,
    /// Arrivals + activations currently queued. When it reaches zero the
    /// workload is quiescent: remaining basic-checkpoint timers are
    /// discarded instead of ticking forever toward an unreachable
    /// message-count stop condition.
    live_events: usize,
    /// For FIFO channels: last scheduled arrival per ordered channel
    /// (`from * n + to`); empty when the config is non-FIFO.
    channel_clock: Vec<SimTime>,
    /// Online RDT probe. Present when [`SimConfig::online_rdt_probe`] is
    /// set *or* crashes are enabled — recovery-line computation needs the
    /// shadow engine. The report is only emitted for the former.
    probe: Option<OnlineProbe>,
    /// Dedicated RNG stream for the crash schedule, derived from the run
    /// seed and [`SimConfig::crash_seed_salt`]; keeping it separate leaves
    /// the main stream — and thus the underlying schedule — untouched.
    crash_rng: SimRng,
    /// Crashes fired so far (bounded by [`SimConfig::max_crashes`]).
    crashes_done: u32,
    /// Report under construction, present iff crashes are enabled.
    recovery: Option<RecoveryReport>,
    /// Simulated time each durable checkpoint was taken (`[process][k]`,
    /// entry 0 the initial checkpoint at time zero). Populated only while
    /// crashes are enabled.
    checkpoint_times: Vec<Vec<SimTime>>,
    /// Application tag of every message sent, indexed by [`SimMessageId`]:
    /// the sender-side log lost messages are replayed from. Populated only
    /// while crashes are enabled.
    message_tags: Vec<u32>,
    /// Messages already replayed once as lost — a log entry is replayed at
    /// most once, ever, even if later crashes undo its delivery again (the
    /// replay itself got a fresh log entry of its own).
    lost_replayed_flags: Vec<bool>,
    /// Recycled buffer for application send actions: every callback's
    /// [`AppContext`] borrows this one allocation instead of growing a
    /// fresh `Vec`, keeping the per-event hot path allocation-free.
    app_sends: Vec<(ProcessId, u32)>,
}

impl<P: CicProtocol> Runner<P> {
    /// Builds a runner; `factory(n, process)` creates each process's
    /// protocol state.
    pub fn new<F>(config: &SimConfig, factory: F) -> Self
    where
        F: Fn(usize, ProcessId) -> P,
    {
        Self::build(
            config,
            factory,
            Trace::new(config.n),
            vec![Vec::new(); config.n],
            0,
        )
    }

    /// Like [`Runner::new`], but drawing the trace and record buffers from
    /// `scratch` instead of allocating fresh ones. Reclaim them afterwards
    /// with [`SimScratch::reclaim`]. The simulation itself is unaffected.
    pub fn new_with_scratch<F>(config: &SimConfig, factory: F, scratch: &mut SimScratch) -> Self
    where
        F: Fn(usize, ProcessId) -> P,
    {
        let trace = Trace::with_buffer(config.n, std::mem::take(&mut scratch.events));
        let mut records = std::mem::take(&mut scratch.records);
        for line in &mut records {
            line.clear();
        }
        records.resize_with(config.n, Vec::new);
        Self::build(config, factory, trace, records, scratch.queue_hint)
    }

    fn build<F>(
        config: &SimConfig,
        factory: F,
        trace: Trace,
        records: Vec<Vec<CheckpointRecord>>,
        queue_hint: usize,
    ) -> Self
    where
        F: Fn(usize, ProcessId) -> P,
    {
        let n = config.n;
        let protocols = ProcessId::all(n).map(|p| factory(n, p)).collect();
        Runner {
            config: config.clone(),
            protocols,
            trace,
            records,
            queue: BinaryHeap::with_capacity(queue_hint),
            rng: SimRng::seed(config.seed),
            next_seq: 0,
            messages_sent: 0,
            now: SimTime::ZERO,
            live_events: 0,
            channel_clock: if config.fifo {
                vec![SimTime::ZERO; n * n]
            } else {
                Vec::new()
            },
            probe: (config.online_rdt_probe || config.crashes_enabled())
                .then(|| OnlineProbe::new(n)),
            crash_rng: SimRng::seed(SimRng::derive_seed(config.seed, config.crash_seed_salt)),
            crashes_done: 0,
            recovery: config.crashes_enabled().then(RecoveryReport::default),
            checkpoint_times: if config.crashes_enabled() {
                vec![vec![SimTime::ZERO]; n]
            } else {
                Vec::new()
            },
            message_tags: Vec::new(),
            lost_replayed_flags: Vec::new(),
            app_sends: Vec::new(),
        }
    }

    fn push(&mut self, at: SimTime, event: QueuedEvent<P::Piggyback>) {
        // Timers — basic checkpoints and the crash clock — are not live
        // work: a quiescent workload must not be kept alive by them.
        if !matches!(
            event,
            QueuedEvent::BasicCheckpoint { .. } | QueuedEvent::Crash { .. }
        ) {
            self.live_events += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { at, seq, event });
    }

    fn injection_open(&self) -> bool {
        match self.config.stop {
            StopCondition::Time(limit) => self.now <= limit,
            StopCondition::MessagesSent(limit) => self.messages_sent < limit,
        }
    }

    fn record_checkpoint(&mut self, process: ProcessId, record: CheckpointRecord) {
        self.trace.push(TraceEvent::Checkpoint {
            at: self.now,
            id: record.id,
            kind: record.kind,
        });
        self.records[process.index()].push(record);
        if !self.checkpoint_times.is_empty() {
            self.checkpoint_times[process.index()].push(self.now);
        }
        if let Some(probe) = &mut self.probe {
            probe.checkpoint(process);
        }
    }

    fn do_send(&mut self, from: ProcessId, to: ProcessId, tag: u32) {
        let message = SimMessageId(self.messages_sent as usize);
        self.messages_sent += 1;
        if self.recovery.is_some() {
            self.message_tags.push(tag);
        }
        let outcome = self.protocols[from.index()].before_send(to);
        self.trace.push(TraceEvent::Send {
            at: self.now,
            from,
            to,
            message,
        });
        if let Some(probe) = &mut self.probe {
            probe.send(from, to);
        }
        if let Some(record) = outcome.forced_after {
            self.record_checkpoint(from, record);
        }
        let delay = self.config.delay.sample(&mut self.rng);
        let mut arrival = self.now + delay;
        if self.config.fifo {
            let channel = from.index() * self.config.n + to.index();
            let floor = self.channel_clock[channel] + crate::SimDuration::from_ticks(1);
            arrival = arrival.max(floor);
            self.channel_clock[channel] = arrival;
        }
        self.push(
            arrival,
            QueuedEvent::Arrival {
                to,
                from,
                message,
                tag,
                piggyback: outcome.piggyback,
            },
        );
    }

    fn apply_app_actions(&mut self, process: ProcessId, actions: AppActions) {
        // A requested checkpoint precedes the callback's sends: coordinated
        // protocols record state and *then* emit their markers.
        if actions.checkpoint {
            let record = self.protocols[process.index()].take_basic_checkpoint();
            self.record_checkpoint(process, record);
        }
        let mut sends = actions.sends;
        for &(dest, tag) in sends.iter() {
            if !self.injection_open() {
                break;
            }
            self.do_send(process, dest, tag);
        }
        // Flow the buffer back for the next callback's context.
        sends.clear();
        self.app_sends = sends;
        if let Some(delay) = actions.next_activation {
            if self.injection_open() {
                self.push(self.now + delay, QueuedEvent::Activation { process });
            }
        }
    }

    fn schedule_basic_checkpoint(&mut self, process: ProcessId) {
        if let Some(interval) = self.config.basic_checkpoints.sample(&mut self.rng) {
            self.push(
                self.now + interval,
                QueuedEvent::BasicCheckpoint { process },
            );
        }
    }

    /// Schedules the next crash from the dedicated crash stream, if fault
    /// injection is enabled and the crash budget is not exhausted. The
    /// victim is drawn at scheduling time too, so the stream's consumption
    /// never depends on what the simulation does in between.
    fn schedule_next_crash(&mut self) {
        if self.recovery.is_none() || self.crashes_done >= self.config.max_crashes {
            return;
        }
        let delay = self
            .crash_rng
            .exponential(self.config.crash_mean_interval());
        let victim = ProcessId::new(self.crash_rng.index(self.config.n));
        self.push(self.now + delay, QueuedEvent::Crash { process: victim });
    }

    /// Crashes `victim` and recovers the system: compute the recovery line
    /// on the shadow engine, roll every affected process back to it,
    /// discard orphaned in-flight messages, replay logged lost messages,
    /// and resume.
    ///
    /// The execution model is crash-with-instant-recovery under
    /// *replay-forward equivalence*: a rolled-back process is assumed to
    /// re-execute deterministically into an equivalent state, so protocol
    /// and application state carry over and the trace keeps the union
    /// history — every event that ever happened stays recorded, crashes
    /// are markers, and [`Trace::to_pattern`] sees the full communication
    /// pattern.
    fn handle_crash(&mut self, victim: ProcessId) -> Result<(), SimError> {
        let n = self.config.n;
        self.crashes_done += 1;
        self.trace.push(TraceEvent::Crash {
            at: self.now,
            process: victim,
        });

        // The recovery line. Survivors keep their volatile state, so they
        // are capped at the virtual checkpoint closing their current
        // interval; the victim lost its open interval and restarts from
        // its last durable checkpoint.
        let watch = Stopwatch::start();
        let probe = self.probe.as_mut().ok_or(SimError::MissingShadowEngine)?;
        let real_last: Vec<u32> = (0..n)
            .map(|i| probe.engine.last_checkpoint_index(ProcessId::new(i)))
            .collect();
        let mut caps = vec![0u32; n];
        let mut line = vec![0u32; n];
        probe.engine.with_closed(|engine| {
            for (i, cap) in caps.iter_mut().enumerate() {
                *cap = engine.last_checkpoint_index(ProcessId::new(i));
            }
            caps[victim.index()] = real_last[victim.index()];
            engine.max_consistent_dominated_into(&caps, &mut line);
        });
        let line_compute_time = watch.elapsed();

        // Physical effect 1: in-flight messages whose send was rolled back
        // are orphans — drop them from the event queue. The rolled-back
        // sender's re-execution re-emits them, modeled below as fresh
        // sends. The rebuilt heap pops in the same order as the old one
        // would have (the `(at, seq)` key is total), so discarding is
        // deterministic.
        let mut orphans_discarded = 0u64;
        let mut reemits: Vec<(ProcessId, ProcessId, u32)> = Vec::new();
        let engine = &self
            .probe
            .as_ref()
            .ok_or(SimError::MissingShadowEngine)?
            .engine;
        let entries = std::mem::take(&mut self.queue).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        for entry in entries {
            let orphaned = match &entry.event {
                QueuedEvent::Arrival {
                    from,
                    to,
                    message,
                    tag,
                    ..
                } => {
                    let orphaned =
                        engine.message_route(message.0 as u32).send_interval > line[from.index()];
                    if orphaned {
                        reemits.push((*from, *to, *tag));
                    }
                    orphaned
                }
                _ => false,
            };
            if orphaned {
                orphans_discarded += 1;
                self.live_events -= 1;
            } else {
                kept.push(entry);
            }
        }
        self.queue = BinaryHeap::from(kept);

        // Physical effect 2: deliveries beyond the line are undone. Those
        // whose send survived are lost messages — the sender-side log
        // replays them below as fresh sends. Messages rolled back on both
        // ends need nothing: replay-forward re-creates them internally.
        let mut deliveries_undone = 0u64;
        let mut replays: Vec<(ProcessId, ProcessId, u32)> = Vec::new();
        self.lost_replayed_flags
            .resize(self.messages_sent as usize, false);
        for mid in 0..engine.num_messages() as u32 {
            let route = engine.message_route(mid);
            let Some(deliver_iv) = route.deliver_interval else {
                continue;
            };
            if deliver_iv > line[route.to.index()] {
                deliveries_undone += 1;
                if route.send_interval <= line[route.from.index()]
                    && !self.lost_replayed_flags[mid as usize]
                {
                    self.lost_replayed_flags[mid as usize] = true;
                    replays.push((route.from, route.to, self.message_tags[mid as usize]));
                }
            }
        }

        // Rollback accounting against the durable frontier.
        let mut rollback_depth = vec![0u32; n];
        let mut domino_span = 0usize;
        let mut rolled_to_initial = 0usize;
        let mut earliest_restored = self.now;
        for i in 0..n {
            rollback_depth[i] = real_last[i].saturating_sub(line[i]);
            if line[i] < caps[i] || i == victim.index() {
                domino_span += 1;
                let restored = line[i].min(real_last[i]) as usize;
                earliest_restored = earliest_restored.min(self.checkpoint_times[i][restored]);
            }
            if line[i] == 0 && real_last[i] > 0 {
                rolled_to_initial += 1;
            }
        }
        let compact_caps = self.config.compact_after_recovery.then(|| line.clone());
        let record = CrashRecord {
            at: self.now,
            process: victim,
            line,
            rollback_depth,
            domino_span,
            rolled_to_initial,
            orphans_discarded,
            deliveries_undone,
            lost_replayed: replays.len() as u64,
            rollback_span: self.now.since(earliest_restored),
        };
        let report = self
            .recovery
            .as_mut()
            .ok_or(SimError::MissingRecoveryReport)?;
        report.crashes.push(record);
        report.line_compute_time += line_compute_time;

        // Re-emit discarded in-flight orphans (the rolled-back sender's
        // re-execution sends them again), then replay the lost messages
        // from the log. Both are fresh sends: same destination and tag,
        // piggyback drawn from the sender's current protocol state.
        for (from, to, tag) in reemits.into_iter().chain(replays) {
            self.do_send(from, to, tag);
        }

        // Bound the shadow engine: collapse everything the recovery line
        // dominates. Purely observational — every query recovery relies
        // on stays exact, and the schedule and trace are untouched.
        if let Some(caps) = compact_caps {
            let probe = self.probe.as_mut().ok_or(SimError::MissingShadowEngine)?;
            let stats = probe.engine.compact_to(&caps);
            if stats.discarded_state() {
                let report = self
                    .recovery
                    .as_mut()
                    .ok_or(SimError::MissingRecoveryReport)?;
                report.compactions += 1;
                report.reclaimed_rows += stats.dropped_nodes() as u64;
                report.resident_nodes_after_compaction = Some(stats.resident_nodes);
            }
        }
        Ok(())
    }

    /// Runs the simulation to completion and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics on an internal configuration inconsistency (a crash firing
    /// without the shadow engine / recovery report that fault injection
    /// installs) — impossible for configs built through [`SimConfig`].
    /// Embedders driving the runner from untrusted configuration should
    /// call [`try_run`](Runner::try_run).
    pub fn run(self, app: &mut dyn Application) -> RunOutcome {
        match self.try_run(app) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`run`](Runner::run): internal inconsistencies surface as
    /// a typed [`SimError`] instead of a panic.
    pub fn try_run(mut self, app: &mut dyn Application) -> Result<RunOutcome, SimError> {
        // Start-up: application hooks and basic checkpoint timers.
        for process in ProcessId::all(self.config.n) {
            let buffer = std::mem::take(&mut self.app_sends);
            let mut ctx =
                AppContext::with_buffer(process, self.config.n, self.now, &mut self.rng, buffer);
            app.on_start(&mut ctx);
            let actions = AppActions::take(&mut ctx);
            self.apply_app_actions(process, actions);
            self.schedule_basic_checkpoint(process);
        }
        self.schedule_next_crash();

        while let Some(entry) = self.queue.pop() {
            if !matches!(
                entry.event,
                QueuedEvent::BasicCheckpoint { .. } | QueuedEvent::Crash { .. }
            ) {
                self.live_events -= 1;
            } else if self.live_events == 0
                && matches!(self.config.stop, StopCondition::MessagesSent(_))
            {
                // Quiescent workload under a message-count stop: nothing
                // can advance the stop condition anymore; drop the
                // remaining checkpoint timers instead of ticking forever.
                continue;
            }
            self.now = entry.at;
            match entry.event {
                QueuedEvent::Arrival {
                    to,
                    from,
                    message,
                    tag,
                    piggyback,
                } => {
                    if app.before_deliver(to, from, tag) {
                        let record = self.protocols[to.index()].take_basic_checkpoint();
                        self.record_checkpoint(to, record);
                    }
                    let outcome = self.protocols[to.index()].on_message_arrival(from, &piggyback);
                    if let Some(record) = outcome.forced {
                        self.record_checkpoint(to, record);
                    }
                    self.trace.push(TraceEvent::Deliver {
                        at: self.now,
                        to,
                        from,
                        message,
                    });
                    if let Some(probe) = &mut self.probe {
                        probe.deliver(message);
                    }
                    let buffer = std::mem::take(&mut self.app_sends);
                    let mut ctx =
                        AppContext::with_buffer(to, self.config.n, self.now, &mut self.rng, buffer);
                    app.on_deliver_tagged(&mut ctx, from, tag);
                    let actions = AppActions::take(&mut ctx);
                    self.apply_app_actions(to, actions);
                }
                QueuedEvent::Activation { process } => {
                    if !self.injection_open() {
                        continue;
                    }
                    let buffer = std::mem::take(&mut self.app_sends);
                    let mut ctx = AppContext::with_buffer(
                        process,
                        self.config.n,
                        self.now,
                        &mut self.rng,
                        buffer,
                    );
                    app.on_activate(&mut ctx);
                    let actions = AppActions::take(&mut ctx);
                    self.apply_app_actions(process, actions);
                }
                QueuedEvent::BasicCheckpoint { process } => {
                    if !self.injection_open() {
                        continue;
                    }
                    let record = self.protocols[process.index()].take_basic_checkpoint();
                    self.record_checkpoint(process, record);
                    self.schedule_basic_checkpoint(process);
                }
                QueuedEvent::Crash { process } => {
                    if !self.injection_open() {
                        continue;
                    }
                    self.handle_crash(process)?;
                    self.schedule_next_crash();
                }
            }
        }

        let per_process: Vec<ProtocolStats> = self.protocols.iter().map(|p| *p.stats()).collect();
        let mut total = ProtocolStats::default();
        for stats in &per_process {
            total.merge(stats);
        }
        Ok(RunOutcome {
            trace: self.trace,
            stats: RunStats {
                total,
                per_process,
                end_time: self.now,
            },
            records: self.records,
            // The probe may also exist just to serve crash recovery; its
            // report is only surfaced when explicitly requested.
            online_rdt: if self.config.online_rdt_probe {
                match self.probe.map(OnlineProbe::finish) {
                    None => None,
                    Some(report) => Some(report?),
                }
            } else {
                None
            },
            recovery: self.recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scripted, BasicCheckpointModel, DelayModel};
    use rdt_core::{Bhmr, CheckpointKind, Uncoordinated};

    fn quiet_config(n: usize) -> SimConfig {
        SimConfig::new(n)
            .with_seed(11)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_delay(DelayModel::Constant { ticks: 10 })
    }

    #[test]
    fn scripted_messages_are_delivered() {
        let outcome = Runner::new(&quiet_config(3), Uncoordinated::new).run(&mut scripted(vec![
            (0, 1),
            (1, 2),
            (2, 0),
        ]));
        assert_eq!(outcome.stats.total.messages_sent, 3);
        assert_eq!(outcome.stats.total.messages_delivered, 3);
        assert_eq!(outcome.trace.checkpoint_count(), 0);
    }

    #[test]
    fn basic_checkpoints_fire_until_stop() {
        let config = SimConfig::new(2)
            .with_seed(5)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 10 })
            .with_stop(StopCondition::Time(SimTime::from_ticks(1000)));
        let outcome = Runner::new(&config, Uncoordinated::new).run(&mut scripted(vec![]));
        assert!(
            outcome.stats.total.basic_checkpoints > 50,
            "expected many basic checkpoints"
        );
        assert_eq!(outcome.stats.total.forced_checkpoints, 0);
        // Records agree with stats.
        let recorded: usize = outcome.records.iter().map(Vec::len).sum();
        assert_eq!(recorded as u64, outcome.stats.total.basic_checkpoints);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = SimConfig::new(4)
            .with_seed(77)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 50 })
            .with_stop(StopCondition::Time(SimTime::from_ticks(500)));
        let a = Runner::new(&config, Bhmr::new).run(&mut scripted(vec![(0, 1), (2, 3), (1, 2)]));
        let b = Runner::new(&config, Bhmr::new).run(&mut scripted(vec![(0, 1), (2, 3), (1, 2)]));
        assert_eq!(a.trace.events(), b.trace.events());
        assert_eq!(a.stats.total, b.stats.total);
    }

    #[test]
    fn message_limit_stops_injection() {
        let config = quiet_config(2).with_stop(StopCondition::MessagesSent(5));
        // Script wants 100 messages; only 5 may be sent.
        let script: Vec<(usize, usize)> = (0..100).map(|_| (0, 1)).collect();
        let outcome = Runner::new(&config, Uncoordinated::new).run(&mut scripted(script));
        assert_eq!(outcome.stats.total.messages_sent, 5);
        assert_eq!(outcome.stats.total.messages_delivered, 5);
    }

    #[test]
    fn trace_converts_to_realizable_pattern() {
        let config = SimConfig::new(3)
            .with_seed(9)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 30 })
            .with_stop(StopCondition::Time(SimTime::from_ticks(300)));
        let outcome = Runner::new(&config, Bhmr::new).run(&mut scripted(vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 2),
            (2, 1),
        ]));
        let pattern = outcome.trace.to_pattern();
        assert!(pattern.linearize().is_ok());
        assert_eq!(
            pattern.num_messages() as u64,
            outcome.stats.total.messages_sent
        );
    }

    #[test]
    fn checkpoint_after_send_lands_behind_the_send_in_the_trace() {
        // CAS checkpoints through SendOutcome::forced_after: the trace must
        // show Send then Checkpoint, at the same instant, per message.
        let config = quiet_config(2);
        let outcome =
            Runner::new(&config, rdt_core::Cas::new).run(&mut scripted(vec![(0, 1), (0, 1)]));
        let events = outcome.trace.events();
        let mut pairs = 0;
        for w in events.windows(2) {
            if let (
                crate::TraceEvent::Send { at: s, from, .. },
                crate::TraceEvent::Checkpoint { at: c, id, .. },
            ) = (&w[0], &w[1])
            {
                assert_eq!(s, c, "checkpoint immediately after the send");
                assert_eq!(*from, id.process);
                pairs += 1;
            }
        }
        assert_eq!(pairs, 2);
        assert_eq!(outcome.stats.total.forced_checkpoints, 2);
        // The pattern places each send in the interval its checkpoint
        // closes.
        let pattern = outcome.trace.to_pattern();
        let m0 = rdt_rgraph::PatternMessageId(0);
        assert_eq!(pattern.send_interval(m0).index, 1);
    }

    #[test]
    fn forced_ratio_is_zero_without_basic_checkpoints() {
        // Basic checkpoints disabled: whatever the protocol forces, the
        // ratio must degrade to 0.0 rather than divide by zero.
        let config = quiet_config(2).with_stop(StopCondition::MessagesSent(10));
        let script: Vec<(usize, usize)> = (0..10).map(|k| (k % 2, (k + 1) % 2)).collect();
        let outcome = Runner::new(&config, rdt_core::Fdas::new).run(&mut scripted(script));
        assert_eq!(outcome.stats.total.basic_checkpoints, 0);
        assert!(
            outcome.stats.total.forced_checkpoints > 0,
            "FDAS must force here"
        );
        assert_eq!(outcome.stats.forced_ratio(), 0.0);
        assert_eq!(outcome.stats.total.forced_ratio(), 0.0);
    }

    #[test]
    fn forced_ratio_on_an_empty_run_is_zero() {
        // No messages, no checkpoints: every statistic is zero and the
        // derived metrics are 0.0, not NaN.
        let config = quiet_config(3).with_stop(StopCondition::MessagesSent(0));
        let outcome = Runner::new(&config, Bhmr::new).run(&mut scripted(vec![]));
        assert_eq!(outcome.trace.events().len(), 0);
        assert_eq!(outcome.stats.total, ProtocolStats::default());
        assert_eq!(outcome.stats.forced_ratio(), 0.0);
        assert_eq!(outcome.stats.total.mean_piggyback_bytes(), 0.0);
        assert_eq!(outcome.stats.end_time, SimTime::ZERO);
        for per_process in &outcome.stats.per_process {
            assert_eq!(per_process.forced_ratio(), 0.0);
        }
    }

    #[test]
    fn forced_ratio_counts_forced_per_basic() {
        let stats = ProtocolStats {
            basic_checkpoints: 4,
            forced_checkpoints: 6,
            ..ProtocolStats::default()
        };
        assert!((stats.forced_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let config = SimConfig::new(3)
            .with_seed(41)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 25 })
            .with_stop(StopCondition::MessagesSent(30));
        let script: Vec<(usize, usize)> = (0..40).map(|k| (k % 3, (k + 1) % 3)).collect();
        let fresh = Runner::new(&config, Bhmr::new).run(&mut scripted(script.clone()));

        let mut scratch = SimScratch::new();
        for _ in 0..3 {
            let outcome = Runner::new_with_scratch(&config, Bhmr::new, &mut scratch)
                .run(&mut scripted(script.clone()));
            assert_eq!(outcome.trace.events(), fresh.trace.events());
            assert_eq!(outcome.stats, fresh.stats);
            assert_eq!(outcome.records, fresh.records);
            scratch.reclaim(outcome);
        }
        // After reclaiming, the buffers really are retained.
        assert!(scratch.events.capacity() >= fresh.trace.events().len());
        assert!(scratch.events.is_empty());
        assert!(scratch.records.iter().all(Vec::is_empty));
    }

    #[test]
    fn scratch_adapts_to_changing_process_counts() {
        let mut scratch = SimScratch::new();
        for n in [4usize, 2, 5] {
            let config = SimConfig::new(n)
                .with_seed(7)
                .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 20 })
                .with_stop(StopCondition::MessagesSent(10));
            let script: Vec<(usize, usize)> = (0..12).map(|k| (k % n, (k + 1) % n)).collect();
            let outcome = Runner::new_with_scratch(&config, Bhmr::new, &mut scratch)
                .run(&mut scripted(script.clone()));
            assert_eq!(outcome.records.len(), n);
            assert_eq!(
                outcome.stats,
                Runner::new(&config, Bhmr::new)
                    .run(&mut scripted(script))
                    .stats
            );
            scratch.reclaim(outcome);
        }
    }

    #[test]
    fn fifo_channels_deliver_in_send_order() {
        // Exponential delays reorder messages on a channel unless FIFO is
        // requested; with many back-to-back sends, find a seed where the
        // non-FIFO run reorders and verify the FIFO run never does.
        let script: Vec<(usize, usize)> = (0..40).map(|_| (0, 1)).collect();
        let per_channel_order = |fifo: bool| -> Vec<usize> {
            let config = SimConfig::new(2)
                .with_seed(13)
                .with_basic_checkpoints(BasicCheckpointModel::Disabled)
                .with_delay(DelayModel::Exponential { mean: 50 })
                .with_fifo(fifo)
                .with_stop(StopCondition::MessagesSent(40));
            let outcome =
                Runner::new(&config, Uncoordinated::new).run(&mut scripted(script.clone()));
            outcome
                .trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    crate::TraceEvent::Deliver { message, .. } => Some(message.0),
                    _ => None,
                })
                .collect()
        };
        let fifo_order = per_channel_order(true);
        assert_eq!(
            fifo_order,
            (0..40).collect::<Vec<_>>(),
            "FIFO must preserve send order"
        );
        let free_order = per_channel_order(false);
        assert_ne!(
            free_order, fifo_order,
            "expected reordering without FIFO at this seed"
        );
    }

    #[test]
    fn probe_mirrors_the_trace_exactly() {
        // Replaying the finished trace into a fresh engine must land on the
        // same event count and violation total the online probe saw — i.e.
        // the probe's hook points append in exactly trace order.
        let config = SimConfig::new(3)
            .with_seed(21)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 40 })
            .with_stop(StopCondition::MessagesSent(25))
            .with_online_rdt_probe(true);
        let script: Vec<(usize, usize)> = (0..30).map(|k| (k % 3, (k + 2) % 3)).collect();
        let outcome = Runner::new(&config, Uncoordinated::new).run(&mut scripted(script));
        let report = outcome.online_rdt.as_ref().expect("probe enabled");
        assert_eq!(
            report.events_appended as usize,
            outcome.trace.events().len()
        );

        let mut fresh = rdt_rgraph::IncrementalAnalysis::new(3);
        let mut mids = Vec::new();
        for event in outcome.trace.events() {
            match *event {
                TraceEvent::Send { from, to, .. } => {
                    mids.push(fresh.append_send(from, to));
                }
                TraceEvent::Deliver { message, .. } => fresh.append_deliver(mids[message.0]),
                TraceEvent::Checkpoint { id, .. } => {
                    fresh.append_checkpoint(id.process);
                }
                TraceEvent::Crash { .. } => {}
            }
        }
        assert_eq!(report.untrackable_pairs, fresh.untrackable_pairs());
    }

    #[test]
    fn probe_flags_untrackable_runs_and_clears_rdt_protocols() {
        // Uncoordinated checkpointing under cyclic traffic produces
        // untrackable rollback dependencies; FDAS (which ensures RDT)
        // stays clean on the same schedule.
        let config = SimConfig::new(3)
            .with_seed(6)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 15 })
            .with_stop(StopCondition::MessagesSent(60))
            .with_online_rdt_probe(true);
        let script: Vec<(usize, usize)> = (0..70).map(|k| (k % 3, (k + 2) % 3)).collect();

        let dirty = Runner::new(&config, Uncoordinated::new).run(&mut scripted(script.clone()));
        let report = dirty.online_rdt.expect("probe enabled");
        assert!(
            report.untrackable_pairs > 0,
            "expected untrackable pairs from uncoordinated checkpoints"
        );
        let first = report.first_violation_event.expect("violation observed");
        assert!(first >= 1 && first <= report.events_appended);

        let clean = Runner::new(&config, rdt_core::Fdas::new).run(&mut scripted(script));
        let report = clean.online_rdt.expect("probe enabled");
        assert_eq!(report.untrackable_pairs, 0, "FDAS ensures RDT");
        assert_eq!(report.first_violation_event, None);
    }

    #[test]
    fn probe_is_observational_only() {
        // Same config modulo the probe flag: trace, stats and records must
        // be identical — the probe may watch, never steer.
        let base = SimConfig::new(3)
            .with_seed(17)
            .with_basic_checkpoints(BasicCheckpointModel::Exponential { mean: 30 })
            .with_stop(StopCondition::MessagesSent(20));
        let script: Vec<(usize, usize)> = (0..25).map(|k| (k % 3, (k + 1) % 3)).collect();
        let plain = Runner::new(&base, Bhmr::new).run(&mut scripted(script.clone()));
        assert!(plain.online_rdt.is_none());
        let probed = Runner::new(&base.clone().with_online_rdt_probe(true), Bhmr::new)
            .run(&mut scripted(script));
        assert_eq!(plain.trace.events(), probed.trace.events());
        assert_eq!(plain.stats, probed.stats);
        assert_eq!(plain.records, probed.records);
        assert!(probed.online_rdt.is_some());
    }

    /// Two-process ping-pong checkpointing before each reply: the
    /// staggered zigzag of the paper's domino figure. Uncoordinated
    /// checkpointing makes every checkpoint useless — a crash at any point
    /// rolls both processes to their initial state.
    struct DominoApp;
    impl Application for DominoApp {
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            if ctx.me().index() == 0 {
                ctx.send(ProcessId::new(1));
            }
        }
        fn on_activate(&mut self, _ctx: &mut AppContext<'_>) {}
        fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId) {
            ctx.request_checkpoint();
            ctx.send(from);
        }
    }

    fn crashy_config(seed: u64) -> SimConfig {
        SimConfig::new(2)
            .with_seed(seed)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_delay(DelayModel::Constant { ticks: 10 })
            .with_stop(StopCondition::MessagesSent(60))
            .with_crash_rate(5.0)
            .with_max_crashes(2)
    }

    #[test]
    fn crash_free_runs_report_no_recovery() {
        let outcome =
            Runner::new(&quiet_config(2), Uncoordinated::new).run(&mut scripted(vec![(0, 1)]));
        assert!(outcome.recovery.is_none());
        assert!(outcome.online_rdt.is_none());
    }

    #[test]
    fn crash_injection_is_deterministic() {
        let run = || Runner::new(&crashy_config(42), Uncoordinated::new).run(&mut DominoApp);
        let a = run();
        let b = run();
        assert_eq!(a.trace.events(), b.trace.events());
        assert_eq!(a.stats, b.stats);
        let (ra, rb) = (
            a.recovery.expect("crashes on"),
            b.recovery.expect("crashes on"),
        );
        assert_eq!(ra.crashes, rb.crashes);
        assert!(
            !ra.crashes.is_empty(),
            "expected at least one crash to fire"
        );
        // Crash markers in the trace agree with the report.
        let markers = a
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Crash { .. }))
            .count();
        assert_eq!(markers, ra.crashes.len());
        // The shadow engine never surfaces a probe report uninvited.
        assert!(a.online_rdt.is_none());
    }

    #[test]
    fn uncoordinated_domino_collapses_to_the_initial_state() {
        let outcome = Runner::new(&crashy_config(42), Uncoordinated::new).run(&mut DominoApp);
        let report = outcome.recovery.expect("crashes on");
        let crash = report
            .crashes
            .iter()
            .find(|c| c.rolled_to_initial > 0)
            .expect("a crash after checkpoints exist collapses the domino");
        assert_eq!(crash.line, vec![0, 0], "every checkpoint is useless");
        assert_eq!(crash.rolled_to_initial, 2);
        assert_eq!(crash.domino_span, 2);
        assert!(crash.max_depth() > 0);
        // The same schedule under an RDT-ensuring protocol stays bounded.
        let fdas = Runner::new(&crashy_config(42), rdt_core::Fdas::new).run(&mut DominoApp);
        let fdas_report = fdas.recovery.expect("crashes on");
        assert!(!fdas_report.crashes.is_empty());
        assert!(
            fdas_report.max_rollback_depth() < report.max_rollback_depth(),
            "FDAS ({}) must beat uncoordinated ({}) on the domino workload",
            fdas_report.max_rollback_depth(),
            report.max_rollback_depth()
        );
        assert_eq!(fdas_report.total_rolled_to_initial(), 0);
    }

    #[test]
    fn crashy_traces_still_convert_to_patterns() {
        // Union-history semantics: the trace of a crashy run is a valid
        // communication pattern (crash markers are skipped), and replayed
        // lost messages appear as ordinary sends.
        let outcome = Runner::new(&crashy_config(42), rdt_core::Fdas::new).run(&mut DominoApp);
        let pattern = outcome.trace.to_pattern();
        assert!(pattern.linearize().is_ok());
        assert_eq!(
            pattern.num_messages() as u64,
            outcome.stats.total.messages_sent
        );
    }

    #[test]
    fn probe_report_still_available_alongside_crashes() {
        let config = crashy_config(42).with_online_rdt_probe(true);
        let outcome = Runner::new(&config, Uncoordinated::new).run(&mut DominoApp);
        assert!(outcome.recovery.is_some());
        let report = outcome.online_rdt.expect("probe requested explicitly");
        assert_eq!(
            report.events_appended as usize,
            outcome.trace.events().len()
                - outcome
                    .trace
                    .events()
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::Crash { .. }))
                    .count(),
            "the engine sees every event except the crash markers"
        );
    }

    #[test]
    fn forced_checkpoints_recorded_in_trace() {
        // Two processes ping-pong with a basic checkpoint in between: the
        // BHMR C2 scenario guarantees at least one forced checkpoint when
        // the timing lines up; use FDAS-style certainty instead: P0 sends,
        // then receives a message carrying a new dependency.
        let config = quiet_config(2);
        let mut app = scripted(vec![(0, 1), (1, 0)]);
        let outcome = Runner::new(&config, rdt_core::Fdas::new).run(&mut app);
        // P0 sent m0 at t1; P1 sent m1 at t1; each arrives at t11 bringing
        // a fresh dependency after a send: both processes force.
        assert_eq!(outcome.stats.total.forced_checkpoints, 2);
        assert_eq!(outcome.trace.forced_checkpoint_count(), 2);
        let kinds: Vec<_> = outcome.records[0].iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![CheckpointKind::Forced]);
    }
}
