//! Simulation configuration.

use crate::{SimDuration, SimRng, SimTime};

/// Channel delay model: transmission delays are unpredictable but finite
/// (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayModel {
    /// Exponentially distributed delay with the given mean (ticks).
    Exponential {
        /// Mean delay in ticks.
        mean: u64,
    },
    /// Uniformly distributed delay in `[lo, hi]` ticks.
    Uniform {
        /// Minimum delay in ticks.
        lo: u64,
        /// Maximum delay in ticks.
        hi: u64,
    },
    /// Constant delay (useful in tests; makes channels effectively FIFO).
    Constant {
        /// The delay in ticks.
        ticks: u64,
    },
}

impl DelayModel {
    /// Draws one delay.
    pub fn sample(self, rng: &mut SimRng) -> SimDuration {
        match self {
            DelayModel::Exponential { mean } => rng.exponential(mean),
            DelayModel::Uniform { lo, hi } => rng.uniform_duration(lo, hi),
            DelayModel::Constant { ticks } => SimDuration::from_ticks(ticks.max(1)),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Exponential { mean: 50 }
    }
}

/// How processes take their *basic* (application-decided) checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasicCheckpointModel {
    /// No basic checkpoints (the protocol's forced checkpoints, if any,
    /// are still taken).
    Disabled,
    /// Each process draws its next basic checkpoint exponentially with the
    /// given mean interval.
    Exponential {
        /// Mean interval between basic checkpoints, in ticks.
        mean: u64,
    },
    /// Uniform interval in `[lo, hi]` ticks.
    Uniform {
        /// Minimum interval in ticks.
        lo: u64,
        /// Maximum interval in ticks.
        hi: u64,
    },
}

impl BasicCheckpointModel {
    /// Draws the next interval, or `None` when disabled.
    pub fn sample(self, rng: &mut SimRng) -> Option<SimDuration> {
        match self {
            BasicCheckpointModel::Disabled => None,
            BasicCheckpointModel::Exponential { mean } => Some(rng.exponential(mean)),
            BasicCheckpointModel::Uniform { lo, hi } => Some(rng.uniform_duration(lo, hi)),
        }
    }
}

impl Default for BasicCheckpointModel {
    fn default() -> Self {
        BasicCheckpointModel::Exponential { mean: 800 }
    }
}

/// When the run stops injecting new work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop once this much simulated time has passed. Messages already in
    /// flight are still delivered.
    Time(SimTime),
    /// Stop once this many messages have been *sent*. In-flight messages
    /// are still delivered.
    MessagesSent(u64),
}

impl Default for StopCondition {
    fn default() -> Self {
        StopCondition::MessagesSent(1_000)
    }
}

/// Full configuration of one simulation run.
///
/// # Example
///
/// ```rust
/// use rdt_sim::{DelayModel, SimConfig, StopCondition};
///
/// let config = SimConfig::new(8)
///     .with_seed(1234)
///     .with_delay(DelayModel::Uniform { lo: 10, hi: 100 })
///     .with_stop(StopCondition::MessagesSent(5_000));
/// assert_eq!(config.n, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// Seed for all randomness of the run.
    pub seed: u64,
    /// Channel delay model.
    pub delay: DelayModel,
    /// Basic checkpoint timer model (same for every process).
    pub basic_checkpoints: BasicCheckpointModel,
    /// When to stop injecting work.
    pub stop: StopCondition,
    /// Whether channels are FIFO: deliveries on each ordered channel
    /// follow send order (arrival times are clamped past the channel's
    /// previous arrival). The paper's model only requires reliability, so
    /// the default is non-FIFO.
    pub fifo: bool,
    /// Run the online RDT probe: an [`rdt_rgraph::IncrementalAnalysis`]
    /// engine shadows the run event by event and reports, per step, how
    /// many checkpoint pairs are currently untrackable. Observational
    /// only — it never changes the simulation. Default off.
    pub online_rdt_probe: bool,
    /// Expected number of injected crashes per 1000 simulated ticks.
    /// `0.0` (the default) disables fault injection entirely; any positive
    /// rate schedules crashes as a Poisson process on a dedicated RNG
    /// stream (see [`SimConfig::crash_seed_salt`]), so a crashy run's
    /// message/checkpoint randomness is tick-for-tick identical to the
    /// crash-free run with the same seed.
    pub crash_rate: f64,
    /// Upper bound on injected crashes per run (the Poisson clock stops
    /// after this many have fired). Ignored while `crash_rate == 0.0`.
    pub max_crashes: u32,
    /// Salt folded into the run seed to derive the crash RNG stream.
    /// Distinct salts give statistically independent crash schedules over
    /// the same underlying run.
    pub crash_seed_salt: u64,
    /// Compact the shadow engine to each computed recovery line: after
    /// every crash the recovery-line-dominated prefix is collapsed
    /// (see [`rdt_rgraph::IncrementalAnalysis::compact_to`]), bounding
    /// engine memory in long crashy runs. Observational only — the
    /// schedule, trace and recovery decisions are bit-identical with it
    /// on or off. Requires crash injection; ignored otherwise.
    pub compact_after_recovery: bool,
}

/// Default salt for the crash RNG stream ("fallback").
pub const DEFAULT_CRASH_SEED_SALT: u64 = 0xFA11_BACC;

impl SimConfig {
    /// Default configuration for `n` processes.
    pub fn new(n: usize) -> Self {
        SimConfig {
            n,
            seed: 0,
            delay: DelayModel::default(),
            basic_checkpoints: BasicCheckpointModel::default(),
            stop: StopCondition::default(),
            fifo: false,
            online_rdt_probe: false,
            crash_rate: 0.0,
            max_crashes: 4,
            crash_seed_salt: DEFAULT_CRASH_SEED_SALT,
            compact_after_recovery: false,
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the channel delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the basic checkpoint model.
    pub fn with_basic_checkpoints(mut self, model: BasicCheckpointModel) -> Self {
        self.basic_checkpoints = model;
        self
    }

    /// Sets the stop condition.
    pub fn with_stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Makes channels FIFO (per-channel delivery in send order).
    pub fn with_fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Enables the online RDT-violation probe (see
    /// [`SimConfig::online_rdt_probe`]).
    pub fn with_online_rdt_probe(mut self, enabled: bool) -> Self {
        self.online_rdt_probe = enabled;
        self
    }

    /// Sets the crash injection rate (expected crashes per 1000 ticks;
    /// `0.0` disables fault injection).
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "crash rate must be finite and non-negative"
        );
        self.crash_rate = rate;
        self
    }

    /// Caps the number of injected crashes per run.
    pub fn with_max_crashes(mut self, max: u32) -> Self {
        self.max_crashes = max;
        self
    }

    /// Sets the salt deriving the crash RNG stream.
    pub fn with_crash_seed_salt(mut self, salt: u64) -> Self {
        self.crash_seed_salt = salt;
        self
    }

    /// Compacts the shadow engine after each computed recovery line (see
    /// [`SimConfig::compact_after_recovery`]).
    pub fn with_compaction(mut self, enabled: bool) -> Self {
        self.compact_after_recovery = enabled;
        self
    }

    /// Whether this configuration injects crashes at all.
    pub fn crashes_enabled(&self) -> bool {
        self.crash_rate > 0.0 && self.max_crashes > 0
    }

    /// Mean tick interval between scheduled crashes at the configured
    /// rate, at least one tick.
    ///
    /// # Panics
    ///
    /// Panics if crash injection is disabled.
    pub fn crash_mean_interval(&self) -> u64 {
        assert!(self.crashes_enabled(), "crash injection is disabled");
        ((1000.0 / self.crash_rate).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let config = SimConfig::new(4)
            .with_seed(9)
            .with_delay(DelayModel::Constant { ticks: 5 })
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::Time(SimTime::from_ticks(100)));
        assert_eq!(config.seed, 9);
        assert_eq!(config.delay, DelayModel::Constant { ticks: 5 });
        assert_eq!(config.basic_checkpoints, BasicCheckpointModel::Disabled);
    }

    #[test]
    fn delay_samples_respect_bounds() {
        let mut rng = SimRng::seed(3);
        for _ in 0..200 {
            let d = DelayModel::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&d.ticks()));
        }
        assert_eq!(
            DelayModel::Constant { ticks: 7 }.sample(&mut rng).ticks(),
            7
        );
    }

    #[test]
    fn crash_builders_and_helpers() {
        let off = SimConfig::new(3);
        assert!(!off.crashes_enabled());
        let on = SimConfig::new(3)
            .with_crash_rate(2.0)
            .with_max_crashes(5)
            .with_crash_seed_salt(7);
        assert!(on.crashes_enabled());
        assert_eq!(on.crash_mean_interval(), 500);
        assert_eq!(on.crash_seed_salt, 7);
        assert_eq!(
            SimConfig::new(3).with_crash_rate(1e9).crash_mean_interval(),
            1
        );
        assert!(!SimConfig::new(3)
            .with_crash_rate(0.5)
            .with_max_crashes(0)
            .crashes_enabled());
    }

    #[test]
    fn disabled_checkpoints_sample_none() {
        let mut rng = SimRng::seed(3);
        assert_eq!(BasicCheckpointModel::Disabled.sample(&mut rng), None);
        assert!(BasicCheckpointModel::Exponential { mean: 10 }
            .sample(&mut rng)
            .is_some());
    }
}
