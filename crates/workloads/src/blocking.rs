//! Koo–Toueg two-phase coordinated checkpointing (blocking).
//!
//! The second classical coordination reference of the paper's introduction
//! ([6]): an initiator asks everybody to take a *tentative* checkpoint;
//! participants checkpoint, **stop sending application messages**, and
//! acknowledge; once all acknowledgements are in, the initiator commits
//! and everybody resumes. Consistency comes from the blocking — no message
//! can cross the wave from after-checkpoint to before-checkpoint — at the
//! price of stalled senders, which [`KooToueg::blocked_ticks`] quantifies.
//!
//! Unlike Chandy–Lamport, no FIFO assumption is needed.

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application, SimDuration, SimTime};

/// Tag of the "take a tentative checkpoint" request.
pub const KT_REQUEST: u32 = u32::MAX - 1;
/// Tag of the participant acknowledgement.
pub const KT_ACK: u32 = u32::MAX - 2;
/// Tag of the commit message.
pub const KT_COMMIT: u32 = u32::MAX - 3;

/// Koo–Toueg checkpointing layered over an inner workload.
///
/// Process 0 initiates a wave every `wave_interval` ticks. While a process
/// is between its tentative checkpoint and the commit, application sends
/// produced by the inner workload are *deferred* and flushed at commit
/// time (modelling the blocking without losing traffic).
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, SimTime, StopCondition};
/// use rdt_workloads::{KooToueg, RandomEnvironment};
///
/// let config = SimConfig::new(4)
///     .with_seed(5)
///     .with_basic_checkpoints(BasicCheckpointModel::Disabled)
///     .with_stop(StopCondition::Time(SimTime::from_ticks(5_000)));
/// let mut app = KooToueg::new(RandomEnvironment::new(25), 1_200);
/// let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
/// assert!(outcome.stats.total.basic_checkpoints > 0);
/// ```
#[derive(Debug, Clone)]
pub struct KooToueg<A> {
    inner: A,
    wave_interval: u64,
    state: Vec<Member>,
    acks_outstanding: usize,
    waves: u64,
    control_messages: u64,
    blocked_ticks: u64,
}

#[derive(Debug, Clone, Default)]
struct Member {
    blocked: bool,
    blocked_since: Option<SimTime>,
    deferred: Vec<(ProcessId, u32)>,
}

impl<A: Application> KooToueg<A> {
    /// Wraps `inner`, initiating a checkpoint wave from process 0 every
    /// `wave_interval` ticks. The interval must comfortably exceed a
    /// round-trip so waves do not overlap.
    pub fn new(inner: A, wave_interval: u64) -> Self {
        KooToueg {
            inner,
            wave_interval: wave_interval.max(1),
            state: Vec::new(),
            acks_outstanding: 0,
            waves: 0,
            control_messages: 0,
            blocked_ticks: 0,
        }
    }

    /// Checkpoint waves completed or in progress.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Control messages (requests, acks, commits) sent.
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Total simulated ticks processes spent blocked (summed over
    /// processes) — the coordination cost Koo–Toueg pays that CIC avoids.
    pub fn blocked_ticks(&self) -> u64 {
        self.blocked_ticks
    }

    /// Access to the wrapped workload.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn ensure_state(&mut self, n: usize) {
        if self.state.len() != n {
            self.state = vec![Member::default(); n];
        }
    }

    fn block(&mut self, me: usize, now: SimTime) {
        let member = &mut self.state[me];
        if !member.blocked {
            member.blocked = true;
            member.blocked_since = Some(now);
        }
    }

    fn unblock(&mut self, me: usize, now: SimTime, ctx: &mut AppContext<'_>) {
        let member = &mut self.state[me];
        if member.blocked {
            member.blocked = false;
            if let Some(since) = member.blocked_since.take() {
                self.blocked_ticks += now.since(since).ticks();
            }
            let deferred = std::mem::take(&mut member.deferred);
            for (dest, tag) in deferred {
                ctx.send_tagged(dest, tag);
            }
        }
    }

    /// After an inner callback, capture its sends if we are blocked.
    fn capture_if_blocked(&mut self, ctx: &mut AppContext<'_>) {
        let me = ctx.me().index();
        if self.state[me].blocked && ctx.has_queued_sends() {
            let sends = ctx.take_queued_sends();
            self.state[me].deferred.extend(sends);
        }
    }
}

impl<A: Application> Application for KooToueg<A> {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.ensure_state(ctx.num_processes());
        self.inner.on_start(ctx);
        self.capture_if_blocked(ctx);
        if ctx.me().index() == 0 && ctx.num_processes() >= 2 {
            ctx.schedule_activation(SimDuration::from_ticks(self.wave_interval));
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        self.ensure_state(ctx.num_processes());
        let me = ctx.me().index();
        if me == 0 {
            let n = ctx.num_processes();
            if self.acks_outstanding == 0 {
                // Phase 1: tentative checkpoint, block, request the rest.
                self.waves += 1;
                ctx.request_checkpoint();
                self.block(0, ctx.now());
                self.acks_outstanding = n - 1;
                for other in ProcessId::all(n).skip(1) {
                    ctx.send_tagged(other, KT_REQUEST);
                    self.control_messages += 1;
                }
            }
            // Re-arm regardless (a late wave just waits for the next slot).
            ctx.schedule_activation(SimDuration::from_ticks(self.wave_interval));
        } else {
            self.inner.on_activate(ctx);
            self.capture_if_blocked(ctx);
        }
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId) {
        self.inner.on_deliver(ctx, from);
        self.capture_if_blocked(ctx);
    }

    fn before_deliver(&mut self, me: ProcessId, _from: ProcessId, tag: u32) -> bool {
        // Participants take their tentative checkpoint before the request
        // is delivered, so the request itself is no orphan of the wave.
        tag == KT_REQUEST
            && self
                .state
                .get(me.index())
                .is_none_or(|member| !member.blocked)
    }

    fn on_deliver_tagged(&mut self, ctx: &mut AppContext<'_>, from: ProcessId, tag: u32) {
        self.ensure_state(ctx.num_processes());
        let me = ctx.me().index();
        let now = ctx.now();
        match tag {
            KT_REQUEST => {
                // Checkpoint already taken by the runner (before_deliver);
                // block and acknowledge.
                self.block(me, now);
                ctx.send_tagged(from, KT_ACK);
                self.control_messages += 1;
            }
            KT_ACK => {
                debug_assert_eq!(me, 0, "only the initiator collects acks");
                self.acks_outstanding = self.acks_outstanding.saturating_sub(1);
                if self.acks_outstanding == 0 {
                    // Phase 2: commit everywhere, unblock self.
                    let n = ctx.num_processes();
                    for other in ProcessId::all(n).skip(1) {
                        ctx.send_tagged(other, KT_COMMIT);
                        self.control_messages += 1;
                    }
                    self.unblock(0, now, ctx);
                }
            }
            KT_COMMIT => {
                self.unblock(me, now, ctx);
            }
            _ => {
                self.inner.on_deliver_tagged(ctx, from, tag);
                self.capture_if_blocked(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomEnvironment;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};

    fn config(n: usize, ticks: u64) -> SimConfig {
        SimConfig::new(n)
            .with_seed(23)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::Time(SimTime::from_ticks(ticks)))
    }

    #[test]
    fn waves_checkpoint_every_process() {
        let n = 5;
        let mut app = KooToueg::new(RandomEnvironment::new(30), 1_500);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config(n, 7_000), &mut app);
        let waves = app.waves();
        assert!(waves >= 3, "only {waves} waves");
        let pattern = outcome.trace.to_pattern();
        for i in 0..n {
            let count = pattern.checkpoint_count(rdt_causality::ProcessId::new(i)) - 1;
            assert!(
                count as u64 >= waves - 1,
                "P{i}: {count} checkpoints, {waves} waves"
            );
        }
        // 3(n-1) control messages per completed wave.
        assert!(app.control_messages() >= (waves - 1) * 3 * (n as u64 - 1));
    }

    #[test]
    fn wave_cuts_are_consistent_without_fifo() {
        use rdt_rgraph::{consistency, GlobalCheckpoint};
        let n = 4;
        let mut app = KooToueg::new(RandomEnvironment::new(25), 1_500);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config(n, 8_000), &mut app);
        let pattern = outcome.trace.to_pattern().to_closed();
        let complete = (0..n)
            .map(|i| pattern.last_checkpoint_index(rdt_causality::ProcessId::new(i)))
            .min()
            .unwrap();
        assert!(complete >= 2);
        for k in 0..=complete {
            let gc = GlobalCheckpoint::new(vec![k; n]);
            assert!(
                consistency::is_consistent(&pattern, &gc),
                "wave {k} is not a consistent cut"
            );
        }
    }

    #[test]
    fn blocking_time_is_measured() {
        let mut app = KooToueg::new(RandomEnvironment::new(25), 1_000);
        let _ = run_protocol_kind(ProtocolKind::Uncoordinated, &config(4, 6_000), &mut app);
        assert!(
            app.blocked_ticks() > 0,
            "waves must block for at least the round-trips"
        );
    }

    #[test]
    fn deferred_traffic_is_flushed() {
        // Traffic keeps flowing despite the blocking: the run delivers far
        // more app messages than control messages.
        let mut app = KooToueg::new(RandomEnvironment::new(10), 2_000);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config(4, 8_000), &mut app);
        assert!(outcome.stats.total.messages_sent > 2 * app.control_messages());
    }
}
