//! Coordinated (Chandy–Lamport) snapshots as an application-layer wrapper.
//!
//! The paper's introduction contrasts communication-induced checkpointing
//! with *coordinated* approaches that pay synchronization in **control
//! messages** (Chandy & Lamport [3], Koo & Toueg [6]). This module builds
//! that comparison point: [`ChandyLamport`] wraps any workload and runs
//! the marker-based snapshot algorithm over the same FIFO channels,
//! turning marker receipts into local checkpoints via
//! [`AppContext::request_checkpoint`].
//!
//! Run it with the [`Uncoordinated`](rdt_core::Uncoordinated) protocol and
//! basic-checkpoint timers disabled, and every checkpoint in the trace
//! comes from the coordination — the `k`-th snapshot forms exactly the
//! global checkpoint `{C_{0,k}, …, C_{n-1,k}}`, which is consistent by
//! construction (see the tests).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application, SimDuration};

/// Message tag used for snapshot markers (user payloads use tag 0).
pub const MARKER_TAG: u32 = u32::MAX;

/// Chandy–Lamport snapshotting layered over an inner workload.
///
/// Process 0 initiates a snapshot every `snapshot_interval` ticks: it
/// records its state (a local checkpoint) and sends a marker on every
/// outgoing channel. Every process receiving its **first** marker of a
/// snapshot records its state and relays markers on all its channels;
/// subsequent markers of the same snapshot only close the corresponding
/// channel. A snapshot is locally complete when markers arrived on all
/// `n − 1` incoming channels.
///
/// Requirements: **FIFO channels** (`SimConfig::with_fifo(true)`) and
/// non-overlapping snapshots (pick `snapshot_interval` comfortably above
/// the network diameter × delay; the wrapper asserts non-overlap in debug
/// builds by tracking snapshot numbers).
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition, SimTime};
/// use rdt_workloads::{ChandyLamport, RandomEnvironment};
///
/// let config = SimConfig::new(4)
///     .with_seed(5)
///     .with_fifo(true)
///     .with_basic_checkpoints(BasicCheckpointModel::Disabled)
///     .with_stop(StopCondition::Time(SimTime::from_ticks(4_000)));
/// let mut app = ChandyLamport::new(RandomEnvironment::new(25), 1_000);
/// let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
/// assert!(outcome.stats.total.basic_checkpoints > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ChandyLamport<A> {
    inner: A,
    snapshot_interval: u64,
    /// Per process: number of the snapshot it is currently recording (0 =
    /// none yet), and how many markers of it are still outstanding.
    state: Vec<ProcessState>,
    /// Markers sent so far (control-message accounting).
    markers_sent: u64,
    /// Snapshots initiated so far.
    snapshots_initiated: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct ProcessState {
    /// Highest snapshot number this process has recorded for.
    recorded_upto: u64,
    /// Incoming channels still open for the current snapshot.
    open_channels: usize,
}

impl<A: Application> ChandyLamport<A> {
    /// Wraps `inner`, initiating a snapshot from process 0 every
    /// `snapshot_interval` ticks.
    pub fn new(inner: A, snapshot_interval: u64) -> Self {
        ChandyLamport {
            inner,
            snapshot_interval: snapshot_interval.max(1),
            state: Vec::new(),
            markers_sent: 0,
            snapshots_initiated: 0,
        }
    }

    /// Control messages (markers) sent so far.
    pub fn markers_sent(&self) -> u64 {
        self.markers_sent
    }

    /// Snapshots initiated so far.
    pub fn snapshots_initiated(&self) -> u64 {
        self.snapshots_initiated
    }

    /// Access to the wrapped workload.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn ensure_state(&mut self, n: usize) {
        if self.state.len() != n {
            self.state = vec![ProcessState::default(); n];
        }
    }

    /// Updates bookkeeping for a state recording and emits markers; the
    /// checkpoint itself is taken by the caller (the initiator requests it
    /// through the context, marker receivers get it from the runner's
    /// pre-delivery hook).
    fn record_and_relay(&mut self, ctx: &mut AppContext<'_>, snapshot: u64) {
        let me = ctx.me().index();
        let n = ctx.num_processes();
        debug_assert!(
            self.state[me].open_channels == 0,
            "snapshots must not overlap: lengthen the snapshot interval"
        );
        self.state[me].recorded_upto = snapshot;
        self.state[me].open_channels = n - 1;
        for other in ProcessId::all(n) {
            if other != ctx.me() {
                ctx.send_tagged(other, MARKER_TAG);
                self.markers_sent += 1;
            }
        }
    }
}

impl<A: Application> Application for ChandyLamport<A> {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.ensure_state(ctx.num_processes());
        self.inner.on_start(ctx);
        if ctx.me().index() == 0 && ctx.num_processes() >= 2 {
            // The initiator's activation timer is taken over for snapshot
            // initiation (overriding whatever the inner app scheduled);
            // its own traffic generation becomes delivery-driven.
            ctx.schedule_activation(SimDuration::from_ticks(self.snapshot_interval));
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        self.ensure_state(ctx.num_processes());
        if ctx.me().index() == 0 {
            // Initiate the next snapshot, then re-arm. (The initiator's
            // activations are dedicated to coordination; its share of the
            // inner workload becomes delivery-driven.)
            self.snapshots_initiated += 1;
            let snapshot = self.snapshots_initiated;
            ctx.request_checkpoint(); // record own state, then markers
            self.record_and_relay(ctx, snapshot);
            ctx.schedule_activation(SimDuration::from_ticks(self.snapshot_interval));
        } else {
            self.inner.on_activate(ctx);
        }
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId) {
        self.inner.on_deliver(ctx, from);
    }

    fn before_deliver(&mut self, me: ProcessId, _from: ProcessId, tag: u32) -> bool {
        // First marker of a snapshot: the state recording must precede the
        // marker's delivery so the marker is no orphan of the cut.
        tag == MARKER_TAG
            && self
                .state
                .get(me.index())
                .is_some_and(|s| s.open_channels == 0)
    }

    fn on_deliver_tagged(&mut self, ctx: &mut AppContext<'_>, from: ProcessId, tag: u32) {
        self.ensure_state(ctx.num_processes());
        if tag != MARKER_TAG {
            self.inner.on_deliver_tagged(ctx, from, tag);
            return;
        }
        let me = ctx.me().index();
        let current = self.state[me];
        if current.open_channels == 0 {
            // First marker of a new snapshot: the runner already took the
            // checkpoint (see before_deliver); record and relay.
            let snapshot = current.recorded_upto + 1;
            self.record_and_relay(ctx, snapshot);
            // The arrival channel is closed by this very marker.
            self.state[me].open_channels -= 1;
        } else {
            // A further marker of the snapshot in progress.
            self.state[me].open_channels -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomEnvironment;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, SimTime, StopCondition};

    fn snapshot_config(n: usize) -> SimConfig {
        SimConfig::new(n)
            .with_seed(19)
            .with_fifo(true)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::Time(SimTime::from_ticks(6_000)))
    }

    #[test]
    fn every_snapshot_checkpoints_every_process_once() {
        let n = 5;
        let mut app = ChandyLamport::new(RandomEnvironment::new(30), 1_500);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &snapshot_config(n), &mut app);
        let snapshots = app.snapshots_initiated();
        assert!(snapshots >= 2, "only {snapshots} snapshots ran");
        // Every process took one checkpoint per *completed* snapshot; the
        // last snapshot may still be propagating when the run ends.
        let pattern = outcome.trace.to_pattern();
        for i in 0..n {
            let count = pattern.checkpoint_count(rdt_causality::ProcessId::new(i)) - 1;
            assert!(
                count as u64 >= snapshots - 1,
                "P{i} has {count} checkpoints for {snapshots} snapshots"
            );
        }
        // Marker accounting: n*(n-1) markers per fully relayed snapshot.
        assert!(app.markers_sent() >= (snapshots - 1) * (n as u64) * (n as u64 - 1));
    }

    #[test]
    fn snapshot_cuts_are_consistent_global_checkpoints() {
        use rdt_rgraph::{consistency, GlobalCheckpoint};
        let n = 4;
        let mut app = ChandyLamport::new(RandomEnvironment::new(25), 1_200);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &snapshot_config(n), &mut app);
        let pattern = outcome.trace.to_pattern().to_closed();
        let complete = (0..n)
            .map(|i| pattern.last_checkpoint_index(rdt_causality::ProcessId::new(i)))
            .min()
            .unwrap();
        assert!(complete >= 2, "need at least two complete snapshots");
        for k in 0..=complete {
            let gc = GlobalCheckpoint::new(vec![k; n]);
            assert!(
                consistency::is_consistent(&pattern, &gc),
                "snapshot {k} is not a consistent cut"
            );
        }
    }

    #[test]
    fn inner_workload_still_flows() {
        let mut app = ChandyLamport::new(RandomEnvironment::new(20), 2_000);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &snapshot_config(4), &mut app);
        // Far more traffic than markers: the wrapped workload kept running.
        assert!(outcome.stats.total.messages_sent > app.markers_sent());
    }
}
