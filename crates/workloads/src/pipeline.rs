//! Producer/consumer pipeline environment (extra workload).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// A streaming pipeline `P_0 → P_1 → … → P_{n-1}`: `P_0` produces items at
/// an exponential rate; every middle stage forwards each item downstream
/// after processing; the last stage consumes.
///
/// Unlike the ring, many items are in flight simultaneously, so deliveries
/// and sends interleave within intervals and non-causal chains *can* form
/// once basic checkpoints cut the stages at different points — a good
/// middle ground between the random and ring workloads.
#[derive(Debug, Clone)]
pub struct PipelineEnvironment {
    mean_produce_interval: u64,
}

impl PipelineEnvironment {
    /// Creates the environment; the producer emits items with the given
    /// mean interval (ticks).
    pub fn new(mean_produce_interval: u64) -> Self {
        PipelineEnvironment {
            mean_produce_interval,
        }
    }

    fn produce_later(&self, ctx: &mut AppContext<'_>) {
        let delay = ctx.rng().exponential(self.mean_produce_interval.max(1));
        ctx.schedule_activation(delay);
    }
}

impl Application for PipelineEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        if ctx.me().index() == 0 && ctx.num_processes() >= 2 {
            self.produce_later(ctx);
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        // The producer emits one item and keeps producing.
        ctx.send(ProcessId::new(1));
        self.produce_later(ctx);
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, _from: ProcessId) {
        let me = ctx.me().index();
        let next = me + 1;
        if me > 0 && next < ctx.num_processes() {
            ctx.send(ProcessId::new(next));
        }
        // The last stage consumes silently.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};

    #[test]
    fn items_flow_to_the_sink() {
        let config = SimConfig::new(4)
            .with_seed(51)
            .with_stop(StopCondition::MessagesSent(300));
        let mut app = PipelineEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        let sink = outcome.stats.per_process.last().unwrap();
        assert!(
            sink.messages_delivered > 50,
            "sink got {}",
            sink.messages_delivered
        );
        assert_eq!(sink.messages_sent, 0, "the sink never sends");
    }

    #[test]
    fn stages_overlap_in_flight() {
        // With production faster than the channel delay, multiple items are
        // in flight: middle stages both send and receive plenty.
        let config = SimConfig::new(3)
            .with_seed(53)
            .with_stop(StopCondition::MessagesSent(200));
        let mut app = PipelineEnvironment::new(2);
        let outcome = run_protocol_kind(ProtocolKind::Fdas, &config, &mut app);
        let mid = &outcome.stats.per_process[1];
        assert!(mid.messages_sent > 0 && mid.messages_delivered > 0);
    }
}
