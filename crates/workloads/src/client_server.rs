//! The client/server environment (Figure 9 of the evaluation).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// Servers `S_1 … S_n` arranged in a chain (§5.3):
///
/// * process 0 plays the external client: it periodically sends a request
///   to `S_1` (process 1) and waits for the reply before issuing the next
///   request;
/// * when `S_k` is delivered a request, it either replies to its requester
///   or forwards a sub-request to `S_{k+1}` with probability ½ and waits
///   for the sub-reply (which it then propagates back);
/// * the last server always replies.
///
/// The paper singles this environment out because *the causal past of any
/// message contains all the messages of the computation*: every dependency
/// is eventually visible to everyone, which maximizes what dependency
/// tracking can exploit and separates the BHMR family from FDAS most
/// clearly.
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};
/// use rdt_workloads::ClientServerEnvironment;
///
/// let config = SimConfig::new(5).with_seed(8).with_stop(StopCondition::MessagesSent(300));
/// let mut app = ClientServerEnvironment::new(30);
/// let outcome = run_protocol_kind(ProtocolKind::Fdas, &config, &mut app);
/// assert!(outcome.stats.total.messages_delivered > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ClientServerEnvironment {
    mean_request_interval: u64,
    /// Per-server: who is waiting on us (the requester to answer when our
    /// sub-request resolves). `None` = idle.
    pending_requester: Vec<Option<ProcessId>>,
    /// Per-server: are we waiting for a sub-reply from the next server?
    awaiting_subreply: Vec<bool>,
}

impl ClientServerEnvironment {
    /// Creates the environment; the client thinks for an exponentially
    /// distributed time with the given mean between request cycles.
    pub fn new(mean_request_interval: u64) -> Self {
        ClientServerEnvironment {
            mean_request_interval,
            pending_requester: Vec::new(),
            awaiting_subreply: Vec::new(),
        }
    }

    fn ensure_state(&mut self, n: usize) {
        if self.pending_requester.len() != n {
            self.pending_requester = vec![None; n];
            self.awaiting_subreply = vec![false; n];
        }
    }
}

impl Application for ClientServerEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.ensure_state(ctx.num_processes());
        // Only the client self-activates; servers are purely reactive.
        if ctx.me().index() == 0 && ctx.num_processes() >= 2 {
            let delay = ctx.rng().exponential(self.mean_request_interval.max(1));
            ctx.schedule_activation(delay);
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        // Client issues a request to S_1 and waits (no rescheduling until
        // the reply arrives).
        ctx.send(ProcessId::new(1));
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId) {
        self.ensure_state(ctx.num_processes());
        let me = ctx.me().index();
        let n = ctx.num_processes();
        if me == 0 {
            // The client got its reply: think, then issue the next request.
            let delay = ctx.rng().exponential(self.mean_request_interval.max(1));
            ctx.schedule_activation(delay);
            return;
        }
        if self.awaiting_subreply[me] && from.index() == me + 1 {
            // Sub-reply from downstream: propagate the reply upstream.
            self.awaiting_subreply[me] = false;
            if let Some(requester) = self.pending_requester[me].take() {
                ctx.send(requester);
            }
            return;
        }
        // A fresh (sub-)request from upstream.
        let is_last = me + 1 >= n;
        if is_last || ctx.rng().chance(0.5) {
            // Serve locally: reply immediately.
            ctx.send(from);
        } else {
            // Forward to the next server and wait.
            self.pending_requester[me] = Some(from);
            self.awaiting_subreply[me] = true;
            ctx.send(ProcessId::new(me + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};

    #[test]
    fn requests_flow_and_replies_return() {
        let config = SimConfig::new(6)
            .with_seed(17)
            .with_stop(StopCondition::MessagesSent(500));
        let mut app = ClientServerEnvironment::new(10);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        // The client participates in every exchange: it must both send and
        // receive a substantial share.
        let client = &outcome.stats.per_process[0];
        assert!(
            client.messages_sent >= 50,
            "client sent {}",
            client.messages_sent
        );
        assert!(client.messages_delivered >= 50);
        // S_1 handles every request.
        assert!(outcome.stats.per_process[1].messages_delivered >= client.messages_sent - 1);
    }

    #[test]
    fn deep_chain_reaches_last_server_sometimes() {
        let config = SimConfig::new(4)
            .with_seed(23)
            .with_stop(StopCondition::MessagesSent(2000));
        let mut app = ClientServerEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        let last = &outcome.stats.per_process[3];
        assert!(last.messages_delivered > 0, "chain never reached S_3");
    }

    #[test]
    fn two_process_degenerate_case_works() {
        // Client + single server which always serves locally.
        let config = SimConfig::new(2)
            .with_seed(29)
            .with_stop(StopCondition::MessagesSent(50));
        let mut app = ClientServerEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        assert_eq!(outcome.stats.total.messages_sent, 50);
    }
}
