//! Domino-effect environment: pairwise ping-pong with a checkpoint before
//! every reply (crash-recovery stress workload).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// Disjoint pairs `(P_0, P_1), (P_2, P_3), …` ping-pong forever, each
/// process taking an application checkpoint immediately before every
/// reply. An odd process out stays silent.
///
/// This reproduces, per pair, the classic staggered zigzag of the domino
/// effect (the pattern of `rdt-recovery`'s `domino_pattern` figure): every
/// checkpoint of one process is straddled by a message of the other, so
/// under uncoordinated checkpointing *no* global checkpoint except the
/// initial one is consistent — a single crash rolls the whole pair back to
/// its initial state, unboundedly far. RDT-ensuring protocols break the
/// zigzag with forced checkpoints and keep rollback bounded, which is
/// exactly the contrast the crash-injection benchmark measures.
///
/// Replies are delayed by an exponential think time so that crashes land
/// at varied phases of the exchange.
#[derive(Debug, Clone)]
pub struct DominoEnvironment {
    mean_think_time: u64,
}

impl DominoEnvironment {
    /// Creates the environment with the given mean think time before each
    /// reply (ticks).
    pub fn new(mean_think_time: u64) -> Self {
        DominoEnvironment { mean_think_time }
    }

    /// The pair partner of `p`, if any (`None` for the odd process out).
    fn partner(p: usize, n: usize) -> Option<usize> {
        let q = p ^ 1;
        (q < n).then_some(q)
    }
}

impl Application for DominoEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        // The lower process of each pair serves first.
        if let Some(partner) = Self::partner(ctx.me().index(), ctx.num_processes()) {
            if ctx.me().index() % 2 == 0 {
                ctx.send(ProcessId::new(partner));
            }
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        if let Some(partner) = Self::partner(ctx.me().index(), ctx.num_processes()) {
            // Checkpoint first, then reply: the send straddles the partner's
            // next checkpoint, sustaining the zigzag.
            ctx.request_checkpoint();
            ctx.send(ProcessId::new(partner));
        }
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, _from: ProcessId) {
        let think = ctx.rng().exponential(self.mean_think_time.max(1));
        ctx.schedule_activation(think);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};

    fn config(n: usize) -> SimConfig {
        SimConfig::new(n)
            .with_seed(23)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::MessagesSent(40))
    }

    #[test]
    fn pairs_ping_pong_and_checkpoint() {
        let outcome = run_protocol_kind(
            ProtocolKind::Uncoordinated,
            &config(4),
            &mut DominoEnvironment::new(5),
        );
        assert_eq!(outcome.stats.total.messages_sent, 40);
        // Every delivery (except the opening serves) is answered through a
        // checkpoint-then-reply activation.
        assert!(outcome.stats.total.basic_checkpoints >= 30);
        for (i, stats) in outcome.stats.per_process.iter().enumerate() {
            assert!(stats.messages_sent > 0, "P{i} never spoke");
        }
    }

    #[test]
    fn odd_process_out_stays_silent() {
        let outcome = run_protocol_kind(
            ProtocolKind::Uncoordinated,
            &config(3),
            &mut DominoEnvironment::new(5),
        );
        assert_eq!(outcome.stats.per_process[2].messages_sent, 0);
        assert!(outcome.stats.per_process[0].messages_sent > 0);
    }

    #[test]
    fn uncoordinated_zigzag_is_a_real_domino() {
        // Structural check against the recovery-line analysis: crash either
        // process of a pair mid-run and the whole pair rolls back to its
        // initial checkpoints.
        let outcome = run_protocol_kind(
            ProtocolKind::Uncoordinated,
            &config(2),
            &mut DominoEnvironment::new(5),
        );
        let pattern = outcome.trace.to_pattern();
        assert!(outcome.stats.total.basic_checkpoints >= 10);
        let line = rdt_recovery::recovery_line(
            &pattern,
            &[rdt_recovery::Failure::at_last_checkpoint(
                &pattern,
                ProcessId::new(0),
            )],
        );
        assert_eq!(line.as_slice(), &[0, 0], "domino collapses to the start");
    }
}
