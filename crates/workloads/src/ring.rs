//! Token-ring environment (regular communication; extra workload).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// A token circulates on the unidirectional ring `P_0 → P_1 → … → P_0`:
/// each process holds the token for an exponentially distributed service
/// time, then passes it on.
///
/// The most regular communication pattern possible: one message in flight
/// at a time, every chain causal by construction. RDT-ensuring protocols
/// should force (almost) nothing here — a useful lower-bound workload for
/// the evaluation and a sanity check for the protocol implementations.
#[derive(Debug, Clone)]
pub struct RingEnvironment {
    mean_hold_time: u64,
}

impl RingEnvironment {
    /// Creates the environment with the given mean token-hold time
    /// (ticks).
    pub fn new(mean_hold_time: u64) -> Self {
        RingEnvironment { mean_hold_time }
    }

    fn pass_later(&self, ctx: &mut AppContext<'_>) {
        let delay = ctx.rng().exponential(self.mean_hold_time.max(1));
        ctx.schedule_activation(delay);
    }
}

impl Application for RingEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        // P0 starts with the token.
        if ctx.me().index() == 0 && ctx.num_processes() >= 2 {
            self.pass_later(ctx);
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        let next = (ctx.me().index() + 1) % ctx.num_processes();
        ctx.send(ProcessId::new(next));
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, _from: ProcessId) {
        // Received the token: hold it, then pass it on.
        self.pass_later(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, BasicCheckpointModel, SimConfig, StopCondition};

    #[test]
    fn token_visits_everyone_in_order() {
        let config = SimConfig::new(5)
            .with_seed(41)
            .with_stop(StopCondition::MessagesSent(50));
        let mut app = RingEnvironment::new(7);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        assert_eq!(outcome.stats.total.messages_sent, 50);
        for stats in &outcome.stats.per_process {
            assert!(stats.messages_sent >= 9, "token skipped someone");
        }
    }

    #[test]
    fn first_lap_forces_nothing() {
        // Until the token returns to a process that has already sent, every
        // chain is causal and fresh: the first n-1 hops can never force.
        let config = SimConfig::new(8)
            .with_seed(43)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::MessagesSent(7));
        let mut app = RingEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, &mut app);
        assert_eq!(outcome.stats.total.forced_checkpoints, 0);
    }

    #[test]
    fn protocol_lattice_holds_on_the_ring() {
        // Multi-lap rings cascade forced checkpoints (each process has
        // always sent in its current interval when the token returns); the
        // lattice C1∨C2 => C_FDAS => C_NRAS must still order the counts.
        let config = SimConfig::new(4)
            .with_seed(43)
            .with_basic_checkpoints(BasicCheckpointModel::Disabled)
            .with_stop(StopCondition::MessagesSent(100));
        let forced = |kind| {
            let mut app = RingEnvironment::new(5);
            run_protocol_kind(kind, &config, &mut app)
                .stats
                .total
                .forced_checkpoints
        };
        let bhmr = forced(ProtocolKind::Bhmr);
        let fdas = forced(ProtocolKind::Fdas);
        let nras = forced(ProtocolKind::Nras);
        assert!(bhmr <= fdas, "bhmr {bhmr} > fdas {fdas}");
        assert!(fdas <= nras, "fdas {fdas} > nras {nras}");
        assert_eq!(forced(ProtocolKind::Uncoordinated), 0);
    }
}
