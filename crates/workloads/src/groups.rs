//! The overlapping group communication environment (Figure 8 of the
//! evaluation).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// Static assignment of processes to (possibly overlapping) groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    groups: Vec<Vec<ProcessId>>,
}

impl GroupLayout {
    /// Builds a layout from explicit member lists.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty.
    pub fn new(groups: Vec<Vec<ProcessId>>) -> Self {
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "groups must be non-empty"
        );
        GroupLayout { groups }
    }

    /// The classical overlapping layout: consecutive windows of
    /// `group_size` processes, each overlapping the next by `overlap`
    /// members, wrapping around the ring of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`, `group_size > n`, or
    /// `overlap >= group_size`.
    pub fn overlapping(n: usize, group_size: usize, overlap: usize) -> Self {
        assert!(group_size > 0 && group_size <= n, "group size out of range");
        assert!(
            overlap < group_size,
            "overlap must be smaller than the group size"
        );
        let stride = group_size - overlap;
        let mut groups = Vec::new();
        let mut start = 0usize;
        loop {
            let members = (0..group_size)
                .map(|k| ProcessId::new((start + k) % n))
                .collect();
            groups.push(members);
            start += stride;
            if start >= n {
                break;
            }
        }
        GroupLayout { groups }
    }

    /// The groups `process` belongs to (indices into the layout).
    pub fn groups_of(&self, process: ProcessId) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, members)| members.contains(&process))
            .map(|(g, _)| g)
            .collect()
    }

    /// Members of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn members(&self, g: usize) -> &[ProcessId] {
        &self.groups[g]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// Overlapping group communication: on each activation a process picks one
/// of its groups uniformly and multicasts to every other member (as
/// unicasts — the model has no multicast primitive, §2.1); receivers
/// acknowledge the multicast back to its sender with a configurable
/// probability.
///
/// Processes in the overlap relay causal knowledge between groups, and the
/// acknowledgements close request/reply loops inside each group — exactly
/// the structure that gives the `causal` matrix of the BHMR protocol
/// something to certify (Figure 3's causal-sibling situation arises
/// naturally here).
#[derive(Debug, Clone)]
pub struct GroupEnvironment {
    layout: GroupLayout,
    mean_send_interval: u64,
    reply_probability: f64,
}

impl GroupEnvironment {
    /// Creates the environment over `layout`, with exponential think times
    /// of the given mean between multicasts and the default
    /// acknowledgement probability of `0.5`.
    pub fn new(layout: GroupLayout, mean_send_interval: u64) -> Self {
        GroupEnvironment {
            layout,
            mean_send_interval,
            reply_probability: 0.5,
        }
    }

    /// Sets the probability that a member acknowledges a received
    /// multicast to its sender.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_reply_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.reply_probability = p;
        self
    }

    /// The layout in use.
    pub fn layout(&self) -> &GroupLayout {
        &self.layout
    }

    fn reschedule(&self, ctx: &mut AppContext<'_>) {
        let delay = ctx.rng().exponential(self.mean_send_interval.max(1));
        ctx.schedule_activation(delay);
    }
}

impl Application for GroupEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        if !self.layout.groups_of(ctx.me()).is_empty() {
            self.reschedule(ctx);
        }
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        let my_groups = self.layout.groups_of(ctx.me());
        if let Some(&g) = (!my_groups.is_empty()).then(|| ctx.rng().choose(&my_groups)) {
            let members: Vec<ProcessId> = self
                .layout
                .members(g)
                .iter()
                .copied()
                .filter(|&m| m != ctx.me())
                .collect();
            for member in members {
                ctx.send(member);
            }
        }
        self.reschedule(ctx);
    }

    fn on_deliver(&mut self, ctx: &mut AppContext<'_>, from: ProcessId) {
        if self.reply_probability > 0.0 && ctx.rng().chance(self.reply_probability) {
            ctx.send(from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};

    #[test]
    fn overlapping_layout_shapes() {
        let layout = GroupLayout::overlapping(8, 4, 1);
        // stride 3: groups start at 0, 3, 6 -> 3 groups.
        assert_eq!(layout.num_groups(), 3);
        assert_eq!(
            layout.members(0),
            &[
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
        // Group at 6 wraps: {6, 7, 0, 1}.
        assert!(layout.members(2).contains(&ProcessId::new(0)));
        // P3 sits in the overlap of groups 0 and 1.
        assert_eq!(layout.groups_of(ProcessId::new(3)), vec![0, 1]);
    }

    #[test]
    fn multicasts_hit_whole_groups() {
        let layout = GroupLayout::overlapping(6, 3, 1);
        let config = SimConfig::new(6)
            .with_seed(31)
            .with_stop(StopCondition::MessagesSent(400));
        let mut app = GroupEnvironment::new(layout, 15);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        // Every process is in some group, so everyone sends and receives.
        for (i, stats) in outcome.stats.per_process.iter().enumerate() {
            assert!(stats.messages_sent > 0, "P{i} never sent");
            assert!(stats.messages_delivered > 0, "P{i} never received");
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_must_be_smaller_than_group() {
        let _ = GroupLayout::overlapping(8, 3, 3);
    }

    #[test]
    fn explicit_layout() {
        let layout = GroupLayout::new(vec![
            vec![ProcessId::new(0), ProcessId::new(1)],
            vec![ProcessId::new(1), ProcessId::new(2)],
        ]);
        assert_eq!(layout.groups_of(ProcessId::new(1)), vec![0, 1]);
        assert_eq!(layout.groups_of(ProcessId::new(2)), vec![1]);
    }
}
