//! Workload environments for the RDT checkpointing evaluation.
//!
//! The paper's simulation study (§5.3) compares protocols in three
//! computational environments; this crate implements them — plus two extra
//! realistic applications — as [`Application`](rdt_sim::Application) implementations:
//!
//! * [`RandomEnvironment`] — the *general* environment: every process
//!   alternates computation and communication, sending each message to a
//!   uniformly random peer (Figure 7 of the evaluation).
//! * [`GroupEnvironment`] — *overlapping group communication*: processes
//!   belong to (overlapping) groups and multicast within their groups
//!   (Figure 8).
//! * [`ClientServerEnvironment`] — servers `S_1 … S_n`: a client request
//!   enters at `S_1`; each server either replies or forwards to the next
//!   server with probability ½ and waits for the reply (Figure 9). The
//!   causal past of any message contains all the messages of the
//!   computation, which makes this environment the stress case for
//!   dependency tracking.
//! * [`RingEnvironment`] — a token circulating on a unidirectional ring
//!   (regular, deterministic communication).
//! * [`PipelineEnvironment`] — a producer/consumer pipeline with
//!   backpressure-free stage-to-stage streaming.
//!
//! All workloads draw their randomness from the run's seeded
//! [`SimRng`](rdt_sim::SimRng), so every `(workload-config, sim-config)`
//! pair is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod client_server;
mod coordinated;
mod domino;
mod groups;
mod pipeline;
mod random_env;
mod ring;

pub use blocking::{KooToueg, KT_ACK, KT_COMMIT, KT_REQUEST};
pub use client_server::ClientServerEnvironment;
pub use coordinated::{ChandyLamport, MARKER_TAG};
pub use domino::DominoEnvironment;
pub use groups::{GroupEnvironment, GroupLayout};
pub use pipeline::PipelineEnvironment;
pub use random_env::RandomEnvironment;
pub use ring::RingEnvironment;

use rdt_sim::Application;

/// The workloads of the paper's evaluation, as data (for harness sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvironmentKind {
    /// General random environment (Figure 7).
    Random,
    /// Overlapping group communication (Figure 8).
    Groups,
    /// Client/server chain (Figure 9).
    ClientServer,
    /// Token ring (extra).
    Ring,
    /// Producer/consumer pipeline (extra).
    Pipeline,
    /// Pairwise checkpoint-then-reply ping-pong building the classic
    /// domino-effect zigzag (crash-recovery stress workload).
    Domino,
}

impl EnvironmentKind {
    /// All environments, in figure order.
    pub fn all() -> &'static [EnvironmentKind] {
        &[
            EnvironmentKind::Random,
            EnvironmentKind::Groups,
            EnvironmentKind::ClientServer,
            EnvironmentKind::Ring,
            EnvironmentKind::Pipeline,
            EnvironmentKind::Domino,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EnvironmentKind::Random => "random",
            EnvironmentKind::Groups => "groups",
            EnvironmentKind::ClientServer => "client-server",
            EnvironmentKind::Ring => "ring",
            EnvironmentKind::Pipeline => "pipeline",
            EnvironmentKind::Domino => "domino",
        }
    }

    /// Builds the default-parameter application for `n` processes.
    ///
    /// Workload-specific parameters use each environment's `new`
    /// constructor defaults; harnesses needing custom parameters construct
    /// the concrete types directly.
    pub fn build(self, n: usize, mean_send_interval: u64) -> Box<dyn Application> {
        match self {
            EnvironmentKind::Random => Box::new(RandomEnvironment::new(mean_send_interval)),
            EnvironmentKind::Groups => {
                // Clamp the default layout for tiny systems.
                let group_size = 4.min(n.max(1));
                let overlap = if group_size > 1 { 1 } else { 0 };
                Box::new(GroupEnvironment::new(
                    GroupLayout::overlapping(n, group_size, overlap),
                    mean_send_interval,
                ))
            }
            EnvironmentKind::ClientServer => {
                Box::new(ClientServerEnvironment::new(mean_send_interval))
            }
            EnvironmentKind::Ring => Box::new(RingEnvironment::new(mean_send_interval)),
            EnvironmentKind::Pipeline => Box::new(PipelineEnvironment::new(mean_send_interval)),
            EnvironmentKind::Domino => Box::new(DominoEnvironment::new(mean_send_interval)),
        }
    }
}

impl std::fmt::Display for EnvironmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EnvironmentKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EnvironmentKind::all()
            .iter()
            .copied()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| format!("unknown environment {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};

    #[test]
    fn every_environment_generates_traffic() {
        for &env in EnvironmentKind::all() {
            let config = SimConfig::new(6)
                .with_seed(1)
                .with_stop(StopCondition::MessagesSent(200));
            let mut app = env.build(6, 20);
            let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, app.as_mut());
            assert!(
                outcome.stats.total.messages_sent >= 100,
                "{env}: only {} messages",
                outcome.stats.total.messages_sent
            );
            assert!(outcome.stats.total.messages_delivered > 0, "{env}");
        }
    }

    #[test]
    fn environment_kind_roundtrip() {
        for &env in EnvironmentKind::all() {
            assert_eq!(env.name().parse::<EnvironmentKind>().unwrap(), env);
            assert_eq!(env.to_string(), env.name());
        }
        assert!("bogus".parse::<EnvironmentKind>().is_err());
    }
}
