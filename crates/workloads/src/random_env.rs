//! The general random environment (Figure 7 of the evaluation).

use rdt_causality::ProcessId;
use rdt_sim::{AppContext, Application};

/// Every process alternates local computation and communication: after an
/// exponentially distributed think time it sends one message to a
/// uniformly random other process, then repeats.
///
/// This is the "general distributed computation" of the paper's simulation
/// study: no structure, uniform load, all-to-all traffic.
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
/// use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};
/// use rdt_workloads::RandomEnvironment;
///
/// let config = SimConfig::new(4).with_seed(2).with_stop(StopCondition::MessagesSent(100));
/// let mut app = RandomEnvironment::new(25);
/// let outcome = run_protocol_kind(ProtocolKind::Bhmr, &config, &mut app);
/// assert_eq!(outcome.stats.total.messages_sent, 100);
/// ```
#[derive(Debug, Clone)]
pub struct RandomEnvironment {
    mean_send_interval: u64,
}

impl RandomEnvironment {
    /// Creates the environment; each process draws send intervals
    /// exponentially with the given mean (ticks).
    pub fn new(mean_send_interval: u64) -> Self {
        RandomEnvironment { mean_send_interval }
    }

    fn reschedule(&self, ctx: &mut AppContext<'_>) {
        // A lone process can never send: rescheduling would spin the event
        // loop forever without advancing the message count.
        if ctx.num_processes() < 2 {
            return;
        }
        let delay = ctx.rng().exponential(self.mean_send_interval.max(1));
        ctx.schedule_activation(delay);
    }
}

impl Application for RandomEnvironment {
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.reschedule(ctx);
    }

    fn on_activate(&mut self, ctx: &mut AppContext<'_>) {
        let n = ctx.num_processes();
        if n > 1 {
            let me = ctx.me().index();
            let pick = ctx.rng().index(n - 1);
            let dest = if pick >= me { pick + 1 } else { pick };
            ctx.send(ProcessId::new(dest));
        }
        self.reschedule(ctx);
    }

    fn on_deliver(&mut self, _ctx: &mut AppContext<'_>, _from: ProcessId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_core::ProtocolKind;
    use rdt_sim::{run_protocol_kind, SimConfig, StopCondition};

    #[test]
    fn traffic_is_spread_over_all_processes() {
        let config = SimConfig::new(8)
            .with_seed(3)
            .with_stop(StopCondition::MessagesSent(800));
        let mut app = RandomEnvironment::new(10);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        for (i, stats) in outcome.stats.per_process.iter().enumerate() {
            assert!(
                stats.messages_sent > 30,
                "process {i} sent {}",
                stats.messages_sent
            );
        }
    }

    #[test]
    fn never_sends_to_self() {
        // The destination skip logic must exclude the sender; a self-send
        // would panic inside AppContext::send.
        let config = SimConfig::new(2)
            .with_seed(4)
            .with_stop(StopCondition::MessagesSent(200));
        let mut app = RandomEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        assert_eq!(outcome.stats.total.messages_sent, 200);
    }

    #[test]
    fn single_process_sends_nothing() {
        let config = SimConfig::new(1)
            .with_seed(4)
            .with_stop(StopCondition::MessagesSent(10));
        let mut app = RandomEnvironment::new(5);
        let outcome = run_protocol_kind(ProtocolKind::Uncoordinated, &config, &mut app);
        assert_eq!(outcome.stats.total.messages_sent, 0);
    }
}
