//! Deterministic, dependency-free property testing with the `proptest`
//! API surface this workspace uses.
//!
//! The container this repository builds in has no crates.io access, so the
//! real `proptest` cannot be compiled; this crate is an API-compatible
//! replacement for the subset the test-suites need:
//!
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`],
//! * integer-range, tuple, [`Just`] and [`collection::vec`] strategies,
//! * [`any`]`::<bool>()` (and the integer primitives),
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the case index and the fixed corpus seed, which — because every
//! stream is a pure function of the test's name — is already a minimal
//! reproduction recipe. Case generation is deterministic: the same test
//! name always replays the same corpus (a *fixed seed corpus*), so CI
//! failures reproduce locally without any environment coupling. Set
//! `PROPTEST_CASES` to scale the number of cases up or down globally.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng ----

/// The corpus generator: xoshiro256++ seeded via splitmix64 from the
/// test's name, so each test owns a fixed, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates the fixed-corpus generator of one named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[lo, hi)`; `lo` when the range is empty.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return lo + draw % span;
            }
        }
    }
}

// ----------------------------------------------------------- strategy ----

/// A recipe for generating values of one type.
///
/// Object-safe: `generate` is the only required method, so strategies can
/// be boxed for [`prop_oneof!`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                if hi == u64::MAX {
                    return rng.next_u64() as $t;
                }
                rng.below(lo, hi + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical unconstrained strategy; see [`any`].
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The unconstrained strategy of an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.0.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let pick = rng.below(0, self.0.len() as u64) as usize;
        self.0[pick].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: a fixed size or a half-open/inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start),
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ------------------------------------------------------------- config ----

/// Per-block configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs one property over `config.cases` generated cases. Used by the
/// [`proptest!`] macro; callable directly for programmatic properties.
pub fn run_cases<F: FnMut(&mut TestRng, u32)>(name: &str, config: &ProptestConfig, mut case: F) {
    let mut rng = TestRng::for_test(name);
    for index in 0..config.effective_cases() {
        case(&mut rng, index);
    }
}

// -------------------------------------------------------------- macros ---

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $config;
                $(let $arg = $strat;)+
                $crate::run_cases(stringify!($name), &__config, |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&$arg, __rng);)+
                    let __run = move || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {} of {} failed (fixed corpus of `{}`)",
                            __case, stringify!($name), stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a property body (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn corpus_is_fixed_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = 3u8..9;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v));
        }
        let inc = 0u64..=2;
        for _ in 0..200 {
            assert!(inc.generate(&mut rng) <= 2);
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = collection::vec(0u32..10, 2..5).prop_map(|v| v.len());
        for _ in 0..100 {
            let len = s.generate(&mut rng);
            assert!((2..5).contains(&len));
        }
        let fixed = collection::vec(any::<bool>(), 7);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_binds_and_iterates(x in 0u8..4, ys in collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 4);
            for y in ys {
                prop_assert!(y < 4);
            }
        }
    }
}
