//! Differential testing of engine snapshot/restore: an engine replayed
//! through `snapshot_json` → `from_snapshot_json` must be observationally
//! identical to the uninterrupted original — same query answers, same
//! answers after appending an identical suffix, and a byte-identical
//! re-snapshot — including when the snapshot is taken *after* an epoch
//! compaction. Corrupted snapshot documents must be rejected with a
//! `SnapshotError`, never a panic.

use proptest::prelude::*;
use rdt_causality::{CheckpointId, ProcessId};
use rdt_json::Json;
use rdt_rgraph::IncrementalAnalysis;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Cp(usize),
    Send(usize, usize),
    Del(u32),
}

fn random_ops(
    rng: &mut Rng,
    n: usize,
    events: usize,
    next_mid: &mut u32,
    in_flight: &mut Vec<u32>,
) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..events {
        match rng.below(8) {
            0..=2 => ops.push(Op::Cp(rng.below(n))),
            3 | 4 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                in_flight.push(*next_mid);
                *next_mid += 1;
                ops.push(Op::Send(from, to));
            }
            _ => {
                if !in_flight.is_empty() {
                    let i = rng.below(in_flight.len());
                    ops.push(Op::Del(in_flight.swap_remove(i)));
                }
            }
        }
    }
    ops
}

fn apply(incr: &mut IncrementalAnalysis, op: Op) {
    match op {
        Op::Cp(i) => {
            incr.append_checkpoint(ProcessId::new(i));
        }
        Op::Send(from, to) => {
            incr.append_send(ProcessId::new(from), ProcessId::new(to));
        }
        Op::Del(k) => incr.append_deliver(k),
    }
}

fn cp(p: usize, idx: u32) -> CheckpointId {
    CheckpointId::new(ProcessId::new(p), idx)
}

/// Compares every query kind the daemon serves on both engines.
fn assert_same_answers(a: &mut IncrementalAnalysis, b: &mut IncrementalAnalysis, what: &str) {
    let n = a.num_processes();
    assert_eq!(
        a.untrackable_pairs(),
        b.untrackable_pairs(),
        "{what}: pairs"
    );
    assert_eq!(a.rdt_holds(), b.rdt_holds(), "{what}: verdict");
    let caps: Vec<u32> = (0..n)
        .map(|p| a.last_checkpoint_index(ProcessId::new(p)))
        .collect();
    assert_eq!(
        a.max_consistent_dominated(&caps),
        b.max_consistent_dominated(&caps),
        "{what}: recovery line"
    );
    for (p, &cap) in caps.iter().enumerate() {
        let last = cp(p, cap);
        if a.checkpoint_exists(last) {
            assert_eq!(
                a.min_consistent_containing(&[last]),
                b.min_consistent_containing(&[last]),
                "{what}: min consistent containing {last:?}"
            );
            assert_eq!(
                a.max_consistent_containing(&[last]),
                b.max_consistent_containing(&[last]),
                "{what}: max consistent containing {last:?}"
            );
        }
    }
}

fn roundtrip(engine: &IncrementalAnalysis) -> IncrementalAnalysis {
    let doc = engine.snapshot_json();
    // Through actual bytes, exactly like the daemon's persistence path.
    let text = doc.to_string();
    let reparsed = Json::parse_bytes(text.as_bytes()).expect("snapshot text parses");
    assert_eq!(reparsed, doc, "snapshot JSON round-trips through text");
    IncrementalAnalysis::from_snapshot_json(&reparsed).expect("snapshot restores")
}

fn check_seed(seed: u64, compact_midway: bool) {
    let n = 2 + (seed as usize) % 3;
    let mut rng = Rng(seed | 1);
    let mut next_mid = 0u32;
    let mut in_flight = Vec::new();
    let prefix = random_ops(&mut rng, n, 60, &mut next_mid, &mut in_flight);
    let suffix = random_ops(&mut rng, n, 40, &mut next_mid, &mut in_flight);

    let mut original = IncrementalAnalysis::new(n);
    for &op in &prefix {
        apply(&mut original, op);
    }
    if compact_midway {
        original.compact_to_recovery_line();
    }

    let mut restored = roundtrip(&original);
    assert_same_answers(&mut original, &mut restored, "after restore");
    assert_eq!(
        original.snapshot_json().to_string(),
        restored.snapshot_json().to_string(),
        "re-snapshot is byte-identical"
    );

    // The restored engine must accept the same suffix and keep agreeing.
    for &op in &suffix {
        apply(&mut original, op);
        apply(&mut restored, op);
    }
    assert_same_answers(&mut original, &mut restored, "after suffix");
    assert_eq!(
        original.snapshot_json().to_string(),
        restored.snapshot_json().to_string(),
        "post-suffix snapshots are byte-identical"
    );
}

#[test]
fn snapshot_roundtrip_plain() {
    for seed in [3, 17, 2026] {
        check_seed(seed, false);
    }
}

#[test]
fn snapshot_roundtrip_after_compaction() {
    for seed in [5, 23, 404] {
        check_seed(seed, true);
    }
}

#[test]
fn empty_engine_roundtrips() {
    let engine = IncrementalAnalysis::new(4);
    let restored = roundtrip(&engine);
    assert_eq!(
        engine.snapshot_json().to_string(),
        restored.snapshot_json().to_string()
    );
}

/// Corruptions that would let an append or query index out of bounds must
/// be rejected at restore time.
#[test]
fn corrupted_snapshots_error() {
    let mut engine = IncrementalAnalysis::new(3);
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    engine.append_checkpoint(p0);
    let m = engine.append_send(p0, p1);
    engine.append_deliver(m);
    engine.append_checkpoint(p1);
    let doc = engine.snapshot_json();

    assert!(IncrementalAnalysis::from_snapshot_json(&Json::Null).is_err());
    assert!(IncrementalAnalysis::from_snapshot_json(&Json::obj([(
        "format",
        Json::Str("something-else".into())
    )]))
    .is_err());

    // Drop each top-level field in turn: all must error, none may panic.
    if let Json::Obj(pairs) = &doc {
        for i in 0..pairs.len() {
            let mut broken = pairs.clone();
            broken.remove(i);
            assert!(
                IncrementalAnalysis::from_snapshot_json(&Json::Obj(broken)).is_err(),
                "dropping field {} must fail restore",
                pairs[i].0
            );
        }
    } else {
        panic!("snapshot is an object");
    }

    // Out-of-range node index in a per-process table.
    let mut poisoned = doc.clone();
    if let Json::Obj(pairs) = &mut poisoned {
        for (key, value) in pairs.iter_mut() {
            if key == "cp_nodes" {
                *value = Json::Arr(vec![
                    Json::Arr(vec![Json::U64(9999)]),
                    Json::Arr(vec![Json::U64(1)]),
                    Json::Arr(vec![Json::U64(2)]),
                ]);
            }
        }
    }
    assert!(IncrementalAnalysis::from_snapshot_json(&poisoned).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot/restore equivalence over random streams and compaction
    /// choices.
    #[test]
    fn snapshot_restore_differential(seed in any::<u64>(), compact in any::<bool>()) {
        check_seed(seed, compact);
    }
}
