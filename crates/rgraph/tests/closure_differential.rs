//! Differential testing of the word-parallel SCC closure kernels against
//! the naive per-start DFS reference, on randomly generated patterns.
//!
//! The optimized kernels ([`rdt_rgraph::closure::transitive_closure`] and
//! the compressed link graphs behind [`ZigzagReachability::new`]) must be
//! observationally identical to the quadratic baselines
//! ([`transitive_closure_reference`], [`ZigzagReachability::new_naive`],
//! [`RGraph::reachability_naive`]) on every query the crate exposes.

use proptest::prelude::*;
use rdt_causality::ProcessId;
use rdt_rgraph::{Pattern, PatternBuilder, PatternMessageId, RGraph, ZigzagReachability};

/// Deterministic xorshift generator driving the pattern builder.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// Builds a random checkpoint & communication pattern: a mix of local
/// checkpoints, sends, and (possibly out-of-order) deliveries, with some
/// messages left in transit and the pattern only sometimes closed.
fn random_pattern(seed: u64, n: usize, events: usize) -> Pattern {
    let mut rng = Rng(seed | 1);
    let mut b = PatternBuilder::new(n);
    let mut in_flight: Vec<PatternMessageId> = Vec::new();
    for _ in 0..events {
        match rng.below(4) {
            0 => {
                b.checkpoint(ProcessId::new(rng.below(n)));
            }
            1 | 2 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                in_flight.push(b.send(ProcessId::new(from), ProcessId::new(to)));
            }
            _ => {
                if !in_flight.is_empty() {
                    let i = rng.below(in_flight.len());
                    let m = in_flight.swap_remove(i);
                    b.deliver(m).expect("in-flight message is deliverable");
                }
            }
        }
    }
    if rng.below(2) == 0 {
        b.close();
    }
    b.build().expect("random pattern is well-formed")
}

/// Every query of the two `ZigzagReachability` builds must agree.
fn assert_zigzag_equivalent(pattern: &Pattern) {
    let fast = ZigzagReachability::new(pattern);
    let naive = ZigzagReachability::new_naive(pattern);
    assert_eq!(fast.delivered_messages(), naive.delivered_messages());

    for a in 0..pattern.num_messages() {
        for b in 0..pattern.num_messages() {
            let (ma, mb) = (PatternMessageId(a), PatternMessageId(b));
            assert_eq!(
                fast.zigzag_closure(ma, mb),
                naive.zigzag_closure(ma, mb),
                "zigzag closure differs on ({ma}, {mb})"
            );
            assert_eq!(
                fast.causal_link_closure(ma, mb),
                naive.causal_link_closure(ma, mb),
                "causal closure differs on ({ma}, {mb})"
            );
        }
    }

    for from in pattern.checkpoints() {
        assert_eq!(fast.on_z_cycle(from), naive.on_z_cycle(from), "{from}");
        for to in pattern.checkpoints() {
            assert_eq!(
                fast.chain_exists(from, to),
                naive.chain_exists(from, to),
                "chain_exists differs on ({from}, {to})"
            );
            assert_eq!(
                fast.causal_chain_exists(from, to),
                naive.causal_chain_exists(from, to),
                "causal_chain_exists differs on ({from}, {to})"
            );
            assert_eq!(
                fast.causal_doubling_exists(from, to),
                naive.causal_doubling_exists(from, to),
                "causal_doubling_exists differs on ({from}, {to})"
            );
            assert_eq!(
                fast.z_path_after_to_before(from, to),
                naive.z_path_after_to_before(from, to),
                "z_path differs on ({from}, {to})"
            );
        }
    }
}

/// The R-graph reachability must agree between the two kernels too.
fn assert_rgraph_equivalent(pattern: &Pattern) {
    let graph = RGraph::new(&pattern.to_closed());
    let fast = graph.reachability();
    let naive = graph.reachability_naive();
    assert_eq!(
        fast.total_reachable_pairs(),
        naive.total_reachable_pairs(),
        "closure popcounts differ"
    );
    let closed = pattern.to_closed();
    for a in closed.checkpoints() {
        for b in closed.checkpoints() {
            assert_eq!(
                fast.reaches(a, b),
                naive.reaches(a, b),
                "R-graph reachability differs on ({a}, {b})"
            );
        }
    }
}

#[test]
fn kernels_agree_on_paper_figures() {
    for pattern in [
        rdt_rgraph::paper_figures::figure_1(),
        rdt_rgraph::paper_figures::figure_2_unbroken(),
        rdt_rgraph::paper_figures::figure_2_broken(),
        rdt_rgraph::paper_figures::figure_4_unbroken(),
        rdt_rgraph::paper_figures::figure_4_broken(),
    ] {
        assert_zigzag_equivalent(&pattern);
        assert_rgraph_equivalent(&pattern);
    }
}

#[test]
fn kernels_agree_on_fixed_seeds() {
    // Deterministic smoke corpus, cheap enough for every CI run.
    for seed in [3u64, 17, 99, 2024] {
        for n in [2usize, 4, 6] {
            let pattern = random_pattern(seed, n, 60);
            assert_zigzag_equivalent(&pattern);
            assert_rgraph_equivalent(&pattern);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimized SCC/word-parallel closures ≡ naive per-bit DFS closures
    /// on arbitrary random patterns — every public query compared.
    fn optimized_kernels_match_naive_reference(
        seed in 1u64..1_000_000,
        n in 2usize..7,
        events in 10usize..90,
    ) {
        let pattern = random_pattern(seed, n, events);
        assert_zigzag_equivalent(&pattern);
        assert_rgraph_equivalent(&pattern);
    }
}
