//! Adversarial event-order handling in `IncrementalAnalysis`: the
//! `try_append_*` entry points must reject deliver-before-send, duplicate
//! delivery, and out-of-range processes with a typed [`AppendError`] —
//! and a rejected append must leave the engine byte-identical, so a
//! hostile tenant stream cannot corrupt the analysis it shares a daemon
//! with.

use rdt_causality::ProcessId;
use rdt_rgraph::{AppendError, IncrementalAnalysis};

#[test]
fn deliver_before_send_is_rejected() {
    let mut engine = IncrementalAnalysis::new(2);
    assert_eq!(
        engine.try_append_deliver(0),
        Err(AppendError::UnknownMessage { mid: 0 })
    );
    assert_eq!(
        engine.try_append_deliver(u32::MAX),
        Err(AppendError::UnknownMessage { mid: u32::MAX })
    );
}

#[test]
fn duplicate_delivery_is_rejected() {
    let mut engine = IncrementalAnalysis::new(2);
    let m = engine
        .try_append_send(ProcessId::new(0), ProcessId::new(1))
        .expect("valid send");
    engine.try_append_deliver(m).expect("first delivery");
    assert_eq!(
        engine.try_append_deliver(m),
        Err(AppendError::AlreadyDelivered { mid: m })
    );
}

#[test]
fn out_of_range_processes_are_rejected() {
    let mut engine = IncrementalAnalysis::new(3);
    assert_eq!(
        engine.try_append_checkpoint(ProcessId::new(3)),
        Err(AppendError::ProcessOutOfRange { process: 3, n: 3 })
    );
    assert_eq!(
        engine.try_append_send(ProcessId::new(7), ProcessId::new(0)),
        Err(AppendError::ProcessOutOfRange { process: 7, n: 3 })
    );
    assert_eq!(
        engine.try_append_send(ProcessId::new(0), ProcessId::new(7)),
        Err(AppendError::ProcessOutOfRange { process: 7, n: 3 })
    );
}

/// A rejected append is a no-op: the engine's full serialized state is
/// unchanged, not just its visible counters.
#[test]
fn rejected_appends_leave_state_untouched() {
    let mut engine = IncrementalAnalysis::new(2);
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    engine.append_checkpoint(p0);
    let m = engine.append_send(p0, p1);
    engine.append_deliver(m);
    let before = engine.snapshot_json().to_string();

    assert!(engine.try_append_deliver(m).is_err());
    assert!(engine.try_append_deliver(99).is_err());
    assert!(engine.try_append_checkpoint(ProcessId::new(5)).is_err());
    assert!(engine.try_append_send(ProcessId::new(5), p0).is_err());

    assert_eq!(engine.snapshot_json().to_string(), before);

    // And the engine still works after the rejections.
    engine.append_checkpoint(p1);
    assert!(engine.checkpoint_exists(rdt_causality::CheckpointId::new(p1, 1)));
}
