//! Differential testing of the incremental analysis engine against the
//! batch [`PatternAnalysis`] pipeline, on randomly generated event
//! sequences.
//!
//! Two properties anchor the engine's correctness:
//!
//! 1. **Prefix equivalence** — after *every* append, the incremental
//!    state answers every public query identically to a fresh batch
//!    analysis of the event prefix.
//! 2. **Branch isolation** — rewinding a branch of appended events and
//!    re-appending a different branch matches a fresh build of the new
//!    sequence: no state leaks across `mark()`/`rewind()` boundaries.

use proptest::prelude::*;
use rdt_causality::ProcessId;
use rdt_rgraph::characterization::{all_chains_doubled_with, all_cm_paths_doubled_with};
use rdt_rgraph::{
    min_max, IncrementalAnalysis, Pattern, PatternAnalysis, PatternBuilder, PatternMessageId,
};

/// Deterministic xorshift generator driving the op-sequence builder.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// One append, in engine terms. `Del` carries the engine's message
/// handle (send-order number).
#[derive(Debug, Clone, Copy)]
enum Op {
    Cp(usize),
    Send(usize, usize),
    Del(u32),
}

/// Generates a well-formed op sequence continuing from `(next_mid,
/// in_flight)`, mutating both so branches can fork from a shared prefix.
fn random_ops(
    rng: &mut Rng,
    n: usize,
    events: usize,
    next_mid: &mut u32,
    in_flight: &mut Vec<u32>,
) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..events {
        match rng.below(4) {
            0 => ops.push(Op::Cp(rng.below(n))),
            1 | 2 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                in_flight.push(*next_mid);
                *next_mid += 1;
                ops.push(Op::Send(from, to));
            }
            _ => {
                if !in_flight.is_empty() {
                    let i = rng.below(in_flight.len());
                    ops.push(Op::Del(in_flight.swap_remove(i)));
                }
            }
        }
    }
    ops
}

/// Applies ops in lockstep to the engine and to a [`PatternBuilder`]
/// mirror (so batch analyses of the same prefix can be built on demand).
struct Lockstep {
    incr: IncrementalAnalysis,
    builder: PatternBuilder,
    mids: Vec<PatternMessageId>,
}

impl Lockstep {
    fn new(n: usize) -> Self {
        Lockstep {
            incr: IncrementalAnalysis::new(n),
            builder: PatternBuilder::new(n),
            mids: Vec::new(),
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::Cp(i) => {
                self.incr.append_checkpoint(ProcessId::new(i));
                self.builder.checkpoint(ProcessId::new(i));
            }
            Op::Send(from, to) => {
                let mid = self
                    .incr
                    .append_send(ProcessId::new(from), ProcessId::new(to));
                assert_eq!(mid as usize, self.mids.len(), "send-order handles");
                self.mids
                    .push(self.builder.send(ProcessId::new(from), ProcessId::new(to)));
            }
            Op::Del(k) => {
                self.incr.append_deliver(k);
                self.builder
                    .deliver(self.mids[k as usize])
                    .expect("in-flight message is deliverable");
            }
        }
    }

    fn pattern(&self) -> Pattern {
        self.builder.clone().build().expect("well-formed")
    }
}

/// Every public query of the engine must agree with a fresh batch
/// analysis of the same pattern.
fn assert_equivalent(incr: &mut IncrementalAnalysis, pattern: &Pattern) {
    let analysis = PatternAnalysis::new(pattern);
    let closed = analysis.pattern();
    let reach = analysis.reachability();
    let annotations = analysis.annotations().expect("realizable");
    let zz = analysis.zigzag();

    incr.with_closed(|view| {
        let mut batch_untrackable = 0u64;
        for from in closed.checkpoints() {
            for to in reach.reachable_from(from) {
                if !annotations.trackable(from, to) {
                    batch_untrackable += 1;
                }
            }
        }
        assert_eq!(view.untrackable_pairs(), batch_untrackable, "untrackable");
        assert_eq!(
            view.total_reachable_pairs(),
            reach.total_reachable_pairs(),
            "closure popcount"
        );
        let report = analysis.rdt_report();
        assert_eq!(view.rdt_holds(), report.holds(), "verdict");
        assert_eq!(
            view.violations_capped(16),
            report.violations().len(),
            "capped violations"
        );
        assert_eq!(
            view.all_chains_doubled(),
            all_chains_doubled_with(&analysis),
            "chains doubled"
        );
        assert_eq!(
            view.all_cm_paths_doubled(),
            all_cm_paths_doubled_with(&analysis),
            "cm paths doubled"
        );

        for a in 0..pattern.num_messages() {
            for b in 0..pattern.num_messages() {
                let (ma, mb) = (PatternMessageId(a), PatternMessageId(b));
                assert_eq!(
                    view.zigzag_closure(a as u32, b as u32),
                    zz.zigzag_closure(ma, mb),
                    "zigzag closure ({ma}, {mb})"
                );
                assert_eq!(
                    view.causal_link_closure(a as u32, b as u32),
                    zz.causal_link_closure(ma, mb),
                    "causal closure ({ma}, {mb})"
                );
            }
        }

        for from in closed.checkpoints() {
            assert_eq!(view.on_z_cycle(from), zz.on_z_cycle(from), "{from}");
            for to in closed.checkpoints() {
                assert_eq!(
                    view.reaches(from, to),
                    reach.reaches(from, to),
                    "reaches ({from}, {to})"
                );
                assert_eq!(
                    view.chain_exists(from, to),
                    zz.chain_exists(from, to),
                    "chain ({from}, {to})"
                );
                assert_eq!(
                    view.causal_chain_exists(from, to),
                    zz.causal_chain_exists(from, to),
                    "causal chain ({from}, {to})"
                );
                assert_eq!(
                    view.causal_doubling_exists(from, to),
                    zz.causal_doubling_exists(from, to),
                    "doubling ({from}, {to})"
                );
                assert_eq!(
                    view.z_path_after_to_before(from, to),
                    zz.z_path_after_to_before(from, to),
                    "z-path ({from}, {to})"
                );
            }
            let member = [from];
            assert_eq!(
                view.min_consistent_containing(&member),
                min_max::min_consistent_containing(closed, &member),
                "min gc {from}"
            );
            assert_eq!(
                view.max_consistent_containing(&member),
                min_max::max_consistent_containing(closed, &member),
                "max gc {from}"
            );
            assert_eq!(
                view.min_consistent_via_rgraph(&member),
                min_max::min_consistent_via_rgraph_with(&analysis, &member),
                "min gc via R-graph {from}"
            );
        }
    });
}

/// Cheap closed-state observation used to compare replayed branches.
fn digest(incr: &mut IncrementalAnalysis) -> (u64, usize, bool, bool, bool) {
    incr.with_closed(|view| {
        (
            view.untrackable_pairs(),
            view.total_reachable_pairs(),
            view.rdt_holds(),
            view.all_chains_doubled(),
            view.all_cm_paths_doubled(),
        )
    })
}

#[test]
fn incremental_matches_batch_on_fixed_seeds() {
    // Deterministic smoke corpus: full equivalence after every append.
    for seed in [3u64, 17, 99, 2024] {
        for n in [2usize, 3] {
            let mut rng = Rng(seed | 1);
            let mut next_mid = 0u32;
            let mut in_flight = Vec::new();
            let ops = random_ops(&mut rng, n, 30, &mut next_mid, &mut in_flight);
            let mut lock = Lockstep::new(n);
            for &op in &ops {
                lock.apply(op);
                let prefix = lock.pattern();
                assert_equivalent(&mut lock.incr, &prefix);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// After every append in a random event sequence, the incremental
    /// state answers identically to a fresh batch analysis of the prefix.
    fn incremental_matches_batch_after_every_append(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        events in 10usize..40,
    ) {
        let mut rng = Rng(seed | 1);
        let mut next_mid = 0u32;
        let mut in_flight = Vec::new();
        let ops = random_ops(&mut rng, n, events, &mut next_mid, &mut in_flight);
        let mut lock = Lockstep::new(n);
        for &op in &ops {
            lock.apply(op);
            let prefix = lock.pattern();
            assert_equivalent(&mut lock.incr, &prefix);
        }
    }

    /// Rewinding k events and re-appending a different branch matches a
    /// fresh build of the new sequence, and replaying the first branch
    /// after the detour reproduces its observation exactly.
    fn rewound_branches_do_not_leak(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        pre in 4usize..24,
        a_len in 3usize..16,
        b_len in 3usize..16,
    ) {
        let mut rng = Rng(seed | 1);
        let mut next_mid = 0u32;
        let mut in_flight = Vec::new();
        let prefix = random_ops(&mut rng, n, pre, &mut next_mid, &mut in_flight);
        let (mut mid_a, mut fly_a) = (next_mid, in_flight.clone());
        let ops_a = random_ops(&mut rng, n, a_len, &mut mid_a, &mut fly_a);
        let (mut mid_b, mut fly_b) = (next_mid, in_flight.clone());
        let ops_b = random_ops(&mut rng, n, b_len, &mut mid_b, &mut fly_b);

        let mut lock = Lockstep::new(n);
        for &op in &prefix {
            lock.apply(op);
        }
        let mark = lock.incr.mark();
        let builder_at_mark = lock.builder.clone();

        // Branch A, observed and fully verified against batch.
        for &op in &ops_a {
            lock.apply(op);
        }
        let digest_a = digest(&mut lock.incr);
        let pattern_a = lock.pattern();
        assert_equivalent(&mut lock.incr, &pattern_a);

        // Rewind, then branch B: verdicts must be those of prefix+B.
        lock.incr.rewind(mark);
        lock.builder = builder_at_mark.clone();
        lock.mids.truncate(next_mid as usize);
        for &op in &ops_b {
            lock.apply(op);
        }
        let pattern_b = lock.pattern();
        assert_equivalent(&mut lock.incr, &pattern_b);

        // Rewind again and replay branch A: identical observation, both
        // against the detoured engine and a fresh one.
        lock.incr.rewind(mark);
        lock.builder = builder_at_mark;
        lock.mids.truncate(next_mid as usize);
        for &op in &ops_a {
            lock.apply(op);
        }
        prop_assert_eq!(digest(&mut lock.incr), digest_a);

        let mut fresh = Lockstep::new(n);
        for &op in prefix.iter().chain(&ops_a) {
            fresh.apply(op);
        }
        prop_assert_eq!(digest(&mut fresh.incr), digest_a);
    }
}
