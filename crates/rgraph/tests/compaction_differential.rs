//! Differential testing of epoch compaction: a compacting engine and an
//! uncompacted control replay the same event sequence in lockstep, and
//! after every append and every compaction point the compacted engine
//! must answer identically on its documented domain.
//!
//! Three properties anchor compaction's correctness:
//!
//! 1. **Global exactness** — the untrackable-pair counter, the RDT
//!    verdict (open and closed view), and the fixpoint consistency
//!    oracles agree with the control over the *entire* history, dropped
//!    prefix included.
//! 2. **Live-suffix exactness** — `reaches`, the R-graph minimum-GC
//!    oracle, chain/doubling/Z-path queries and the message closures
//!    agree with the control on retained checkpoints and live-headed
//!    chains.
//! 3. **Defined rewind failure** — rewinding to a mark taken before a
//!    state-discarding compaction reports
//!    [`RewindError::CompactionBoundary`] and leaves the engine intact;
//!    marks taken after the compaction keep working.

use proptest::prelude::*;
use rdt_causality::{CheckpointId, ProcessId};
use rdt_rgraph::{IncrementalAnalysis, RewindError};

/// Deterministic xorshift generator driving the op-sequence builder.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() as usize) % n
    }
}

/// One append, in engine terms. `Del` carries the engine's message
/// handle (send-order number).
#[derive(Debug, Clone, Copy)]
enum Op {
    Cp(usize),
    Send(usize, usize),
    Del(u32),
}

/// Generates a well-formed op sequence continuing from `(next_mid,
/// in_flight)`, mutating both so branches can fork from a shared prefix.
/// Checkpoint-heavier than the plain differential mix so recovery lines
/// advance and compactions actually discard state.
fn random_ops(
    rng: &mut Rng,
    n: usize,
    events: usize,
    next_mid: &mut u32,
    in_flight: &mut Vec<u32>,
) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..events {
        match rng.below(8) {
            0..=2 => ops.push(Op::Cp(rng.below(n))),
            3 | 4 => {
                let from = rng.below(n);
                let to = (from + 1 + rng.below(n - 1)) % n;
                in_flight.push(*next_mid);
                *next_mid += 1;
                ops.push(Op::Send(from, to));
            }
            _ => {
                if !in_flight.is_empty() {
                    let i = rng.below(in_flight.len());
                    ops.push(Op::Del(in_flight.swap_remove(i)));
                }
            }
        }
    }
    ops
}

fn apply(incr: &mut IncrementalAnalysis, op: Op) {
    match op {
        Op::Cp(i) => {
            incr.append_checkpoint(ProcessId::new(i));
        }
        Op::Send(from, to) => {
            incr.append_send(ProcessId::new(from), ProcessId::new(to));
        }
        Op::Del(k) => incr.append_deliver(k),
    }
}

fn cp(p: usize, idx: u32) -> CheckpointId {
    CheckpointId::new(ProcessId::new(p), idx)
}

/// Every checkpoint of the full pattern, compacted away or not.
fn all_checkpoints(incr: &IncrementalAnalysis) -> Vec<CheckpointId> {
    (0..incr.num_processes())
        .flat_map(|p| {
            (0..=incr.last_checkpoint_index(ProcessId::new(p))).map(move |idx| cp(p, idx))
        })
        .collect()
}

/// The compacted engine must agree with the uncompacted control —
/// globally for counter- and message-table-based queries, and on the
/// documented live suffix for closure-row-based ones.
fn assert_compacted_equivalent(comp: &mut IncrementalAnalysis, ctrl: &mut IncrementalAnalysis) {
    let n = ctrl.num_processes();
    assert_eq!(comp.num_processes(), n);
    assert_eq!(comp.num_messages(), ctrl.num_messages());

    // Global: running violation counter and verdicts.
    assert_eq!(comp.untrackable_pairs(), ctrl.untrackable_pairs(), "pairs");
    assert_eq!(comp.rdt_holds(), ctrl.rdt_holds(), "verdict");
    assert_eq!(comp.violations_capped(16), ctrl.violations_capped(16));
    assert_eq!(
        comp.with_closed(|v| (v.untrackable_pairs(), v.rdt_holds())),
        ctrl.with_closed(|v| (v.untrackable_pairs(), v.rdt_holds())),
        "closed view"
    );

    // Global: fixpoint consistency oracles stay exact for *any* member,
    // dropped checkpoints included, and for any caps vector.
    let everything = all_checkpoints(ctrl);
    for &c in &everything {
        assert_eq!(
            comp.min_consistent_containing(&[c]),
            ctrl.min_consistent_containing(&[c]),
            "min gc {c}"
        );
        assert_eq!(
            comp.max_consistent_containing(&[c]),
            ctrl.max_consistent_containing(&[c]),
            "max gc {c}"
        );
    }
    let tops: Vec<u32> = (0..n)
        .map(|p| ctrl.last_checkpoint_index(ProcessId::new(p)))
        .collect();
    let halves: Vec<u32> = tops.iter().map(|&t| t / 2).collect();
    for caps in [&tops, &halves] {
        assert_eq!(
            comp.max_consistent_dominated(caps),
            ctrl.max_consistent_dominated(caps),
            "recovery line under {caps:?}"
        );
    }

    // Global: message routes and delivery state.
    for mid in 0..ctrl.num_messages() as u32 {
        assert_eq!(comp.message_delivered(mid), ctrl.message_delivered(mid));
        assert_eq!(comp.message_route(mid), ctrl.message_route(mid));
    }

    // Live suffix: R-graph reachability and the R-graph minimum-GC
    // oracle for retained checkpoints.
    let base = comp.retained_from().to_vec();
    let retained: Vec<CheckpointId> = everything
        .iter()
        .copied()
        .filter(|c| c.index >= base[c.process.index()])
        .collect();
    for &a in &retained {
        assert_eq!(
            comp.min_consistent_via_rgraph(&[a]),
            ctrl.min_consistent_via_rgraph(&[a]),
            "min gc via R-graph {a}"
        );
        for &b in &retained {
            assert_eq!(comp.reaches(a, b), ctrl.reaches(a, b), "reaches {a} {b}");
        }
    }

    // Live suffix: chain-layer queries for heads strictly above the
    // chain floor, against arbitrary (even dropped) targets.
    let floor = comp.chain_floors().to_vec();
    let live_headed: Vec<CheckpointId> = everything
        .iter()
        .copied()
        .filter(|c| c.index > floor[c.process.index()])
        .collect();
    for &a in &live_headed {
        assert_eq!(comp.on_z_cycle(a), ctrl.on_z_cycle(a), "z-cycle {a}");
        for &b in &everything {
            assert_eq!(
                comp.chain_exists(a, b),
                ctrl.chain_exists(a, b),
                "chain {a} {b}"
            );
            assert_eq!(
                comp.causal_chain_exists(a, b),
                ctrl.causal_chain_exists(a, b),
                "causal chain {a} {b}"
            );
            assert_eq!(
                comp.causal_doubling_exists(a, b),
                ctrl.causal_doubling_exists(a, b),
                "doubling {a} {b}"
            );
            assert_eq!(
                comp.z_path_after_to_before(a, b),
                ctrl.z_path_after_to_before(a, b),
                "z-path {a} {b}"
            );
        }
    }

    // Live suffix: message chain closures for live-sent sources.
    let route_of = |mid: u32| ctrl.message_route(mid);
    for a in 0..ctrl.num_messages() as u32 {
        let ra = route_of(a);
        if ra.send_interval <= floor[ra.from.index()] {
            continue;
        }
        for b in 0..ctrl.num_messages() as u32 {
            assert_eq!(
                comp.zigzag_closure(a, b),
                ctrl.zigzag_closure(a, b),
                "zigzag {a} {b}"
            );
            assert_eq!(
                comp.causal_link_closure(a, b),
                ctrl.causal_link_closure(a, b),
                "causal link {a} {b}"
            );
        }
    }

    // Compaction is the memory lever: the compacted engine never holds
    // more closure rows than the control.
    assert!(comp.resident_closure_nodes() <= ctrl.resident_closure_nodes());
}

#[test]
fn fixed_seed_compaction_lockstep() {
    // Deterministic smoke corpus: compact every few events, verify the
    // full contract after every single append.
    for seed in [5u64, 41, 977, 40416] {
        for n in [2usize, 3] {
            let mut rng = Rng(seed | 1);
            let mut next_mid = 0u32;
            let mut in_flight = Vec::new();
            let ops = random_ops(&mut rng, n, 60, &mut next_mid, &mut in_flight);
            let mut comp = IncrementalAnalysis::new(n);
            let mut ctrl = IncrementalAnalysis::new(n);
            for (i, &op) in ops.iter().enumerate() {
                apply(&mut comp, op);
                apply(&mut ctrl, op);
                if i % 7 == 6 {
                    comp.compact_to_recovery_line();
                }
                assert_compacted_equivalent(&mut comp, &mut ctrl);
            }
        }
    }
}

#[test]
fn repeated_compaction_reclaims_and_stays_exact() {
    // A long run with frequent compaction: the watermark must advance,
    // rows must actually be reclaimed, and the final state must still
    // match the control.
    let n = 3;
    let mut rng = Rng(0xC0FFEE);
    let mut next_mid = 0u32;
    let mut in_flight = Vec::new();
    let ops = random_ops(&mut rng, n, 400, &mut next_mid, &mut in_flight);
    let mut comp = IncrementalAnalysis::new(n);
    let mut ctrl = IncrementalAnalysis::new(n);
    for (i, &op) in ops.iter().enumerate() {
        apply(&mut comp, op);
        apply(&mut ctrl, op);
        if i % 25 == 24 {
            comp.compact_to_recovery_line();
        }
    }
    assert!(comp.compactions() > 0, "long run must discard state");
    assert!(comp.reclaimed_rows() > 0);
    assert!(comp.compaction_watermark().iter().any(|&w| w > 0));
    assert!(comp.resident_closure_nodes() < ctrl.resident_closure_nodes());
    assert_compacted_equivalent(&mut comp, &mut ctrl);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random interleavings with compaction at random points (recovery
    /// line or arbitrary caps) answer identically to the uncompacted
    /// control after every append.
    fn compacted_engine_matches_control(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        events in 20usize..80,
        stride in 5usize..16,
    ) {
        let mut rng = Rng(seed | 1);
        let mut next_mid = 0u32;
        let mut in_flight = Vec::new();
        let ops = random_ops(&mut rng, n, events, &mut next_mid, &mut in_flight);
        let mut comp = IncrementalAnalysis::new(n);
        let mut ctrl = IncrementalAnalysis::new(n);
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut comp, op);
            apply(&mut ctrl, op);
            if i % stride == stride - 1 {
                if rng.below(2) == 0 {
                    comp.compact_to_recovery_line();
                } else {
                    let caps: Vec<u32> = (0..n)
                        .map(|p| {
                            let top = comp.last_checkpoint_index(ProcessId::new(p));
                            rng.below(top as usize + 1) as u32
                        })
                        .collect();
                    comp.compact_to(&caps);
                }
                assert_compacted_equivalent(&mut comp, &mut ctrl);
            }
        }
        assert_compacted_equivalent(&mut comp, &mut ctrl);
    }

    /// Rewinding past a state-discarding compaction is the documented
    /// error and leaves the engine untouched; marks taken after the
    /// compaction rewind normally and branches replay identically.
    fn rewind_across_compaction_is_defined_error(
        seed in 1u64..1_000_000,
        n in 2usize..5,
        pre in 10usize..40,
        branch in 4usize..16,
    ) {
        let mut rng = Rng(seed | 1);
        let mut next_mid = 0u32;
        let mut in_flight = Vec::new();
        let prefix = random_ops(&mut rng, n, pre, &mut next_mid, &mut in_flight);
        let ops = random_ops(&mut rng, n, branch, &mut next_mid, &mut in_flight);

        let mut comp = IncrementalAnalysis::new(n);
        let mut ctrl = IncrementalAnalysis::new(n);
        for &op in &prefix {
            apply(&mut comp, op);
            apply(&mut ctrl, op);
        }
        let before = comp.mark();
        let stats = comp.compact_to_recovery_line();
        let after = comp.mark();

        if stats.discarded_state() {
            // Pre-compaction marks are dead: defined error, state intact.
            let err = comp.try_rewind(before);
            prop_assert!(
                matches!(err, Err(RewindError::CompactionBoundary { .. })),
                "expected boundary error, got {err:?}"
            );
            prop_assert!(comp.compaction_epoch() > 0);
            prop_assert!(comp.compactions() > 0);
            assert_compacted_equivalent(&mut comp, &mut ctrl);
        } else {
            // No state discarded: the old mark must still work.
            prop_assert!(comp.try_rewind(before).is_ok());
        }

        // Post-compaction marks behave like ordinary marks: branch,
        // rewind, replay — identical counters to the control throughout.
        for &op in &ops {
            apply(&mut comp, op);
        }
        let branched = comp.untrackable_pairs();
        prop_assert!(comp.try_rewind(after).is_ok());
        for &op in &ops {
            apply(&mut comp, op);
            apply(&mut ctrl, op);
        }
        prop_assert_eq!(comp.untrackable_pairs(), branched);
        assert_compacted_equivalent(&mut comp, &mut ctrl);
    }

    /// Crashy usage: processes repeatedly roll back to a recent mark
    /// (the simulator's crash-recovery shape), with compactions
    /// interleaved. Marks that survive an epoch keep working; marks that
    /// don't fail loudly; both engines stay in lockstep.
    fn crashy_rollback_with_compaction_stays_exact(
        seed in 1u64..1_000_000,
        n in 2usize..4,
        rounds in 3usize..8,
        burst in 6usize..20,
    ) {
        let mut rng = Rng(seed | 1);
        let mut next_mid = 0u32;
        let mut in_flight = Vec::new();
        let mut comp = IncrementalAnalysis::new(n);
        let mut ctrl = IncrementalAnalysis::new(n);

        for _ in 0..rounds {
            // A burst of speculative events, observed then rolled back —
            // rgraph-level crash recovery.
            let snap_comp = comp.mark();
            let snap_ctrl = ctrl.mark();
            let (mut mid2, mut fly2) = (next_mid, in_flight.clone());
            let spec = random_ops(&mut rng, n, burst, &mut mid2, &mut fly2);
            for &op in &spec {
                apply(&mut comp, op);
                apply(&mut ctrl, op);
            }
            assert_compacted_equivalent(&mut comp, &mut ctrl);
            comp.rewind(snap_comp);
            ctrl.rewind(snap_ctrl);

            // The surviving history advances and is compacted.
            let keep = random_ops(&mut rng, n, burst, &mut next_mid, &mut in_flight);
            for &op in &keep {
                apply(&mut comp, op);
                apply(&mut ctrl, op);
            }
            let stats = comp.compact_to_recovery_line();
            if stats.discarded_state() {
                prop_assert!(matches!(
                    comp.try_rewind(snap_comp),
                    Err(RewindError::CompactionBoundary { .. })
                ));
            }
            assert_compacted_equivalent(&mut comp, &mut ctrl);
        }
    }
}
