//! Word-parallel transitive-closure kernels.
//!
//! Both reachability relations of the theory layer — the R-graph closure
//! ([`crate::Reachability`]) and the message-chain closures
//! ([`crate::ZigzagReachability`]) — reduce to the same problem: given a
//! digraph where the first `labelled` nodes carry a column bit, compute
//! for every node the set of labelled nodes it reaches (reflexively for
//! labelled nodes). The optimized kernel here condenses the graph into
//! strongly connected components with an iterative Tarjan pass and then
//! resolves the closure with one word-parallel row union per edge, in
//! `O(V + E·cols/64)` time — whole-row `u64` ORs instead of the per-bit
//! stack pushes of the naive per-source search.
//!
//! The naive kernel is kept as [`transitive_closure_reference`] — it is
//! the differential oracle for the proptest suite and the baseline the
//! `closure_kernels` bench measures the speedup against.

use crate::bitset::BitMatrix;

/// Tarjan's SCC algorithm, iteratively (explicit call stack, no
/// recursion). Returns `(comp, num_comps)` where `comp[u]` is the
/// component of node `u` and component ids are assigned in **reverse
/// topological order**: if any edge leads from component `a` to component
/// `b ≠ a`, then `comp id of b < comp id of a`.
fn tarjan_scc(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0usize;
    let mut num_comps = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some((u, ei)) = call.last_mut() {
            let u = *u;
            if let Some(&w) = adj[u].get(*ei) {
                *ei += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[u] = low[u].min(index[w]);
                }
            } else {
                call.pop();
                if let Some((p, _)) = call.last() {
                    low[*p] = low[*p].min(low[u]);
                }
                if low[u] == index[u] {
                    // `u` is the root of an SCC; every component reachable
                    // from it has already been numbered, so this id is
                    // larger than all of its successors' — reverse
                    // topological order by construction.
                    // SCC members are on the stack, ending with `u`.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = num_comps;
                        if w == u {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }
    (comp, num_comps)
}

/// Computes, for every node of `adj`, the set of *labelled* nodes it
/// reaches. Nodes `0..labelled` carry their own column bit (so a labelled
/// node always reaches itself — the relations of the theory layer are
/// reflexive); nodes `labelled..` are auxiliary (interval slots, chain
/// spines) and have rows but no columns.
///
/// Returns an `adj.len() × labelled` [`BitMatrix`]; callers that only
/// query labelled rows can [`BitMatrix::truncate_rows`] the rest away.
///
/// Algorithm: SCC condensation ([`tarjan_scc`]) followed by a single
/// forward pass over the components in reverse topological order, each
/// edge contributing one word-parallel row union — `O(V + E·labelled/64)`.
///
/// # Panics
///
/// Panics (debug) if `labelled > adj.len()` or an edge target is out of
/// range.
pub fn transitive_closure(adj: &[Vec<usize>], labelled: usize) -> BitMatrix {
    debug_assert!(labelled <= adj.len());
    let n = adj.len();
    let (comp, num_comps) = tarjan_scc(adj);

    let mut comp_rows = BitMatrix::new(num_comps, labelled);
    for (u, &cu) in comp.iter().enumerate().take(labelled) {
        comp_rows.set(cu, u);
    }

    // Visit nodes grouped by component id ascending (counting sort), so
    // every inter-component edge points at an already-final row.
    let mut comp_start = vec![0usize; num_comps + 1];
    for &c in &comp {
        comp_start[c + 1] += 1;
    }
    for c in 0..num_comps {
        comp_start[c + 1] += comp_start[c];
    }
    let mut order = vec![0usize; n];
    let mut cursor = comp_start.clone();
    for u in 0..n {
        order[cursor[comp[u]]] = u;
        cursor[comp[u]] += 1;
    }
    for &u in &order {
        let cu = comp[u];
        for &w in &adj[u] {
            if comp[w] != cu {
                comp_rows.union_rows(cu, comp[w]);
            }
        }
    }

    let mut rows = BitMatrix::new(n, labelled);
    for (u, &cu) in comp.iter().enumerate() {
        rows.copy_row_from(u, &comp_rows, cu);
    }
    rows
}

/// Naive reference closure: an independent per-bit depth-first search from
/// every node, `O(V·E)` — the semantics [`transitive_closure`] must match
/// exactly.
///
/// Kept public (not `#[cfg(test)]`) because the `closure_kernels` bench
/// and the `rdtcheck` experiment measure the optimized kernel's speedup
/// against it, and the proptest differential suite uses it as its oracle.
///
/// # Panics
///
/// Panics (debug) if `labelled > adj.len()` or an edge target is out of
/// range.
pub fn transitive_closure_reference(adj: &[Vec<usize>], labelled: usize) -> BitMatrix {
    debug_assert!(labelled <= adj.len());
    let n = adj.len();
    let mut rows = BitMatrix::new(n, labelled);
    let mut visited = vec![false; n];
    let mut stack = Vec::new();
    for start in 0..n {
        visited.fill(false);
        visited[start] = true;
        if start < labelled {
            rows.set(start, start);
        }
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &w in &adj[u] {
                if !visited[w] {
                    visited[w] = true;
                    if w < labelled {
                        rows.set(start, w);
                    }
                    stack.push(w);
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_closures_agree(adj: &[Vec<usize>], labelled: usize) {
        let fast = transitive_closure(adj, labelled);
        let slow = transitive_closure_reference(adj, labelled);
        assert_eq!(fast, slow, "adj={adj:?}, labelled={labelled}");
    }

    #[test]
    fn empty_graph() {
        assert_closures_agree(&[], 0);
        assert_closures_agree(&[vec![], vec![]], 2);
    }

    #[test]
    fn straight_line() {
        let adj = vec![vec![1], vec![2], vec![3], vec![]];
        assert_closures_agree(&adj, 4);
        let rows = transitive_closure(&adj, 4);
        assert_eq!(rows.row_ones(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rows.row_ones(3).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn cycle_members_reach_each_other() {
        let adj = vec![vec![1], vec![2], vec![0], vec![0]];
        assert_closures_agree(&adj, 4);
        let rows = transitive_closure(&adj, 4);
        for u in 0..3 {
            assert_eq!(rows.row_ones(u).collect::<Vec<_>>(), vec![0, 1, 2]);
        }
        assert_eq!(rows.row_ones(3).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unlabelled_slots_route_but_carry_no_column() {
        // 0,1 labelled; 2,3 auxiliary: 0 → 2 → 3 → 1.
        let adj = vec![vec![2], vec![], vec![3], vec![1]];
        assert_closures_agree(&adj, 2);
        let rows = transitive_closure(&adj, 2);
        assert_eq!(rows.cols(), 2);
        assert_eq!(rows.row_ones(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(rows.row_ones(1).collect::<Vec<_>>(), vec![1]);
        // Auxiliary rows exist and see the labelled nodes they reach but
        // never themselves.
        assert_eq!(rows.row_ones(2).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn diamond_with_self_loops_and_parallel_edges() {
        let adj = vec![vec![1, 2, 1], vec![3, 3], vec![3], vec![3]];
        assert_closures_agree(&adj, 4);
    }

    #[test]
    fn two_tangled_cycles() {
        // {0,1} and {2,3} are SCCs, bridged 1 → 2.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        assert_closures_agree(&adj, 4);
        let rows = transitive_closure(&adj, 4);
        assert_eq!(rows.row_ones(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rows.row_ones(2).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // The iterative Tarjan must survive a recursion-hostile graph.
        let n = 200_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|u| if u + 1 < n { vec![u + 1] } else { vec![] })
            .collect();
        let rows = transitive_closure(&adj, 0);
        assert_eq!(rows.rows(), n);
        assert_eq!(rows.cols(), 0);
    }

    #[test]
    fn pseudo_random_graphs_agree() {
        // Deterministic LCG-driven sparse digraphs of varying density.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 5, 17, 64, 65, 130] {
            for density in [1usize, 3] {
                let adj: Vec<Vec<usize>> = (0..n)
                    .map(|_| {
                        let mut out = Vec::new();
                        for _ in 0..density {
                            if next() % 4 != 0 {
                                out.push((next() as usize) % n);
                            }
                        }
                        out
                    })
                    .collect();
                let labelled = n - (next() as usize) % (n / 2 + 1);
                assert_closures_agree(&adj, labelled);
            }
        }
    }
}
