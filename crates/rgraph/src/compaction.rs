//! Epoch compaction for [`IncrementalAnalysis`]: collapse the
//! recovery-line-dominated prefix of each process history to its boundary
//! intervals and reclaim the interior closure rows.
//!
//! # Why domination makes this sound
//!
//! The watermark of every compaction is a **consistent global
//! checkpoint** (the caller's caps are first descended through
//! [`max_consistent_dominated_into`]
//! (IncrementalAnalysis::max_consistent_dominated_into)). Consistency is
//! exactly the no-orphan property: no message is sent above the watermark
//! and delivered below it. Two structural facts follow.
//!
//! * **Dropped rows are frozen.** Every future R-edge targets a
//!   checkpoint closing a live delivery interval, which consistency
//!   places above the watermark — so checkpoints below the retention
//!   floor can never gain another edge, in or out, and their closure rows
//!   are dead weight. The floor keeps the *boundary* checkpoints alive:
//!   senders of messages whose delivery interval is still unclosed, which
//!   are precisely the nodes a pending Rule 2 edge can still name.
//! * **Dropped reach is summarizable.** A dropped checkpoint can still
//!   head *new* untrackable pairs (its R-paths extend through retained
//!   nodes), but its reach set per process is downward closed along
//!   Rule 1 chains, so one index per (retained node, process) — the
//!   `drop_reach` table — reproduces the exact count of new untrackable
//!   pairs with compacted-away sources, and the exact answers of the
//!   R-graph global-checkpoint oracle below the base.
//!
//! The message table itself is never dropped (records are plain
//! integers, and external message handles must stay stable), which keeps
//! the fixpoint-based consistency oracles exact over the *entire*
//! history. Only the quadratic state — closure and transpose rows, TDV
//! snapshots of delivered messages — is reclaimed.
//!
//! Chain-layer nodes are retained for every message sent strictly above
//! the watermark; interval slots additionally reach down to the earliest
//! in-transit send so late deliveries can still link their send slot.
//! Consistency makes every message of a chain headed above the watermark
//! — and of its doubling siblings — live, so chain queries and the
//! doubling characterizations remain exact for heads above the chain
//! floor (the watermark). Chains headed at or below it are out of the
//! compacted engine's domain, as are rewinds to marks taken before the
//! compaction (a defined [`RewindError`], not a wrong answer).

use super::*;

/// What one [`compact_to`](IncrementalAnalysis::compact_to) call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionStats {
    /// The effective (consistent) watermark of this compaction.
    pub watermark: Vec<u32>,
    /// R-graph closure nodes dropped (rows + transpose rows reclaimed).
    pub dropped_r_nodes: usize,
    /// Zigzag-closure nodes dropped (message nodes and interval slots).
    pub dropped_z_nodes: usize,
    /// Causal-closure nodes dropped (message, spine and delivery nodes).
    pub dropped_c_nodes: usize,
    /// Piggyback TDV snapshot rows reclaimed from delivered messages.
    pub freed_tdv_rows: usize,
    /// Closure nodes resident after the compaction (all three matrices).
    pub resident_nodes: usize,
}

impl CompactionStats {
    /// Total closure nodes dropped by this compaction.
    pub fn dropped_nodes(&self) -> usize {
        self.dropped_r_nodes + self.dropped_z_nodes + self.dropped_c_nodes
    }

    /// Whether the compaction discarded any state (and therefore bumped
    /// the epoch and invalidated earlier [`Mark`]s).
    pub fn discarded_state(&self) -> bool {
        self.dropped_nodes() > 0 || self.freed_tdv_rows > 0
    }
}

/// Rebuilds a closure matrix keeping only the nodes with a remap entry,
/// masking every retained row to the retained columns.
fn rebuild_matrix(mat: &ClosureMatrix, remap: &[u32], new_nodes: usize) -> ClosureMatrix {
    let width = new_nodes.div_ceil(64).max(1).next_power_of_two();
    let mut fwd = vec![0u64; new_nodes * width];
    let mut bwd = vec![0u64; new_nodes * width];
    for (old, &nid) in remap.iter().enumerate() {
        if nid == NONE_U32 {
            continue;
        }
        let nid = nid as usize;
        for (slab, dir) in [(&mut fwd, false), (&mut bwd, true)] {
            for v in ones(mat.row(dir, old)) {
                let nv = remap[v];
                if nv != NONE_U32 {
                    slab[nid * width + nv as usize / 64] |= 1 << (nv % 64);
                }
            }
        }
    }
    ClosureMatrix {
        nodes: new_nodes,
        width,
        fwd,
        bwd,
    }
}

impl IncrementalAnalysis {
    /// Compacts everything dominated by the consistent watermark derived
    /// from `caps`: the effective watermark is
    /// [`max_consistent_dominated`]
    /// (IncrementalAnalysis::max_consistent_dominated) of `caps` joined
    /// with the previous watermark (compaction never moves backwards),
    /// clamped to the taken checkpoints.
    ///
    /// Exact afterwards, over the whole history:
    /// [`untrackable_pairs`](IncrementalAnalysis::untrackable_pairs),
    /// [`rdt_holds`](IncrementalAnalysis::rdt_holds), the consistency
    /// oracles ([`min_consistent_containing`]
    /// (IncrementalAnalysis::min_consistent_containing),
    /// [`max_consistent_containing`]
    /// (IncrementalAnalysis::max_consistent_containing),
    /// [`max_consistent_dominated`]
    /// (IncrementalAnalysis::max_consistent_dominated)), and
    /// [`message_route`](IncrementalAnalysis::message_route). Exact on
    /// the live suffix: [`reaches`](IncrementalAnalysis::reaches) and
    /// [`min_consistent_via_rgraph`]
    /// (IncrementalAnalysis::min_consistent_via_rgraph) for retained
    /// members, chain queries for heads above the chain floor, and
    /// [`with_closed`](IncrementalAnalysis::with_closed) over all of
    /// those. Marks taken before a state-discarding compaction become
    /// invalid: [`try_rewind`](IncrementalAnalysis::try_rewind) reports
    /// [`RewindError::CompactionBoundary`].
    ///
    /// Returns what was reclaimed. When nothing is dominated (or
    /// everything dominated is already compacted) the engine — journal,
    /// marks and epoch included — is untouched and the stats report zero
    /// drops.
    ///
    /// # Panics
    ///
    /// Panics if `caps` has a length other than the process count.
    pub fn compact_to(&mut self, caps: &[u32]) -> CompactionStats {
        assert_eq!(caps.len(), self.n, "caps length");
        let n = self.n;

        // Effective watermark: consistent, monotone, within the pattern.
        let mut w = vec![0u32; n];
        let clamp: Vec<u32> = (0..n)
            .map(|p| caps[p].max(self.watermark[p]).min(self.cp_count[p]))
            .collect();
        self.max_consistent_dominated_into(&clamp, &mut w);

        // Retention floors. `rb[p]`: first R-node kept — no pending
        // Rule 2 edge may name a checkpoint below it. `sf[p]`: first
        // zigzag interval slot kept — in-transit sends pull it below
        // `w[p] + 1` so their future delivery can link its send slot.
        // Chain *nodes* are kept exactly for messages sent strictly
        // above the watermark: consistency then keeps every message of a
        // retained-headed chain (and of its doubling siblings) strictly
        // live, which is what makes live-headed chain queries exact.
        let mut rb = w.clone();
        let mut sf: Vec<u32> = w.iter().map(|&x| x + 1).collect();
        for m in &self.msgs {
            let from = m.from as usize;
            let unclosed_delivery =
                m.deliver_iv == NONE_U32 || m.deliver_iv > self.cp_count[m.to as usize];
            if unclosed_delivery && m.send_iv < rb[from] {
                rb[from] = m.send_iv;
            }
            if m.deliver_iv == NONE_U32 && m.send_iv < sf[from] {
                sf[from] = m.send_iv;
            }
        }
        for p in 0..n {
            debug_assert!(rb[p] >= self.cp_base[p], "retention floor went backwards");
            debug_assert!(w[p] >= self.chain_floor[p], "chain floor went backwards");
        }

        // ---- retained-node remaps --------------------------------------
        let r_remap: Vec<u32> = {
            let mut next = 0u32;
            self.r_meta
                .iter()
                .map(|&(p, idx)| {
                    if idx >= rb[p as usize] {
                        next += 1;
                        next - 1
                    } else {
                        NONE_U32
                    }
                })
                .collect()
        };
        let new_r_nodes = self.rmat.nodes - r_remap.iter().filter(|&&x| x == NONE_U32).count();

        let new_slot_base: Vec<u32> = (0..n)
            .map(|p| sf[p].min(self.slot_base[p] + self.z_slots[p].len() as u32))
            .collect();
        let mut keep_z = vec![false; self.zmat.nodes];
        for (p, slots) in self.z_slots.iter().enumerate().take(n) {
            for (k, &s) in slots.iter().enumerate() {
                if self.slot_base[p] + k as u32 >= new_slot_base[p] {
                    keep_z[s as usize] = true;
                }
            }
        }
        let chain_kept = |m: &MsgRec| m.send_iv > w[m.from as usize];
        for m in &self.msgs {
            if m.znode != NONE_U32 && chain_kept(m) {
                keep_z[m.znode as usize] = true;
            }
        }

        let mut keep_c = vec![false; self.cmat.nodes];
        for m in &self.msgs {
            if m.cnode != NONE_U32 && chain_kept(m) {
                keep_c[m.cnode as usize] = true;
            }
            // In-transit messages link their spine to the delivery node
            // when they eventually arrive.
            if m.deliver_iv == NONE_U32 && m.spine != NONE_U32 {
                keep_c[m.spine as usize] = true;
            }
        }
        for p in 0..n {
            // The next send of `p` chains from the last spine and links
            // every still-unlinked delivery.
            if let Some(&last) = self.c_spine[p].last() {
                keep_c[last as usize] = true;
            }
            for &cn in &self.c_delivs[p][self.c_linked[p] as usize..] {
                keep_c[cn as usize] = true;
            }
        }

        let to_remap = |keep: &[bool]| {
            let mut next = 0u32;
            keep.iter()
                .map(|&k| {
                    if k {
                        next += 1;
                        next - 1
                    } else {
                        NONE_U32
                    }
                })
                .collect::<Vec<u32>>()
        };
        let z_remap = to_remap(&keep_z);
        let c_remap = to_remap(&keep_c);
        let new_z_nodes = keep_z.iter().filter(|&&k| k).count();
        let new_c_nodes = keep_c.iter().filter(|&&k| k).count();

        let freed_tdv_rows = self.msg_tdv.len() / n
            - self
                .msgs
                .iter()
                .filter(|m| m.deliver_iv == NONE_U32)
                .count();

        let stats = CompactionStats {
            watermark: w.clone(),
            dropped_r_nodes: self.rmat.nodes - new_r_nodes,
            dropped_z_nodes: self.zmat.nodes - new_z_nodes,
            dropped_c_nodes: self.cmat.nodes - new_c_nodes,
            freed_tdv_rows,
            resident_nodes: new_r_nodes + new_z_nodes + new_c_nodes,
        };
        if !stats.discarded_state() {
            // Nothing to reclaim: leave journal and marks valid.
            self.watermark = w;
            return stats;
        }

        // ---- dropped-reach summaries (before the rows disappear) -------
        let had_dr = !self.drop_reach.is_empty();
        let mut new_dr = vec![NONE_U32; new_r_nodes * n];
        for (old, &nid) in r_remap.iter().enumerate() {
            if nid != NONE_U32 && had_dr {
                let (src, dst) = (old * n, nid as usize * n);
                new_dr[dst..dst + n].copy_from_slice(&self.drop_reach[src..src + n]);
            }
        }
        for old in 0..self.rmat.nodes {
            if r_remap[old] != NONE_U32 {
                continue;
            }
            let (p, idx) = self.r_meta[old];
            for y in ones(self.rmat.row(false, old)) {
                let ny = r_remap[y];
                if ny == NONE_U32 {
                    continue;
                }
                let row = ny as usize * n;
                let slot = &mut new_dr[row + p as usize];
                if *slot == NONE_U32 || idx > *slot {
                    *slot = idx;
                }
                if had_dr {
                    // Checkpoints dropped by *earlier* compactions that
                    // reached this node keep reaching its successors.
                    for k in 0..n {
                        let d = self.drop_reach[old * n + k];
                        let slot = &mut new_dr[row + k];
                        if d != NONE_U32 && (*slot == NONE_U32 || d > *slot) {
                            *slot = d;
                        }
                    }
                }
            }
        }

        // ---- rebuild ---------------------------------------------------
        self.rmat = rebuild_matrix(&self.rmat, &r_remap, new_r_nodes);
        self.zmat = rebuild_matrix(&self.zmat, &z_remap, new_z_nodes);
        self.cmat = rebuild_matrix(&self.cmat, &c_remap, new_c_nodes);
        self.drop_reach = new_dr;

        let mut new_meta = Vec::with_capacity(new_r_nodes);
        let mut new_cp_tdv = Vec::with_capacity(new_r_nodes * n);
        for (old, &nid) in r_remap.iter().enumerate() {
            if nid == NONE_U32 {
                continue;
            }
            debug_assert_eq!(new_meta.len(), nid as usize, "remap preserves order");
            new_meta.push(self.r_meta[old]);
            new_cp_tdv.extend_from_slice(&self.cp_tdv[old * n..(old + 1) * n]);
        }
        self.r_meta = new_meta;
        self.cp_tdv = new_cp_tdv;

        for p in 0..n {
            let skip = (rb[p] - self.cp_base[p]) as usize;
            self.cp_nodes[p] = self.cp_nodes[p][skip..]
                .iter()
                .map(|&node| r_remap[node as usize])
                .collect();
            let skip = (new_slot_base[p] - self.slot_base[p]) as usize;
            self.z_slots[p] = self.z_slots[p][skip.min(self.z_slots[p].len())..]
                .iter()
                .map(|&s| z_remap[s as usize])
                .collect();
            self.c_spine[p] = self.c_spine[p]
                .last()
                .map(|&s| c_remap[s as usize])
                .into_iter()
                .collect();
            self.c_delivs[p] = self.c_delivs[p][self.c_linked[p] as usize..]
                .iter()
                .map(|&cn| c_remap[cn as usize])
                .collect();
            self.c_linked[p] = 0;
        }
        self.cp_base = rb;
        self.slot_base = new_slot_base;
        self.chain_floor = w.clone();

        let mut new_msg_tdv = Vec::new();
        for m in &mut self.msgs {
            if m.deliver_iv == NONE_U32 {
                let src = m.tdv_row as usize * n;
                let row = (new_msg_tdv.len() / n) as u32;
                new_msg_tdv.extend_from_slice(&self.msg_tdv[src..src + n]);
                m.tdv_row = row;
                m.spine = c_remap[m.spine as usize];
                debug_assert!(m.spine != NONE_U32, "in-transit spine retained");
            } else {
                m.tdv_row = NONE_U32;
                m.znode = if m.znode == NONE_U32 {
                    NONE_U32
                } else {
                    z_remap[m.znode as usize]
                };
                m.cnode = if m.cnode == NONE_U32 {
                    NONE_U32
                } else {
                    c_remap[m.cnode as usize]
                };
                m.spine = if m.spine == NONE_U32 {
                    NONE_U32
                } else {
                    c_remap[m.spine as usize]
                };
            }
        }
        self.msg_tdv = new_msg_tdv;

        // The journal below this point is gone; marks from earlier
        // epochs fail with a defined error instead of corrupting state.
        self.journal.clear();
        self.epoch += 1;
        self.watermark = w;
        self.compactions += 1;
        self.reclaimed_rows += stats.dropped_nodes() as u64;
        stats
    }

    /// Compacts to the engine's own recovery line: the greatest
    /// consistent global checkpoint of the current pattern
    /// ([`compact_to`](IncrementalAnalysis::compact_to) with the last
    /// checkpoint of every process as caps).
    pub fn compact_to_recovery_line(&mut self) -> CompactionStats {
        let caps = self.cp_count.clone();
        self.compact_to(&caps)
    }

    // ---------------------------------------------- compaction stats ----

    /// The compaction epoch: 0 until the first state-discarding
    /// compaction, bumped by each one. [`Mark`]s carry the epoch they
    /// were taken in.
    pub fn compaction_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of state-discarding compactions so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total closure rows reclaimed across all compactions.
    pub fn reclaimed_rows(&self) -> u64 {
        self.reclaimed_rows
    }

    /// Closure nodes currently resident across the three matrices — the
    /// quadratic part of the engine's footprint.
    pub fn resident_closure_nodes(&self) -> usize {
        self.rmat.nodes + self.zmat.nodes + self.cmat.nodes
    }

    /// The consistent watermark of the last compaction (all zeros before
    /// the first).
    pub fn compaction_watermark(&self) -> &[u32] {
        &self.watermark
    }

    /// Per-process chain-layer retention floor: chain queries are exact
    /// for heads in intervals strictly above it.
    pub fn chain_floors(&self) -> &[u32] {
        &self.chain_floor
    }

    /// First retained checkpoint index per process ([`reaches`]
    /// (IncrementalAnalysis::reaches) and R-graph oracles accept members
    /// at or above it).
    pub fn retained_from(&self) -> &[u32] {
        &self.cp_base
    }
}
