//! Incremental pattern analysis: the append-only twin of
//! [`PatternAnalysis`](crate::PatternAnalysis).
//!
//! Where the batch pipeline rebuilds the R-graph, the zigzag/causal chain
//! closures, and the replayed dependency vectors from scratch for every
//! (prefix of a) pattern, [`IncrementalAnalysis`] maintains all of them
//! *online* under three events:
//!
//! * [`append_send`](IncrementalAnalysis::append_send) — a message leaves
//!   its sender (snapshots the piggybacked `TDV`, extends the causal send
//!   spine);
//! * [`append_deliver`](IncrementalAnalysis::append_deliver) — a message
//!   arrives (merges the piggyback, inserts the message into both chain
//!   closures);
//! * [`append_checkpoint`](IncrementalAnalysis::append_checkpoint) — a
//!   local checkpooint is taken (new R-graph node, Rule 1 and all now
//!   completable Rule 2 edges, `TDV` snapshot).
//!
//! # Data structures
//!
//! Each of the three reachability relations (R-graph over checkpoints,
//! zigzag chains and causal chains over delivered messages) is held as a
//! square bit matrix together with its transpose, updated by the classic
//! incremental-transitive-closure rule (Italiano): inserting an edge
//! `u → v` that is not already implied unions `succ(v)` into the forward
//! row of every predecessor of `u` and `pred(u)` into the backward row of
//! every successor of `v` — only the *affected* (dirty) rows are touched,
//! word-parallel, and rows never lose bits while appending. The chain
//! graphs are the same compressed O(M + C) constructions the batch
//! [`ZigzagReachability`](crate::ZigzagReachability) uses (per-interval
//! slot spines for zigzag links, per-process send spines for causal
//! links), so closure work stays proportional to new reachability, not to
//! the O(M²) direct link count.
//!
//! RDT itself is counted online: a reachable checkpoint pair becomes
//! untrackable the moment its closure bit first appears, and the verdict
//! never changes afterwards — the destination's dependency vector is
//! snapshotted when the checkpoint is appended, before any R-path can
//! reach it. [`untrackable_pairs`](IncrementalAnalysis::untrackable_pairs)
//! is therefore a running violation counter, updated per new closure bit.
//!
//! # Mark / rewind
//!
//! Every mutation is recorded in an undo journal; [`mark`]
//! (IncrementalAnalysis::mark) captures the journal length and
//! [`rewind`](IncrementalAnalysis::rewind) plays it backwards, restoring
//! the engine to the marked state bit for bit. This is what makes
//! prefix-sharing replay cheap: a verifier can keep one engine per
//! protocol, rewind to the longest common prefix with the next schedule,
//! and append only the suffix. [`with_closed`]
//! (IncrementalAnalysis::with_closed) uses the same machinery to answer
//! queries about the *closed* extension of the current pattern (the
//! paper's convention) and back the closing checkpoints out again.

use rdt_causality::{CheckpointId, ProcessId};

use crate::consistency::GlobalCheckpoint;

#[path = "compaction.rs"]
mod compaction;
pub use compaction::CompactionStats;

#[path = "snapshot.rs"]
mod snapshot;
pub use snapshot::{SnapshotError, SNAPSHOT_FORMAT, SNAPSHOT_VERSION};

const NONE_U32: u32 = u32::MAX;

/// Stack words for closure-row scratch masks (spills to heap above
/// `64 * MASK_STACK_WORDS` closure nodes).
const MASK_STACK_WORDS: usize = 8;

/// Stack entries for global-checkpoint scratch vectors (spills to heap
/// above this many processes).
const GC_STACK_ENTRIES: usize = 16;

/// Matrix selectors for the undo journal (`md = mat * 2 + direction`).
const MAT_R: u8 = 0;
const MAT_Z: u8 = 1;
const MAT_C: u8 = 2;

/// A position in the undo journal, as returned by
/// [`IncrementalAnalysis::mark`]. Rewinding to a mark restores the engine
/// to exactly the state it had when the mark was taken.
///
/// Marks are tagged with the engine's *compaction epoch*: a mark taken
/// before a [`compact_to`](IncrementalAnalysis::compact_to) cannot be
/// rewound to afterwards — the journal below the compaction point is gone
/// — and [`try_rewind`](IncrementalAnalysis::try_rewind) reports that as
/// [`RewindError::CompactionBoundary`] instead of corrupting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Mark {
    epoch: u64,
    pos: usize,
}

/// Why a [`try_rewind`](IncrementalAnalysis::try_rewind) was refused. The
/// engine state is untouched when a rewind fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewindError {
    /// The mark predates a compaction: the journal below the compaction
    /// point was discarded, so the marked state no longer exists.
    CompactionBoundary {
        /// Epoch the mark was taken in.
        mark_epoch: u64,
        /// The engine's current compaction epoch.
        engine_epoch: u64,
    },
    /// The mark is ahead of the journal — it was taken on a state that
    /// has itself been rewound away.
    AheadOfJournal,
}

impl std::fmt::Display for RewindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewindError::CompactionBoundary {
                mark_epoch,
                engine_epoch,
            } => write!(
                f,
                "mark from compaction epoch {mark_epoch} cannot be rewound to \
                 in epoch {engine_epoch}: the journal below the compaction \
                 point was discarded"
            ),
            RewindError::AheadOfJournal => {
                write!(f, "mark is ahead of the journal")
            }
        }
    }
}

impl std::error::Error for RewindError {}

/// Why a `try_append_*` call was refused. The engine state is untouched
/// when an append fails, so a rejected event from an untrusted stream
/// cannot corrupt the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendError {
    /// The named process index is not `< n`.
    ProcessOutOfRange {
        /// The offending process index.
        process: usize,
        /// The engine's process count.
        n: usize,
    },
    /// The message handle was never returned by an append of a send.
    UnknownMessage {
        /// The offending message handle.
        mid: u32,
    },
    /// The message was already delivered once.
    AlreadyDelivered {
        /// The offending message handle.
        mid: u32,
    },
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::ProcessOutOfRange { process, n } => {
                write!(f, "process {process} out of range (engine has {n})")
            }
            AppendError::UnknownMessage { mid } => {
                write!(f, "message {mid} was never sent")
            }
            AppendError::AlreadyDelivered { mid } => {
                write!(f, "message {mid} already delivered")
            }
        }
    }
}

impl std::error::Error for AppendError {}

/// One reversible mutation; the journal is replayed backwards on rewind.
#[derive(Debug, Clone, Copy)]
enum Undo {
    /// A closure-matrix word changed (`md = mat * 2 + dir`, dir 1 = bwd).
    Word {
        md: u8,
        row: u32,
        word: u32,
        old: u64,
    },
    /// A node was pushed onto matrix `mat`.
    Node {
        mat: u8,
    },
    CpCount {
        p: u32,
        old: u32,
    },
    LineOpen {
        p: u32,
        old: bool,
    },
    Untrackable {
        old: u64,
    },
    CurTdv {
        slot: u32,
        old: u32,
    },
    MsgPushed,
    MsgTdvPushed,
    CpTdvPushed,
    RMetaPushed,
    CpNodePushed {
        p: u32,
    },
    ZSlotPushed {
        p: u32,
    },
    CSpinePushed {
        p: u32,
    },
    CDelivPushed {
        p: u32,
    },
    CLinked {
        p: u32,
        old: u32,
    },
    SendEvPushed {
        p: u32,
    },
    DeliverEvPushed {
        p: u32,
    },
    MsgDelivered {
        mid: u32,
    },
    /// A `drop_reach` entry changed (only after the first compaction).
    DropReach {
        slot: u32,
        old: u32,
    },
    /// A `drop_reach` row was pushed (only after the first compaction).
    DropReachPushed,
}

/// Per-message record (columns of a struct-of-arrays kept together; the
/// deliver-side fields stay [`NONE_U32`] while the message is in transit).
#[derive(Debug, Clone, Copy)]
struct MsgRec {
    from: u32,
    to: u32,
    send_iv: u32,
    deliver_iv: u32,
    /// Node of this message in the zigzag closure (set at delivery;
    /// [`NONE_U32`] again once compaction drops the node).
    znode: u32,
    /// Node of this message in the causal closure (set at delivery;
    /// [`NONE_U32`] again once compaction drops the node).
    cnode: u32,
    /// Causal send-spine node allocated for this send ([`NONE_U32`] once
    /// compaction drops it — only possible after delivery).
    spine: u32,
    /// Row of this message's piggyback snapshot in `msg_tdv`
    /// ([`NONE_U32`] once compaction reclaims the row — only possible
    /// after delivery).
    tdv_row: u32,
}

/// Scratch buffers for edge insertion (reused across insertions).
#[derive(Debug, Default)]
struct EdgeScratch {
    succ: Vec<u64>,
    pred: Vec<u64>,
    /// New forward closure bits `(row, col)` of the last insertion, only
    /// collected when the caller asked for them.
    pairs: Vec<(u32, u32)>,
}

/// A growable square reachability matrix with its transpose twin.
///
/// `fwd[u]` holds the successors of `u` (reflexively), `bwd[v]` the
/// predecessors of `v`; both are row slabs of `width` words. Rows only
/// ever gain bits while appending; every word change is journaled so the
/// matrix can be rewound.
#[derive(Debug, Clone)]
struct ClosureMatrix {
    nodes: usize,
    width: usize,
    fwd: Vec<u64>,
    bwd: Vec<u64>,
}

/// Iterates the set bit positions of a word slice.
fn ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        std::iter::successors((w != 0).then_some(w), |&rest| {
            let next = rest & (rest - 1);
            (next != 0).then_some(next)
        })
        .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
    })
}

fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

impl ClosureMatrix {
    fn new() -> Self {
        ClosureMatrix {
            nodes: 0,
            width: 1,
            fwd: Vec::new(),
            bwd: Vec::new(),
        }
    }

    fn bit(&self, bwd: bool, u: usize, v: usize) -> bool {
        let words = if bwd { &self.bwd } else { &self.fwd };
        words[u * self.width + v / 64] >> (v % 64) & 1 != 0
    }

    fn row(&self, bwd: bool, u: usize) -> &[u64] {
        let words = if bwd { &self.bwd } else { &self.fwd };
        &words[u * self.width..(u + 1) * self.width]
    }

    /// Appends a fresh node with only its reflexive bit set. The caller
    /// journals the push (`Undo::Node`).
    fn push_node(&mut self) -> usize {
        if self.nodes == self.width * 64 {
            self.grow();
        }
        let id = self.nodes;
        self.nodes += 1;
        self.fwd.resize(self.nodes * self.width, 0);
        self.bwd.resize(self.nodes * self.width, 0);
        self.fwd[id * self.width + id / 64] |= 1 << (id % 64);
        self.bwd[id * self.width + id / 64] |= 1 << (id % 64);
        id
    }

    /// Removes the most recently pushed node (rewind path). Closure bits
    /// referring to it in surviving rows have already been undone through
    /// `Undo::Word` entries, which are newer than the node's push.
    fn pop_node(&mut self) {
        self.nodes -= 1;
        self.fwd.truncate(self.nodes * self.width);
        self.bwd.truncate(self.nodes * self.width);
    }

    /// Doubles the words-per-row. Journaled `(row, word)` addresses refer
    /// to logical positions, which relayout preserves.
    fn grow(&mut self) {
        let old_w = self.width;
        let new_w = old_w * 2;
        for slab in [&mut self.fwd, &mut self.bwd] {
            let mut wide = vec![0u64; self.nodes * new_w];
            for r in 0..self.nodes {
                wide[r * new_w..r * new_w + old_w]
                    .copy_from_slice(&slab[r * old_w..(r + 1) * old_w]);
            }
            *slab = wide;
        }
        self.width = new_w;
    }

    /// Incremental transitive-closure edge insertion (Italiano): if
    /// `u → v` is not already implied, every predecessor of `u` gains the
    /// successor set of `v` and every successor of `v` gains the
    /// predecessor set of `u` — word-parallel unions over exactly the
    /// affected rows, each changed word journaled. When `collect` is set,
    /// the new forward bits are reported in `scratch.pairs`.
    fn insert_edge(
        &mut self,
        mat_id: u8,
        journal: &mut Vec<Undo>,
        scratch: &mut EdgeScratch,
        collect: bool,
        u: usize,
        v: usize,
    ) {
        scratch.pairs.clear();
        if self.bit(false, u, v) {
            return;
        }
        let w = self.width;
        let EdgeScratch { succ, pred, pairs } = scratch;
        succ.clear();
        succ.extend_from_slice(&self.fwd[v * w..(v + 1) * w]);
        succ[v / 64] |= 1 << (v % 64);
        pred.clear();
        pred.extend_from_slice(&self.bwd[u * w..(u + 1) * w]);
        pred[u / 64] |= 1 << (u % 64);

        for x in ones(pred) {
            let base = x * w;
            for (wi, &add) in succ.iter().enumerate() {
                let old = self.fwd[base + wi];
                let fresh = add & !old;
                if fresh != 0 {
                    journal.push(Undo::Word {
                        md: mat_id * 2,
                        row: x as u32,
                        word: wi as u32,
                        old,
                    });
                    if collect {
                        let mut d = fresh;
                        while d != 0 {
                            pairs.push((x as u32, (wi * 64) as u32 + d.trailing_zeros()));
                            d &= d - 1;
                        }
                    }
                    self.fwd[base + wi] = old | add;
                }
            }
        }
        for y in ones(succ) {
            let base = y * w;
            for (wi, &add) in pred.iter().enumerate() {
                let old = self.bwd[base + wi];
                if add & !old != 0 {
                    journal.push(Undo::Word {
                        md: mat_id * 2 + 1,
                        row: y as u32,
                        word: wi as u32,
                        old,
                    });
                    self.bwd[base + wi] = old | add;
                }
            }
        }
    }

    fn total_ones_fwd(&self) -> usize {
        self.fwd.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Append-only analysis of a growing checkpoint & communication pattern,
/// with journal-based [`mark`](IncrementalAnalysis::mark) /
/// [`rewind`](IncrementalAnalysis::rewind).
///
/// Maintains, per appended event, exactly the artifacts the batch
/// [`PatternAnalysis`](crate::PatternAnalysis) derives from scratch: the
/// R-graph transitive closure, the zigzag and causal chain closures, the
/// replayed transitive dependency vectors, and a running count of
/// untrackable R-paths. Every query answers identically to the batch
/// pipeline on the same pattern (the differential test-suite holds the
/// two against each other after every append).
///
/// Queries that the paper defines on *closed* patterns (the RDT verdict,
/// the chain-doubling characterizations, consistent-global-checkpoint
/// computations) should be asked through
/// [`with_closed`](IncrementalAnalysis::with_closed), which temporarily
/// appends the closing checkpoints exactly like
/// [`Pattern::to_closed`](crate::Pattern::to_closed).
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_rgraph::IncrementalAnalysis;
///
/// let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
/// let mut incr = IncrementalAnalysis::new(2);
/// let m = incr.append_send(p0, p1);
/// incr.append_deliver(m);
/// assert!(incr.with_closed(|view| view.rdt_holds()));
///
/// // Branch out, then back out of it.
/// let mark = incr.mark();
/// incr.append_checkpoint(p1);
/// incr.rewind(mark);
/// assert_eq!(incr.last_checkpoint_index(p1), 0);
/// ```
#[derive(Debug)]
pub struct IncrementalAnalysis {
    n: usize,
    journal: Vec<Undo>,
    /// Total events ever appended (monotone work counter; not rewound).
    events: usize,
    /// Running count of reachable-but-untrackable checkpoint pairs.
    untrackable: u64,
    /// Explicit checkpoints taken so far per process (== index of the last
    /// checkpoint; the implicit initial checkpoint is index 0).
    cp_count: Vec<u32>,
    /// Whether the process line is non-empty and does not end in a
    /// checkpoint (i.e. closing would append one).
    line_open: Vec<bool>,
    msgs: Vec<MsgRec>,
    /// Running `TDV` per process, flattened (`n × n`).
    cur_tdv: Vec<u32>,
    /// Per-send piggyback snapshot (`n` entries per message).
    msg_tdv: Vec<u32>,
    /// Per-R-node `TDV` snapshot at checkpoint time (`n` entries each).
    cp_tdv: Vec<u32>,
    rmat: ClosureMatrix,
    /// Per R-node `(process, checkpoint index)`.
    r_meta: Vec<(u32, u32)>,
    /// R-node of `C_{p,x}` (indexed by `x`).
    cp_nodes: Vec<Vec<u32>>,
    zmat: ClosureMatrix,
    /// Zigzag interval-slot nodes per process, dense from interval 0.
    z_slots: Vec<Vec<u32>>,
    cmat: ClosureMatrix,
    /// Causal send-spine nodes per process, in send order.
    c_spine: Vec<Vec<u32>>,
    /// Causal nodes of messages delivered at each process, delivery order.
    c_delivs: Vec<Vec<u32>>,
    /// How many of `c_delivs[p]` are already linked to a later send spine.
    c_linked: Vec<u32>,
    /// `(interval, message)` per send, per process, chronological (and so
    /// sorted by interval).
    send_events: Vec<Vec<(u32, u32)>>,
    /// `(interval, message)` per delivery, per process, chronological.
    deliver_events: Vec<Vec<(u32, u32)>>,
    scratch: EdgeScratch,

    // ---- compaction state (see `compaction.rs`) ----
    /// Compaction epoch: bumped whenever `compact_to` discards state, so
    /// stale [`Mark`]s are detected instead of misapplied.
    pub(crate) epoch: u64,
    /// Per-process consistent watermark of the last compaction (all
    /// zeros before the first). Monotone componentwise.
    pub(crate) watermark: Vec<u32>,
    /// First retained checkpoint index per process: `cp_nodes[p][k]` is
    /// the R-node of `C_{p, cp_base[p] + k}`.
    pub(crate) cp_base: Vec<u32>,
    /// First retained zigzag interval slot per process: `z_slots[p][k]`
    /// is the slot of interval `slot_base[p] + k`.
    pub(crate) slot_base: Vec<u32>,
    /// Chain-layer retention floor per process: messages sent in an
    /// interval `≤ chain_floor[p]` had their zigzag/causal closure nodes
    /// dropped; chain queries headed at or below the floor are out of the
    /// compacted engine's exact domain.
    pub(crate) chain_floor: Vec<u32>,
    /// Per retained R-node and process `p`, the largest index of a
    /// *dropped* checkpoint of `p` with an R-path to the node
    /// ([`NONE_U32`] = none). Dropped reach sets are downward closed per
    /// process (Rule 1 chains), so one index summarizes the whole set;
    /// empty until the first compaction drops an R-node.
    pub(crate) drop_reach: Vec<u32>,
    /// Number of compactions that discarded state (epoch bumps).
    pub(crate) compactions: u64,
    /// Total closure rows (R + zigzag + causal nodes) reclaimed across
    /// all compactions.
    pub(crate) reclaimed_rows: u64,
}

impl IncrementalAnalysis {
    /// Creates the empty engine for `n` processes: every process has its
    /// implicit initial checkpoint `C_{i,0}` and an all-zero dependency
    /// snapshot, exactly like an empty [`Pattern`](crate::Pattern).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        let mut rmat = ClosureMatrix::new();
        let mut r_meta = Vec::with_capacity(n);
        let mut cp_nodes = Vec::with_capacity(n);
        let mut cp_tdv = vec![0u32; 0];
        let mut cur_tdv = vec![0u32; n * n];
        for i in 0..n {
            let node = rmat.push_node();
            r_meta.push((i as u32, 0));
            cp_nodes.push(vec![node as u32]);
            cp_tdv.extend(std::iter::repeat_n(0, n));
            cur_tdv[i * n + i] = 1;
        }
        IncrementalAnalysis {
            n,
            journal: Vec::new(),
            events: 0,
            untrackable: 0,
            cp_count: vec![0; n],
            line_open: vec![false; n],
            msgs: Vec::new(),
            cur_tdv,
            msg_tdv: Vec::new(),
            cp_tdv,
            rmat,
            r_meta,
            cp_nodes,
            zmat: ClosureMatrix::new(),
            z_slots: vec![Vec::new(); n],
            cmat: ClosureMatrix::new(),
            c_spine: vec![Vec::new(); n],
            c_delivs: vec![Vec::new(); n],
            c_linked: vec![0; n],
            send_events: vec![Vec::new(); n],
            deliver_events: vec![Vec::new(); n],
            scratch: EdgeScratch::default(),
            epoch: 0,
            watermark: vec![0; n],
            cp_base: vec![0; n],
            slot_base: vec![0; n],
            chain_floor: vec![0; n],
            drop_reach: Vec::new(),
            compactions: 0,
            reclaimed_rows: 0,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Index of the last checkpoint of `process` (0 = only the initial).
    pub fn last_checkpoint_index(&self, process: ProcessId) -> u32 {
        self.cp_count[process.index()]
    }

    /// Whether `checkpoint` exists in the current pattern.
    pub fn checkpoint_exists(&self, checkpoint: CheckpointId) -> bool {
        checkpoint.process.index() < self.n
            && checkpoint.index <= self.cp_count[checkpoint.process.index()]
    }

    /// Number of messages appended (delivered or in transit).
    pub fn num_messages(&self) -> usize {
        self.msgs.len()
    }

    /// Whether message `mid` has been delivered.
    pub fn message_delivered(&self, mid: u32) -> bool {
        self.msgs[mid as usize].deliver_iv != NONE_U32
    }

    /// Total events ever appended, monotone across rewinds — a work
    /// counter for throughput reporting, not part of the rewindable state.
    pub fn events_appended(&self) -> usize {
        self.events
    }

    // ------------------------------------------------------- appends ----

    /// Appends a local checkpoint of `process` and returns its id.
    ///
    /// Creates the R-graph node (with its `TDV` snapshot taken *before*
    /// the owner entry increments, matching the offline replayer), the
    /// Rule 1 edge from the previous checkpoint, and every Rule 2 message
    /// edge that this checkpoint completes — an edge `C_{i,x} → C_{j,y}`
    /// materializes exactly when the later of the two closing checkpoints
    /// appears.
    pub fn append_checkpoint(&mut self, process: ProcessId) -> CheckpointId {
        match self.try_append_checkpoint(process) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`append_checkpoint`](IncrementalAnalysis::append_checkpoint):
    /// rejects an out-of-range process with [`AppendError`] instead of
    /// panicking, leaving the engine untouched. This is the entry point
    /// for untrusted event streams.
    pub fn try_append_checkpoint(
        &mut self,
        process: ProcessId,
    ) -> Result<CheckpointId, AppendError> {
        let pi = process.index();
        if pi >= self.n {
            return Err(AppendError::ProcessOutOfRange {
                process: pi,
                n: self.n,
            });
        }
        let closing = self.cp_count[pi] + 1;
        self.journal.push(Undo::CpCount {
            p: pi as u32,
            old: self.cp_count[pi],
        });
        self.cp_count[pi] = closing;
        self.set_line_open(pi, false);

        let node = self.rmat.push_node();
        self.journal.push(Undo::Node { mat: MAT_R });
        self.r_meta.push((pi as u32, closing));
        self.journal.push(Undo::RMetaPushed);
        let base = pi * self.n;
        for k in 0..self.n {
            self.cp_tdv.push(self.cur_tdv[base + k]);
        }
        self.journal.push(Undo::CpTdvPushed);
        self.cp_nodes[pi].push(node as u32);
        self.journal.push(Undo::CpNodePushed { p: pi as u32 });
        if !self.drop_reach.is_empty() {
            self.drop_reach
                .extend(std::iter::repeat_n(NONE_U32, self.n));
            self.journal.push(Undo::DropReachPushed);
        }
        let slot = base + pi;
        self.journal.push(Undo::CurTdv {
            slot: slot as u32,
            old: self.cur_tdv[slot],
        });
        self.cur_tdv[slot] += 1;

        // Rule 1: C_{p, closing-1} -> C_{p, closing}.
        let prev = self.cp_nodes[pi][(closing - 1 - self.cp_base[pi]) as usize] as usize;
        self.insert_r_edge(prev, node);

        // Rule 2, sender side: messages sent by `p` in the interval this
        // checkpoint closes, whose delivery interval is already closed.
        // (Compaction keeps every checkpoint node a pending Rule 2 edge
        // can still name, so the base-offset lookups cannot underflow.)
        let lo = self.send_events[pi].partition_point(|&(iv, _)| iv < closing);
        for i in lo..self.send_events[pi].len() {
            let (_, mid) = self.send_events[pi][i];
            let m = self.msgs[mid as usize];
            if m.deliver_iv != NONE_U32 && m.deliver_iv <= self.cp_count[m.to as usize] {
                let ti = m.to as usize;
                let tgt = self.cp_nodes[ti][(m.deliver_iv - self.cp_base[ti]) as usize] as usize;
                self.insert_r_edge(node, tgt);
            }
        }
        // Rule 2, receiver side: messages delivered at `p` in this
        // interval whose send interval is already closed.
        let lo = self.deliver_events[pi].partition_point(|&(iv, _)| iv < closing);
        for i in lo..self.deliver_events[pi].len() {
            let (_, mid) = self.deliver_events[pi][i];
            let m = self.msgs[mid as usize];
            if m.send_iv <= self.cp_count[m.from as usize] {
                let fi = m.from as usize;
                let src = self.cp_nodes[fi][(m.send_iv - self.cp_base[fi]) as usize] as usize;
                self.insert_r_edge(src, node);
            }
        }
        self.events += 1;
        Ok(CheckpointId::new(process, closing))
    }

    /// Appends a send event and returns the engine's message handle.
    ///
    /// Handles are assigned sequentially in send order — the same
    /// numbering [`PatternBuilder::send`](crate::PatternBuilder::send)
    /// uses when events are appended in the same order.
    pub fn append_send(&mut self, from: ProcessId, to: ProcessId) -> u32 {
        match self.try_append_send(from, to) {
            Ok(mid) => mid,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`append_send`](IncrementalAnalysis::append_send): rejects
    /// out-of-range endpoints with [`AppendError`] instead of panicking,
    /// leaving the engine untouched.
    pub fn try_append_send(&mut self, from: ProcessId, to: ProcessId) -> Result<u32, AppendError> {
        let fi = from.index();
        let ti = to.index();
        if fi >= self.n {
            return Err(AppendError::ProcessOutOfRange {
                process: fi,
                n: self.n,
            });
        }
        if ti >= self.n {
            return Err(AppendError::ProcessOutOfRange {
                process: ti,
                n: self.n,
            });
        }
        let mid = self.msgs.len() as u32;
        let iv = self.cp_count[fi] + 1;

        let base = fi * self.n;
        let tdv_row = (self.msg_tdv.len() / self.n) as u32;
        let row = &self.cur_tdv[base..base + self.n];
        self.msg_tdv.extend_from_slice(row);
        self.journal.push(Undo::MsgTdvPushed);

        // Causal send spine: chain from the previous send of `from`, and
        // link every delivery at `from` that happened since.
        let spine = self.cmat.push_node() as u32;
        self.journal.push(Undo::Node { mat: MAT_C });
        if let Some(&prev) = self.c_spine[fi].last() {
            self.insert_c_edge(prev as usize, spine as usize);
        }
        self.c_spine[fi].push(spine);
        self.journal.push(Undo::CSpinePushed { p: fi as u32 });
        let linked = self.c_linked[fi] as usize;
        let total = self.c_delivs[fi].len();
        if linked < total {
            self.journal.push(Undo::CLinked {
                p: fi as u32,
                old: self.c_linked[fi],
            });
            self.c_linked[fi] = total as u32;
            for i in linked..total {
                let cn = self.c_delivs[fi][i] as usize;
                self.insert_c_edge(cn, spine as usize);
            }
        }

        self.send_events[fi].push((iv, mid));
        self.journal.push(Undo::SendEvPushed { p: fi as u32 });
        self.msgs.push(MsgRec {
            from: fi as u32,
            to: ti as u32,
            send_iv: iv,
            deliver_iv: NONE_U32,
            znode: NONE_U32,
            cnode: NONE_U32,
            spine,
            tdv_row,
        });
        self.journal.push(Undo::MsgPushed);
        self.set_line_open(fi, true);
        self.events += 1;
        Ok(mid)
    }

    /// Appends the delivery of message `mid` (as returned by
    /// [`append_send`](IncrementalAnalysis::append_send)).
    ///
    /// # Panics
    ///
    /// Panics if the message does not exist or was already delivered.
    pub fn append_deliver(&mut self, mid: u32) {
        if let Err(e) = self.try_append_deliver(mid) {
            panic!("{e}");
        }
    }

    /// Fallible [`append_deliver`](IncrementalAnalysis::append_deliver):
    /// rejects an unknown handle (deliver-before-send) or a duplicate
    /// delivery with [`AppendError`] instead of panicking, leaving the
    /// engine untouched.
    pub fn try_append_deliver(&mut self, mid: u32) -> Result<(), AppendError> {
        let m = match self.msgs.get(mid as usize) {
            Some(&m) => m,
            None => return Err(AppendError::UnknownMessage { mid }),
        };
        if m.deliver_iv != NONE_U32 {
            return Err(AppendError::AlreadyDelivered { mid });
        }
        let ti = m.to as usize;
        let fi = m.from as usize;
        let iv = self.cp_count[ti] + 1;
        self.journal.push(Undo::MsgDelivered { mid });

        // Delivery rule: TDV_to := max(TDV_to, piggyback).
        let base_m = m.tdv_row as usize * self.n;
        let base_t = ti * self.n;
        for k in 0..self.n {
            let theirs = self.msg_tdv[base_m + k];
            let mine = self.cur_tdv[base_t + k];
            if theirs > mine {
                self.journal.push(Undo::CurTdv {
                    slot: (base_t + k) as u32,
                    old: mine,
                });
                self.cur_tdv[base_t + k] = theirs;
            }
        }

        // Zigzag closure: message node between its send-interval slot and
        // its delivery-interval slot.
        let z = self.zmat.push_node() as u32;
        self.journal.push(Undo::Node { mat: MAT_Z });
        self.ensure_slots(ti, iv);
        self.ensure_slots(fi, m.send_iv);
        debug_assert!(
            iv >= self.slot_base[ti] && m.send_iv >= self.slot_base[fi],
            "the compaction watermark never outruns live intervals"
        );
        let deliver_slot = self.z_slots[ti][(iv - self.slot_base[ti]) as usize] as usize;
        self.insert_z_edge(z as usize, deliver_slot);
        let send_slot = self.z_slots[fi][(m.send_iv - self.slot_base[fi]) as usize] as usize;
        self.insert_z_edge(send_slot, z as usize);

        // Causal closure: message node fed by its own send-spine node;
        // the delivery will link to the *next* send of the receiver.
        let c = self.cmat.push_node() as u32;
        self.journal.push(Undo::Node { mat: MAT_C });
        self.insert_c_edge(m.spine as usize, c as usize);
        self.c_delivs[ti].push(c);
        self.journal.push(Undo::CDelivPushed { p: ti as u32 });

        let rec = &mut self.msgs[mid as usize];
        rec.deliver_iv = iv;
        rec.znode = z;
        rec.cnode = c;
        self.deliver_events[ti].push((iv, mid));
        self.journal.push(Undo::DeliverEvPushed { p: ti as u32 });
        self.set_line_open(ti, true);
        self.events += 1;
        Ok(())
    }

    // --------------------------------------------------- mark/rewind ----

    /// Captures the current state; pass to
    /// [`rewind`](IncrementalAnalysis::rewind) to restore it.
    pub fn mark(&self) -> Mark {
        Mark {
            epoch: self.epoch,
            pos: self.journal.len(),
        }
    }

    /// Rewinds to a previously taken [`Mark`] by replaying the undo
    /// journal backwards. Cost is proportional to the state touched since
    /// the mark, not to the total pattern size.
    ///
    /// # Panics
    ///
    /// Panics if the mark is ahead of the journal (taken on a state that
    /// has itself been rewound away) or predates a compaction — use
    /// [`try_rewind`](IncrementalAnalysis::try_rewind) to handle either
    /// as a recoverable error.
    pub fn rewind(&mut self, mark: Mark) {
        if let Err(err) = self.try_rewind(mark) {
            panic!("{err}");
        }
    }

    /// Fallible form of [`rewind`](IncrementalAnalysis::rewind): refuses
    /// (leaving the engine untouched) when the mark predates a compaction
    /// or is ahead of the journal. Rewinding *across a compaction point
    /// is a defined error, never a wrong answer* — the journal below the
    /// compaction was discarded, and the epoch tag on the mark detects
    /// exactly that case.
    pub fn try_rewind(&mut self, mark: Mark) -> Result<(), RewindError> {
        if mark.epoch != self.epoch {
            return Err(RewindError::CompactionBoundary {
                mark_epoch: mark.epoch,
                engine_epoch: self.epoch,
            });
        }
        if mark.pos > self.journal.len() {
            return Err(RewindError::AheadOfJournal);
        }
        while self.journal.len() > mark.pos {
            let entry = self.journal.pop().expect("journal length checked");
            match entry {
                Undo::Word { md, row, word, old } => {
                    let mat = match md / 2 {
                        MAT_R => &mut self.rmat,
                        MAT_Z => &mut self.zmat,
                        _ => &mut self.cmat,
                    };
                    let w = mat.width;
                    let slab = if md % 2 == 0 {
                        &mut mat.fwd
                    } else {
                        &mut mat.bwd
                    };
                    slab[row as usize * w + word as usize] = old;
                }
                Undo::Node { mat } => match mat {
                    MAT_R => self.rmat.pop_node(),
                    MAT_Z => self.zmat.pop_node(),
                    _ => self.cmat.pop_node(),
                },
                Undo::CpCount { p, old } => self.cp_count[p as usize] = old,
                Undo::LineOpen { p, old } => self.line_open[p as usize] = old,
                Undo::Untrackable { old } => self.untrackable = old,
                Undo::CurTdv { slot, old } => self.cur_tdv[slot as usize] = old,
                Undo::MsgPushed => {
                    self.msgs.pop();
                }
                Undo::MsgTdvPushed => self.msg_tdv.truncate(self.msg_tdv.len() - self.n),
                Undo::CpTdvPushed => self.cp_tdv.truncate(self.cp_tdv.len() - self.n),
                Undo::RMetaPushed => {
                    self.r_meta.pop();
                }
                Undo::CpNodePushed { p } => {
                    self.cp_nodes[p as usize].pop();
                }
                Undo::ZSlotPushed { p } => {
                    self.z_slots[p as usize].pop();
                }
                Undo::CSpinePushed { p } => {
                    self.c_spine[p as usize].pop();
                }
                Undo::CDelivPushed { p } => {
                    self.c_delivs[p as usize].pop();
                }
                Undo::CLinked { p, old } => self.c_linked[p as usize] = old,
                Undo::SendEvPushed { p } => {
                    self.send_events[p as usize].pop();
                }
                Undo::DeliverEvPushed { p } => {
                    self.deliver_events[p as usize].pop();
                }
                Undo::MsgDelivered { mid } => {
                    let rec = &mut self.msgs[mid as usize];
                    rec.deliver_iv = NONE_U32;
                    rec.znode = NONE_U32;
                    rec.cnode = NONE_U32;
                }
                Undo::DropReach { slot, old } => self.drop_reach[slot as usize] = old,
                Undo::DropReachPushed => {
                    self.drop_reach.truncate(self.drop_reach.len() - self.n);
                }
            }
        }
        Ok(())
    }

    /// Runs `f` on the **closed** extension of the current pattern — the
    /// state [`Pattern::to_closed`](crate::Pattern::to_closed) would
    /// produce (a final checkpoint appended to every non-empty line not
    /// already ending in one) — then rewinds the closing checkpoints.
    pub fn with_closed<R>(&mut self, f: impl FnOnce(&IncrementalAnalysis) -> R) -> R {
        let mark = self.mark();
        for i in 0..self.n {
            if self.line_open[i] {
                self.append_checkpoint(ProcessId::new(i));
            }
        }
        let out = f(self);
        self.rewind(mark);
        out
    }

    // ------------------------------------------------------- queries ----

    /// Running count of reachable-but-untrackable checkpoint pairs — the
    /// number of RDT violations among the checkpoints appended so far.
    /// Equals the batch checker's uncapped violation count on the same
    /// pattern.
    pub fn untrackable_pairs(&self) -> u64 {
        self.untrackable
    }

    /// Whether the current pattern satisfies RDT (no untrackable R-path).
    /// Ask through [`with_closed`](IncrementalAnalysis::with_closed) for
    /// the paper's closed-pattern verdict.
    pub fn rdt_holds(&self) -> bool {
        self.untrackable == 0
    }

    /// The number of violations a batch
    /// [`RdtChecker`](crate::RdtChecker) limited to `cap` would collect:
    /// `min(untrackable, max(cap, 1))`.
    pub fn violations_capped(&self, cap: usize) -> usize {
        (self.untrackable as usize).min(cap.max(1))
    }

    /// Popcount of the R-graph reachability closure (reflexive pairs
    /// included) — the batch checker's `pairs_checked`.
    pub fn total_reachable_pairs(&self) -> usize {
        self.rmat.total_ones_fwd()
    }

    /// Whether an R-path runs from `from` to `to` (reflexively).
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn reaches(&self, from: CheckpointId, to: CheckpointId) -> bool {
        let u = self.node_of(from);
        let v = self.node_of(to);
        self.rmat.bit(false, u, v)
    }

    fn node_of(&self, c: CheckpointId) -> usize {
        assert!(
            self.checkpoint_exists(c),
            "checkpoint {c} does not exist in the pattern"
        );
        let p = c.process.index();
        assert!(
            c.index >= self.cp_base[p],
            "checkpoint {c} was compacted away (retained from index {})",
            self.cp_base[p]
        );
        self.cp_nodes[p][(c.index - self.cp_base[p]) as usize] as usize
    }

    /// Entries of `send_events[p]` / `deliver_events[p]` with interval
    /// exactly `x`.
    fn interval_range(events: &[(u32, u32)], x: u32) -> &[(u32, u32)] {
        let lo = events.partition_point(|&(iv, _)| iv < x);
        let hi = events.partition_point(|&(iv, _)| iv <= x);
        &events[lo..hi]
    }

    /// Mask (in `zmat`/`cmat` column space, selected by `causal`) of
    /// messages delivered at `p` in an interval `≤ y`.
    fn deliver_mask(&self, causal: bool, p: usize, y: u32, buf: &mut [u64]) {
        buf.fill(0);
        let hi = self.deliver_events[p].partition_point(|&(iv, _)| iv <= y);
        for &(_, mid) in &self.deliver_events[p][..hi] {
            let rec = &self.msgs[mid as usize];
            let node = if causal { rec.cnode } else { rec.znode };
            // Compaction-dropped chain nodes: unreachable from any send
            // above the chain floor, so skipping them keeps live-headed
            // queries exact.
            if node != NONE_U32 {
                let node = node as usize;
                buf[node / 64] |= 1 << (node % 64);
            }
        }
    }

    /// Borrows a zeroed `width`-word scratch mask, preferring `stack`
    /// and spilling to `heap` only for patterns with over
    /// `64 * MASK_STACK_WORDS` closure nodes. The query hot paths stay
    /// allocation-free at certifiable scopes.
    fn mask_buf<'a>(
        width: usize,
        stack: &'a mut [u64; MASK_STACK_WORDS],
        heap: &'a mut Vec<u64>,
    ) -> &'a mut [u64] {
        if width <= MASK_STACK_WORDS {
            &mut stack[..width]
        } else {
            heap.resize(width, 0);
            heap
        }
    }

    /// Whether some message chain (zigzag path) runs from `from` to `to`:
    /// first send in `I_{from}`, last delivery in `I_{to}`.
    pub fn chain_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        self.chain_query(false, from, to)
    }

    /// Whether some **causal** message chain runs from `from` to `to`.
    pub fn causal_chain_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        self.chain_query(true, from, to)
    }

    fn chain_query(&self, causal: bool, from: CheckpointId, to: CheckpointId) -> bool {
        let sends = Self::interval_range(&self.send_events[from.process.index()], from.index);
        let delivers = Self::interval_range(&self.deliver_events[to.process.index()], to.index);
        let mat = if causal { &self.cmat } else { &self.zmat };
        sends.iter().any(|&(_, a)| {
            let ra = &self.msgs[a as usize];
            let na = if causal { ra.cnode } else { ra.znode };
            na != NONE_U32
                && delivers.iter().any(|&(_, b)| {
                    let rb = &self.msgs[b as usize];
                    let nb = if causal { rb.cnode } else { rb.znode };
                    nb != NONE_U32 && mat.bit(false, na as usize, nb as usize)
                })
        })
    }

    /// Whether a causal chain from an interval `≥ from.index` (on
    /// `from.process`) to an interval `≤ to.index` (on `to.process`)
    /// exists — the relaxed *causal doubling* sufficient for
    /// trackability.
    pub fn causal_doubling_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        let (mut stack, mut heap) = ([0u64; MASK_STACK_WORDS], Vec::new());
        let mask = Self::mask_buf(self.cmat.width, &mut stack, &mut heap);
        self.deliver_mask(true, to.process.index(), to.index, mask);
        self.any_send_row_intersects(true, from.process.index(), from.index, mask)
    }

    /// Netzer–Xu zigzag query: a Z-path leaving strictly after `a` and
    /// arriving at or before `b`.
    pub fn z_path_after_to_before(&self, a: CheckpointId, b: CheckpointId) -> bool {
        let (mut stack, mut heap) = ([0u64; MASK_STACK_WORDS], Vec::new());
        let mask = Self::mask_buf(self.zmat.width, &mut stack, &mut heap);
        self.deliver_mask(false, b.process.index(), b.index, mask);
        self.any_send_row_intersects(false, a.process.index(), a.index + 1, mask)
    }

    /// Whether `checkpoint` lies on a Z-cycle (is *useless*).
    pub fn on_z_cycle(&self, checkpoint: CheckpointId) -> bool {
        self.z_path_after_to_before(checkpoint, checkpoint)
    }

    /// Does any delivered message sent by process `p` in an interval
    /// `≥ x` have a closure row intersecting `mask`?
    fn any_send_row_intersects(&self, causal: bool, p: usize, x: u32, mask: &[u64]) -> bool {
        let lo = self.send_events[p].partition_point(|&(iv, _)| iv < x);
        let mat = if causal { &self.cmat } else { &self.zmat };
        self.send_events[p][lo..].iter().any(|&(_, mid)| {
            let rec = &self.msgs[mid as usize];
            let node = if causal { rec.cnode } else { rec.znode };
            node != NONE_U32 && intersects(mat.row(false, node as usize), mask)
        })
    }

    /// Whether message `b` is zigzag chain-reachable from message `a`
    /// (reflexively); `false` unless both are delivered.
    pub fn zigzag_closure(&self, a: u32, b: u32) -> bool {
        let (za, zb) = (self.msgs[a as usize].znode, self.msgs[b as usize].znode);
        za != NONE_U32 && zb != NONE_U32 && self.zmat.bit(false, za as usize, zb as usize)
    }

    /// Whether message `b` is causally chain-reachable from message `a`
    /// (reflexively); `false` unless both are delivered.
    pub fn causal_link_closure(&self, a: u32, b: u32) -> bool {
        let (ca, cb) = (self.msgs[a as usize].cnode, self.msgs[b as usize].cnode);
        ca != NONE_U32 && cb != NONE_U32 && self.cmat.bit(false, ca as usize, cb as usize)
    }

    /// Characterization (2): every message chain is doubled by a causal
    /// chain. Identical verdict to
    /// [`characterization::all_chains_doubled`]
    /// (crate::characterization::all_chains_doubled) on the same pattern.
    ///
    /// After a [`compact_to`](IncrementalAnalysis::compact_to) the
    /// verdict covers the chains headed strictly above the chain floors
    /// (the retained sub-pattern); chains headed in the dropped prefix
    /// are no longer examined.
    pub fn all_chains_doubled(&self) -> bool {
        let (mut stack, mut heap) = ([0u64; MASK_STACK_WORDS], Vec::new());
        let mask = Self::mask_buf(self.cmat.width, &mut stack, &mut heap);
        // Deduplicated by linear scan: patterns at certifiable scopes
        // yield a handful of distinct endpoint pairs at most.
        let mut checked: Vec<(CheckpointId, CheckpointId)> = Vec::new();
        for a in self.msgs.iter().filter(|m| m.znode != NONE_U32) {
            let from = CheckpointId::new(ProcessId::new(a.from as usize), a.send_iv);
            for b in self.msgs.iter().filter(|m| m.znode != NONE_U32) {
                if !self.zmat.bit(false, a.znode as usize, b.znode as usize) {
                    continue;
                }
                let to = CheckpointId::new(ProcessId::new(b.to as usize), b.deliver_iv);
                if trivially_trackable(from, to) || checked.contains(&(from, to)) {
                    continue;
                }
                checked.push((from, to));
                self.deliver_mask(true, to.process.index(), to.index, mask);
                if !self.any_send_row_intersects(true, from.process.index(), from.index, mask) {
                    return false;
                }
            }
        }
        true
    }

    /// Characterization (3): every CM-path (causal prefix plus one zigzag
    /// link) is doubled. Identical verdict to
    /// [`characterization::all_cm_paths_doubled`]
    /// (crate::characterization::all_cm_paths_doubled).
    ///
    /// After a [`compact_to`](IncrementalAnalysis::compact_to) the
    /// verdict covers the CM-paths over retained messages only, like
    /// [`all_chains_doubled`](IncrementalAnalysis::all_chains_doubled).
    pub fn all_cm_paths_doubled(&self) -> bool {
        let (mut stack, mut heap) = ([0u64; MASK_STACK_WORDS], Vec::new());
        let mask = Self::mask_buf(self.cmat.width, &mut stack, &mut heap);
        let delivered = |(_, m): &(usize, &MsgRec)| m.cnode != NONE_U32;
        for (mid, junction) in self.msgs.iter().enumerate().filter(delivered) {
            for (b, tail) in self.msgs.iter().enumerate().filter(delivered) {
                if mid == b {
                    continue;
                }
                // One zigzag link junction -> tail.
                if junction.to != tail.from || junction.deliver_iv > tail.send_iv {
                    continue;
                }
                let to = CheckpointId::new(ProcessId::new(tail.to as usize), tail.deliver_iv);
                self.deliver_mask(true, to.process.index(), to.index, mask);
                for (_, head) in self.msgs.iter().enumerate().filter(delivered) {
                    if !self
                        .cmat
                        .bit(false, head.cnode as usize, junction.cnode as usize)
                    {
                        continue;
                    }
                    let from = CheckpointId::new(ProcessId::new(head.from as usize), head.send_iv);
                    if trivially_trackable(from, to) {
                        continue;
                    }
                    if !self.any_send_row_intersects(true, from.process.index(), from.index, mask) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Minimum consistent global checkpoint containing `members` (least
    /// fixpoint of the orphan constraints), or `None` if none exists.
    /// Identical to [`min_max::min_consistent_containing`]
    /// (crate::min_max::min_consistent_containing).
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern.
    pub fn min_consistent_containing(&self, members: &[CheckpointId]) -> Option<GlobalCheckpoint> {
        let (mut stack, mut heap) = ([0u32; GC_STACK_ENTRIES], Vec::new());
        let gc = self.gc_buf(&mut stack, &mut heap);
        self.min_consistent_containing_into(members, gc)
            .then(|| GlobalCheckpoint::new(gc.to_vec()))
    }

    /// Allocation-free form of
    /// [`min_consistent_containing`]
    /// (IncrementalAnalysis::min_consistent_containing): writes the
    /// global checkpoint into `out` (length `n`) and returns whether one
    /// exists. `out` is unspecified on `false`.
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern or `out` has the
    /// wrong length.
    pub fn min_consistent_containing_into(
        &self,
        members: &[CheckpointId],
        out: &mut [u32],
    ) -> bool {
        let gc = out;
        self.member_floor(members, gc);
        loop {
            let mut changed = false;
            for rec in &self.msgs {
                if rec.deliver_iv == NONE_U32 {
                    continue;
                }
                if rec.deliver_iv <= gc[rec.to as usize] && rec.send_iv > gc[rec.from as usize] {
                    if rec.send_iv > self.cp_count[rec.from as usize] {
                        return false;
                    }
                    gc[rec.from as usize] = rec.send_iv;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        members.iter().all(|&m| gc[m.process.index()] == m.index)
    }

    /// Maximum consistent global checkpoint containing `members`
    /// (greatest fixpoint), or `None`. Identical to
    /// [`min_max::max_consistent_containing`]
    /// (crate::min_max::max_consistent_containing).
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern.
    pub fn max_consistent_containing(&self, members: &[CheckpointId]) -> Option<GlobalCheckpoint> {
        let (mut stack, mut heap) = ([0u32; GC_STACK_ENTRIES], Vec::new());
        let gc = self.gc_buf(&mut stack, &mut heap);
        self.max_consistent_containing_into(members, gc)
            .then(|| GlobalCheckpoint::new(gc.to_vec()))
    }

    /// Allocation-free form of
    /// [`max_consistent_containing`]
    /// (IncrementalAnalysis::max_consistent_containing): writes the
    /// global checkpoint into `out` (length `n`) and returns whether one
    /// exists. `out` is unspecified on `false`.
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern or `out` has the
    /// wrong length.
    pub fn max_consistent_containing_into(
        &self,
        members: &[CheckpointId],
        out: &mut [u32],
    ) -> bool {
        let gc = out;
        gc.copy_from_slice(&self.cp_count);
        for &member in members {
            self.assert_member(member);
            let e = &mut gc[member.process.index()];
            *e = (*e).min(member.index);
        }
        loop {
            let mut changed = false;
            for rec in &self.msgs {
                if rec.deliver_iv == NONE_U32 {
                    continue;
                }
                if rec.send_iv > gc[rec.from as usize] && rec.deliver_iv <= gc[rec.to as usize] {
                    gc[rec.to as usize] = rec.deliver_iv - 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        members.iter().all(|&m| gc[m.process.index()] == m.index)
    }

    /// Greatest consistent global checkpoint componentwise **dominated
    /// by** `caps` (each entry additionally clamped to the process's last
    /// checkpoint). This is the *recovery line* with `caps` as the
    /// failures' resume caps: unlike
    /// [`max_consistent_containing`](IncrementalAnalysis::max_consistent_containing)
    /// no exact membership is demanded of the result, so the descent is
    /// infallible — the all-initial global checkpoint is always
    /// consistent. Matches `rdt-recovery`'s `recovery_line` on the same
    /// pattern and caps.
    ///
    /// # Panics
    ///
    /// Panics if `caps` or `out` have a length other than the process
    /// count.
    pub fn max_consistent_dominated_into(&self, caps: &[u32], out: &mut [u32]) {
        assert_eq!(caps.len(), self.n, "caps length");
        let gc = out;
        gc.copy_from_slice(&self.cp_count);
        for (entry, &cap) in gc.iter_mut().zip(caps) {
            *entry = (*entry).min(cap);
        }
        loop {
            let mut changed = false;
            for rec in &self.msgs {
                if rec.deliver_iv == NONE_U32 {
                    continue;
                }
                if rec.send_iv > gc[rec.from as usize] && rec.deliver_iv <= gc[rec.to as usize] {
                    gc[rec.to as usize] = rec.deliver_iv - 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Allocating form of
    /// [`max_consistent_dominated_into`](IncrementalAnalysis::max_consistent_dominated_into).
    ///
    /// # Panics
    ///
    /// Panics if `caps` has a length other than the process count.
    pub fn max_consistent_dominated(&self, caps: &[u32]) -> GlobalCheckpoint {
        let (mut stack, mut heap) = ([0u32; GC_STACK_ENTRIES], Vec::new());
        let gc = self.gc_buf(&mut stack, &mut heap);
        self.max_consistent_dominated_into(caps, gc);
        GlobalCheckpoint::new(gc.to_vec())
    }

    /// Routing and interval placement of message `mid` (its send-order
    /// handle): origin, destination, and the 1-based intervals of its send
    /// and (if any) delivery events.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is not a message of the current pattern.
    pub fn message_route(&self, mid: u32) -> MessageRoute {
        let rec = &self.msgs[mid as usize];
        MessageRoute {
            from: ProcessId::new(rec.from as usize),
            to: ProcessId::new(rec.to as usize),
            send_interval: rec.send_iv,
            deliver_interval: (rec.deliver_iv != NONE_U32).then_some(rec.deliver_iv),
        }
    }

    /// Minimum consistent global checkpoint through R-graph reachability
    /// (the independent witness formulation). Identical to
    /// [`min_max::min_consistent_via_rgraph`]
    /// (crate::min_max::min_consistent_via_rgraph) on closed patterns.
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern.
    pub fn min_consistent_via_rgraph(&self, members: &[CheckpointId]) -> Option<GlobalCheckpoint> {
        let (mut stack, mut heap) = ([0u32; GC_STACK_ENTRIES], Vec::new());
        let gc = self.gc_buf(&mut stack, &mut heap);
        self.min_consistent_via_rgraph_into(members, gc)
            .then(|| GlobalCheckpoint::new(gc.to_vec()))
    }

    /// Allocation-free form of
    /// [`min_consistent_via_rgraph`]
    /// (IncrementalAnalysis::min_consistent_via_rgraph): writes the
    /// global checkpoint into `out` (length `n`) and returns whether one
    /// exists. `out` is unspecified on `false`.
    ///
    /// # Panics
    ///
    /// Panics if a member does not exist in the pattern or `out` has the
    /// wrong length.
    pub fn min_consistent_via_rgraph_into(
        &self,
        members: &[CheckpointId],
        out: &mut [u32],
    ) -> bool {
        let gc = out;
        self.member_floor(members, gc);
        for (j, slot) in gc.iter_mut().enumerate().take(self.n) {
            let mut found = false;
            let lo = (*slot + 1).max(self.cp_base[j]);
            for z in (lo..=self.cp_count[j]).rev() {
                let from = self.cp_nodes[j][(z - self.cp_base[j]) as usize] as usize;
                if members
                    .iter()
                    .any(|&m| self.rmat.bit(false, from, self.node_of(m)))
                {
                    *slot = z;
                    found = true;
                    break;
                }
            }
            // Below the compaction base the explicit rows are gone, but
            // the drop-reach summaries hold exactly the largest dropped
            // index of `j` with an R-path to each retained node.
            if !found && !self.drop_reach.is_empty() {
                for &m in members {
                    let dr = self.drop_reach[self.node_of(m) * self.n + j];
                    if dr != NONE_U32 && dr > *slot {
                        *slot = dr;
                    }
                }
            }
        }
        members.iter().all(|&m| gc[m.process.index()] == m.index)
    }

    /// Borrows a zeroed `n`-entry global-checkpoint scratch, preferring
    /// `stack` and spilling to `heap` only above `GC_STACK_ENTRIES`
    /// processes. The oracle hot paths allocate only for `Some` results.
    fn gc_buf<'a>(
        &self,
        stack: &'a mut [u32; GC_STACK_ENTRIES],
        heap: &'a mut Vec<u32>,
    ) -> &'a mut [u32] {
        if self.n <= GC_STACK_ENTRIES {
            &mut stack[..self.n]
        } else {
            heap.resize(self.n, 0);
            heap
        }
    }

    fn member_floor(&self, members: &[CheckpointId], gc: &mut [u32]) {
        gc.fill(0);
        for &member in members {
            self.assert_member(member);
            let e = &mut gc[member.process.index()];
            *e = (*e).max(member.index);
        }
    }

    fn assert_member(&self, member: CheckpointId) {
        assert!(
            member.index <= self.cp_count[member.process.index()],
            "member {member} does not exist in the pattern"
        );
    }

    // ------------------------------------------------------ internal ----

    fn set_line_open(&mut self, p: usize, value: bool) {
        if self.line_open[p] != value {
            self.journal.push(Undo::LineOpen {
                p: p as u32,
                old: self.line_open[p],
            });
            self.line_open[p] = value;
        }
    }

    /// Dense zigzag interval slots for process `p` up to interval `upto`,
    /// chained in increasing order (dense from `slot_base[p]` once
    /// compaction has dropped a prefix).
    fn ensure_slots(&mut self, p: usize, upto: u32) {
        debug_assert!(
            upto >= self.slot_base[p],
            "slot {upto} of process {p} was compacted away"
        );
        while self.slot_base[p] as usize + self.z_slots[p].len() <= upto as usize {
            let s = self.zmat.push_node() as u32;
            self.journal.push(Undo::Node { mat: MAT_Z });
            if let Some(&prev) = self.z_slots[p].last() {
                self.insert_z_edge(prev as usize, s as usize);
            }
            self.z_slots[p].push(s);
            self.journal.push(Undo::ZSlotPushed { p: p as u32 });
        }
    }

    /// Inserts an R-graph edge, counting each *new* closure pair that is
    /// not trackable. The verdict per pair is final at insertion time:
    /// the destination's `TDV` snapshot was taken when the destination
    /// node was created, before any edge could reach it.
    fn insert_r_edge(&mut self, u: usize, v: usize) {
        let implied = self.rmat.bit(false, u, v);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.rmat
            .insert_edge(MAT_R, &mut self.journal, &mut scratch, true, u, v);
        let mut delta = 0u64;
        for &(x, y) in &scratch.pairs {
            if !self.trackable_nodes(x as usize, y as usize) {
                delta += 1;
            }
        }
        if !implied && !self.drop_reach.is_empty() {
            delta += self.propagate_drop_reach(u, &scratch.succ);
        }
        if delta > 0 {
            self.journal.push(Undo::Untrackable {
                old: self.untrackable,
            });
            self.untrackable += delta;
        }
        self.scratch = scratch;
    }

    /// Folds `u`'s dropped-reach summary into every node of `succ` (the
    /// successor set of a freshly inserted edge's head, including the
    /// head itself) and returns the number of *new* untrackable pairs
    /// whose source checkpoint was compacted away.
    ///
    /// Exactness rests on two facts: dropped reach sets are downward
    /// closed per process (so the per-process maximum index determines
    /// the set), and `drop_reach[u]` dominates `drop_reach[x]` for every
    /// retained predecessor `x` of `u` (reachability is transitive), so
    /// folding only `u`'s row covers everything newly reaching `succ`.
    fn propagate_drop_reach(&mut self, u: usize, succ: &[u64]) -> u64 {
        let n = self.n;
        let base_u = u * n;
        if self.drop_reach[base_u..base_u + n]
            .iter()
            .all(|&d| d == NONE_U32)
        {
            return 0;
        }
        let mut delta = 0u64;
        for y in ones(succ) {
            let py = self.r_meta[y].0;
            let base_y = y * n;
            for k in 0..n {
                let du = self.drop_reach[base_u + k];
                if du == NONE_U32 {
                    continue;
                }
                let old = self.drop_reach[base_y + k];
                if old != NONE_U32 && du <= old {
                    continue;
                }
                self.journal.push(Undo::DropReach {
                    slot: (base_y + k) as u32,
                    old,
                });
                self.drop_reach[base_y + k] = du;
                if k as u32 != py {
                    // Dropped sources C_{k,i} with i in (old, du] newly
                    // reach y; of those, the ones the destination's TDV
                    // snapshot does not cover are untrackable. Index 0
                    // (and anything <= the snapshot) is always covered.
                    let o = if old == NONE_U32 { 0 } else { old };
                    let thr = o.max(self.cp_tdv[base_y + k]);
                    if du > thr {
                        delta += (du - thr) as u64;
                    }
                }
            }
        }
        delta
    }

    fn insert_z_edge(&mut self, u: usize, v: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.zmat
            .insert_edge(MAT_Z, &mut self.journal, &mut scratch, false, u, v);
        self.scratch = scratch;
    }

    fn insert_c_edge(&mut self, u: usize, v: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.cmat
            .insert_edge(MAT_C, &mut self.journal, &mut scratch, false, u, v);
        self.scratch = scratch;
    }

    /// Capacity snapshot of every growable buffer the engine owns.
    /// Rewinding truncates in place and replays refill the warmed
    /// storage, so a rewind + replay cycle must not change any entry —
    /// the branch-isolation test pins that invariant.
    #[cfg(test)]
    fn buffer_capacities(&self) -> Vec<usize> {
        let mut caps = vec![
            self.journal.capacity(),
            self.msgs.capacity(),
            self.msg_tdv.capacity(),
            self.cp_tdv.capacity(),
            self.r_meta.capacity(),
            self.drop_reach.capacity(),
            self.scratch.succ.capacity(),
            self.scratch.pred.capacity(),
            self.scratch.pairs.capacity(),
            self.rmat.fwd.capacity(),
            self.rmat.bwd.capacity(),
            self.zmat.fwd.capacity(),
            self.zmat.bwd.capacity(),
            self.cmat.fwd.capacity(),
            self.cmat.bwd.capacity(),
        ];
        for p in 0..self.n {
            caps.push(self.cp_nodes[p].capacity());
            caps.push(self.z_slots[p].capacity());
            caps.push(self.c_spine[p].capacity());
            caps.push(self.c_delivs[p].capacity());
            caps.push(self.send_events[p].capacity());
            caps.push(self.deliver_events[p].capacity());
        }
        caps
    }

    /// Definition 3.3/3.4 trackability of the R-path `x → y` (both R-graph
    /// nodes): same-process forward, or the destination's snapshotted
    /// `TDV` already records an interval `≥ x`'s index.
    fn trackable_nodes(&self, x: usize, y: usize) -> bool {
        let (px, ix) = self.r_meta[x];
        let (py, iy) = self.r_meta[y];
        if px == py {
            ix <= iy
        } else {
            self.cp_tdv[y * self.n + px as usize] >= ix
        }
    }
}

/// Same-process forward dependencies need no doubling (Definition 3.3's
/// first disjunct).
fn trivially_trackable(from: CheckpointId, to: CheckpointId) -> bool {
    from.process == to.process && from.index <= to.index
}

/// Where a message sits in the pattern: who sent it, who receives it, and
/// the (1-based) intervals of its send and delivery events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRoute {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Interval of the send event at the sender.
    pub send_interval: u32,
    /// Interval of the delivery at the destination; `None` while the
    /// message is in transit.
    pub deliver_interval: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{all_chains_doubled_with, all_cm_paths_doubled_with};
    use crate::{min_max, paper_figures, Pattern, PatternAnalysis, PatternBuilder, PatternEvent};

    /// One pattern-building operation, applied in lockstep to the engine
    /// and to a [`PatternBuilder`].
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Cp(usize),
        Send(usize, usize),
        /// Deliver the message with the given *send-order* number.
        Del(usize),
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Converts a pattern into an op sequence via one valid linearization
    /// (message numbers renumbered to send order).
    fn ops_of(pattern: &Pattern) -> Vec<Op> {
        let order = pattern.linearize().expect("realizable");
        let mut send_order = vec![usize::MAX; pattern.num_messages()];
        let mut next = 0usize;
        let mut ops = Vec::new();
        for (proc, idx) in order {
            match pattern.events(proc)[idx] {
                PatternEvent::Checkpoint => ops.push(Op::Cp(proc.index())),
                PatternEvent::Send(m) => {
                    send_order[m.0] = next;
                    next += 1;
                    let info = pattern.message(m);
                    ops.push(Op::Send(info.from.index(), info.to.index()));
                }
                PatternEvent::Deliver(m) => ops.push(Op::Del(send_order[m.0])),
            }
        }
        ops
    }

    struct Lockstep {
        incr: IncrementalAnalysis,
        builder: PatternBuilder,
        mids: Vec<crate::PatternMessageId>,
    }

    impl Lockstep {
        fn new(n: usize) -> Self {
            Lockstep {
                incr: IncrementalAnalysis::new(n),
                builder: PatternBuilder::new(n),
                mids: Vec::new(),
            }
        }

        fn apply(&mut self, op: Op) {
            match op {
                Op::Cp(i) => {
                    self.incr.append_checkpoint(p(i));
                    self.builder.checkpoint(p(i));
                }
                Op::Send(from, to) => {
                    let mid = self.incr.append_send(p(from), p(to));
                    assert_eq!(mid as usize, self.mids.len());
                    self.mids.push(self.builder.send(p(from), p(to)));
                }
                Op::Del(k) => {
                    self.incr.append_deliver(k as u32);
                    self.builder.deliver(self.mids[k]).expect("deliverable");
                }
            }
        }

        fn pattern(&self) -> Pattern {
            self.builder.clone().build().expect("well-formed")
        }
    }

    /// Every query of the engine must agree with the batch pipeline on
    /// the closed pattern.
    fn assert_matches_batch(incr: &mut IncrementalAnalysis, pattern: &Pattern) {
        let analysis = PatternAnalysis::new(pattern);
        let closed = analysis.pattern();
        let reach = analysis.reachability();
        let annotations = analysis.annotations().expect("realizable");
        let zz = analysis.zigzag();

        incr.with_closed(|view| {
            let mut batch_untrackable = 0u64;
            for from in closed.checkpoints() {
                for to in reach.reachable_from(from) {
                    if !annotations.trackable(from, to) {
                        batch_untrackable += 1;
                    }
                }
            }
            assert_eq!(
                view.untrackable_pairs(),
                batch_untrackable,
                "untrackable count"
            );
            assert_eq!(
                view.total_reachable_pairs(),
                reach.total_reachable_pairs(),
                "closure popcount"
            );
            let report = analysis.rdt_report();
            assert_eq!(view.rdt_holds(), report.holds());
            assert_eq!(view.violations_capped(16), report.violations().len());
            assert_eq!(
                view.all_chains_doubled(),
                all_chains_doubled_with(&analysis),
                "chains doubled"
            );
            assert_eq!(
                view.all_cm_paths_doubled(),
                all_cm_paths_doubled_with(&analysis),
                "cm paths doubled"
            );

            for from in closed.checkpoints() {
                assert_eq!(view.on_z_cycle(from), zz.on_z_cycle(from), "z-cycle {from}");
                for to in closed.checkpoints() {
                    assert_eq!(
                        view.reaches(from, to),
                        reach.reaches(from, to),
                        "reaches ({from}, {to})"
                    );
                    assert_eq!(
                        view.chain_exists(from, to),
                        zz.chain_exists(from, to),
                        "chain ({from}, {to})"
                    );
                    assert_eq!(
                        view.causal_chain_exists(from, to),
                        zz.causal_chain_exists(from, to),
                        "causal chain ({from}, {to})"
                    );
                    assert_eq!(
                        view.causal_doubling_exists(from, to),
                        zz.causal_doubling_exists(from, to),
                        "doubling ({from}, {to})"
                    );
                    assert_eq!(
                        view.z_path_after_to_before(from, to),
                        zz.z_path_after_to_before(from, to),
                        "z-path ({from}, {to})"
                    );
                }
                let member = [from];
                assert_eq!(
                    view.min_consistent_containing(&member),
                    min_max::min_consistent_containing(closed, &member),
                    "min gc {from}"
                );
                assert_eq!(
                    view.max_consistent_containing(&member),
                    min_max::max_consistent_containing(closed, &member),
                    "max gc {from}"
                );
                assert_eq!(
                    view.min_consistent_via_rgraph(&member),
                    min_max::min_consistent_via_rgraph_with(&analysis, &member),
                    "min gc via R-graph {from}"
                );
            }
        });
    }

    #[test]
    fn empty_engine_matches_empty_pattern() {
        for n in 1..4 {
            let mut incr = IncrementalAnalysis::new(n);
            let pattern = PatternBuilder::new(n).build().unwrap();
            assert_matches_batch(&mut incr, &pattern);
        }
    }

    #[test]
    fn figure_2_motif_is_detected_online() {
        // Figure 2's unbroken non-causal chain: m' sent before m races
        // ahead; the hidden dependency appears once intervals close.
        let mut incr = IncrementalAnalysis::new(3);
        let m_prime = incr.append_send(p(1), p(2));
        let m = incr.append_send(p(0), p(1));
        incr.append_deliver(m);
        incr.append_deliver(m_prime);
        assert!(incr.rdt_holds(), "open pattern has no closed intervals yet");
        assert!(!incr.with_closed(|view| view.rdt_holds()));
        // And the engine agrees with the batch checker on the details.
        let mut b = PatternBuilder::new(3);
        let bm_prime = b.send(p(1), p(2));
        let bm = b.send(p(0), p(1));
        b.deliver(bm).unwrap();
        b.deliver(bm_prime).unwrap();
        let pattern = b.build().unwrap();
        assert_matches_batch(&mut incr, &pattern);
    }

    #[test]
    fn engine_matches_batch_on_paper_figures() {
        for pattern in [
            paper_figures::figure_1(),
            paper_figures::figure_2_unbroken(),
            paper_figures::figure_2_broken(),
            paper_figures::figure_4_unbroken(),
            paper_figures::figure_4_broken(),
        ] {
            let ops = ops_of(&pattern);
            let mut lock = Lockstep::new(pattern.num_processes());
            for &op in &ops {
                lock.apply(op);
            }
            let rebuilt = lock.pattern();
            assert_matches_batch(&mut lock.incr, &rebuilt);
        }
    }

    #[test]
    fn engine_matches_batch_after_every_prefix_of_figure_1() {
        let pattern = paper_figures::figure_1();
        let ops = ops_of(&pattern);
        let mut lock = Lockstep::new(pattern.num_processes());
        for &op in &ops {
            lock.apply(op);
            let prefix = lock.pattern();
            assert_matches_batch(&mut lock.incr, &prefix);
        }
    }

    #[test]
    fn rewind_restores_marked_state() {
        let mut lock = Lockstep::new(3);
        for &op in &[Op::Send(0, 1), Op::Del(0), Op::Cp(1)] {
            lock.apply(op);
        }
        let mark = lock.incr.mark();

        // Branch A (engine only): a figure-2 motif whose closed pattern
        // violates RDT — m' (p2 to p0) races ahead of the chain p1 to p2,
        // so p0 never hears of p1's interval.
        let a1 = lock.incr.append_send(p(2), p(0));
        let a2 = lock.incr.append_send(p(1), p(2));
        lock.incr.append_deliver(a2);
        lock.incr.append_deliver(a1);
        let branch_a = lock.incr.with_closed(|v| v.untrackable_pairs());
        assert!(branch_a > 0, "branch A must violate RDT when closed");

        // Back out of branch A; the engine must match the bare prefix.
        lock.incr.rewind(mark);
        assert_eq!(lock.incr.num_messages(), 1);
        let prefix = lock.pattern();
        assert_matches_batch(&mut lock.incr, &prefix);

        // Branch B: different events — verdicts are those of prefix+B,
        // uncontaminated by the rewound branch A.
        lock.apply(Op::Cp(0));
        lock.apply(Op::Send(2, 0));
        let pattern_b = lock.pattern();
        assert_matches_batch(&mut lock.incr, &pattern_b);

        // Rewind once more and replay branch A: same observation, the
        // message handles come out identical, and — every buffer having
        // been warmed by the first pass — the whole rewind + replay cycle
        // runs in reused storage, growing no allocation.
        let warmed = lock.incr.buffer_capacities();
        lock.incr.rewind(mark);
        let b1 = lock.incr.append_send(p(2), p(0));
        let b2 = lock.incr.append_send(p(1), p(2));
        assert_eq!((a1, a2), (b1, b2));
        lock.incr.append_deliver(b2);
        lock.incr.append_deliver(b1);
        assert_eq!(lock.incr.with_closed(|v| v.untrackable_pairs()), branch_a);
        assert_eq!(
            lock.incr.buffer_capacities(),
            warmed,
            "rewind + replay must not grow any engine buffer"
        );
    }

    #[test]
    fn with_closed_is_transparent() {
        let mut incr = IncrementalAnalysis::new(2);
        let m = incr.append_send(p(0), p(1));
        incr.append_deliver(m);
        let before = incr.mark();
        let pairs = incr.with_closed(|view| view.total_reachable_pairs());
        assert!(pairs > 0);
        assert_eq!(incr.mark(), before, "closing must be fully rewound");
        assert_eq!(incr.last_checkpoint_index(p(0)), 0);
        assert_eq!(incr.last_checkpoint_index(p(1)), 0);
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn double_delivery_panics() {
        let mut incr = IncrementalAnalysis::new(2);
        let m = incr.append_send(p(0), p(1));
        incr.append_deliver(m);
        incr.append_deliver(m);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn missing_member_panics() {
        let incr = IncrementalAnalysis::new(2);
        let _ = incr.min_consistent_containing(&[CheckpointId::new(p(0), 3)]);
    }

    #[test]
    fn dominated_descent_matches_brute_force_on_figure_1() {
        // For *every* caps vector dominated by the last checkpoints, the
        // dominated descent must return the componentwise maximum of all
        // consistent global checkpoints below the caps.
        let pattern = paper_figures::figure_1();
        let n = pattern.num_processes();
        let mut lock = Lockstep::new(n);
        for op in ops_of(&pattern) {
            lock.apply(op);
        }
        let last: Vec<u32> = (0..n)
            .map(|i| pattern.last_checkpoint_index(p(i)))
            .collect();
        let mut caps = vec![0u32; n];
        loop {
            let line = lock.incr.max_consistent_dominated(&caps);
            let mut best = vec![0u32; n];
            let mut idx = vec![0u32; n];
            loop {
                let gc = crate::GlobalCheckpoint::new(idx.clone());
                if crate::consistency::is_consistent(&pattern, &gc) {
                    for (b, &v) in best.iter_mut().zip(&idx) {
                        *b = (*b).max(v);
                    }
                }
                let mut k = 0;
                while k < n && idx[k] == caps[k] {
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
                idx[k] += 1;
            }
            assert_eq!(line.as_slice(), &best[..], "caps {caps:?}");
            let mut k = 0;
            while k < n && caps[k] == last[k] {
                caps[k] = 0;
                k += 1;
            }
            if k == n {
                break;
            }
            caps[k] += 1;
        }
        // Uncapped, the dominated descent coincides with the greatest
        // consistent global checkpoint.
        assert_eq!(
            lock.incr.max_consistent_dominated(&last),
            lock.incr.max_consistent_containing(&[]).expect("exists")
        );
    }

    #[test]
    fn message_route_reports_placement() {
        let mut incr = IncrementalAnalysis::new(2);
        let m0 = incr.append_send(p(0), p(1));
        incr.append_checkpoint(p(0));
        let m1 = incr.append_send(p(1), p(0));
        incr.append_deliver(m0);
        let r0 = incr.message_route(m0);
        assert_eq!(r0.from, p(0));
        assert_eq!(r0.to, p(1));
        assert_eq!(r0.send_interval, 1, "send in P0's first interval");
        assert_eq!(
            r0.deliver_interval,
            Some(1),
            "delivered in P1's first interval"
        );
        let r1 = incr.message_route(m1);
        assert_eq!(r1.from, p(1));
        assert_eq!(r1.send_interval, 1);
        assert_eq!(r1.deliver_interval, None, "still in transit");
    }
}
