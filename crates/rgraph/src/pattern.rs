//! Checkpoint and communication patterns (Definition 2.1 of the paper).

use std::fmt;

use rdt_causality::{CheckpointId, IntervalId, ProcessId};
use rdt_json::{Json, ToJson};

/// Identifier of a message within one [`Pattern`].
///
/// Distinct from any transport-level message id; patterns number their
/// messages densely from zero in send order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PatternMessageId(pub usize);

impl fmt::Display for PatternMessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One event on a process line of a pattern.
///
/// The initial checkpoint `C_{i,0}` is implicit and precedes every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternEvent {
    /// The process takes a local checkpoint.
    Checkpoint,
    /// The process sends the given message.
    Send(PatternMessageId),
    /// The process delivers the given message.
    Deliver(PatternMessageId),
}

/// Errors detected while building or validating a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A process id was out of range.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// Number of processes of the pattern.
        n: usize,
    },
    /// A message was delivered twice.
    DuplicateDelivery(PatternMessageId),
    /// A delivery referenced a message that was never sent.
    UnknownMessage(PatternMessageId),
    /// A message was addressed to one process but delivered at another.
    WrongDestination {
        /// The message in question.
        message: PatternMessageId,
        /// Where the message was addressed.
        expected: ProcessId,
        /// Where the delivery happened.
        actual: ProcessId,
    },
    /// A process sent a message to itself.
    SelfMessage(PatternMessageId),
    /// The pattern does not correspond to any real execution: its local
    /// orders plus send-before-delivery constraints contain a cycle.
    Unrealizable,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::ProcessOutOfRange { process, n } => {
                write!(f, "process {process} out of range for {n} processes")
            }
            PatternError::DuplicateDelivery(m) => write!(f, "message {m} delivered twice"),
            PatternError::UnknownMessage(m) => write!(f, "message {m} was never sent"),
            PatternError::WrongDestination {
                message,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "message {message} addressed to {expected} but delivered at {actual}"
                )
            }
            PatternError::SelfMessage(m) => write!(f, "message {m} sent by a process to itself"),
            PatternError::Unrealizable => {
                write!(
                    f,
                    "pattern is unrealizable: causality constraints contain a cycle"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// Metadata of one message of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Position of the send event in `from`'s event sequence.
    pub send_pos: usize,
    /// Position of the delivery event in `to`'s event sequence, or `None`
    /// if the message is still in transit when the pattern ends.
    pub deliver_pos: Option<usize>,
}

/// A *checkpoint and communication pattern* `(Ĥ, C_Ĥ)`: a finite
/// distributed computation together with the local checkpoints taken on it
/// (Definition 2.1).
///
/// The pattern records, per process, the local sequence of checkpoint,
/// send and delivery events; every process implicitly starts with the
/// initial checkpoint `C_{i,0}`. Build patterns with [`PatternBuilder`]
/// (by hand or from a simulation trace).
///
/// # Intervals
///
/// The checkpoint interval `I_{i,x}` is the sequence of events between
/// `C_{i,x-1}` and `C_{i,x}` (one-based `x`). An event at position `p` of
/// process `i` belongs to interval `1 + (number of checkpoint events before
/// p)`. A message sent in `I_{i,x}` and delivered in `I_{j,y}` contributes
/// the R-graph edge `C_{i,x} → C_{j,y}` — which requires those closing
/// checkpoints to exist; see [`Pattern::is_closed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    n: usize,
    events: Vec<Vec<PatternEvent>>,
    messages: Vec<MessageInfo>,
    /// Per process, positions of checkpoint events (ascending).
    checkpoint_positions: Vec<Vec<usize>>,
}

impl Pattern {
    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// The event sequence of `process` (without the implicit `C_{i,0}`).
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn events(&self, process: ProcessId) -> &[PatternEvent] {
        &self.events[process.index()]
    }

    /// Number of checkpoints of `process`, counting the implicit initial
    /// one; the last checkpoint index is therefore `count - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn checkpoint_count(&self, process: ProcessId) -> u32 {
        self.checkpoint_positions[process.index()].len() as u32 + 1
    }

    /// Index of the last checkpoint of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn last_checkpoint_index(&self, process: ProcessId) -> u32 {
        self.checkpoint_count(process) - 1
    }

    /// Total number of checkpoints across all processes.
    pub fn total_checkpoints(&self) -> usize {
        (0..self.n)
            .map(|i| self.checkpoint_count(ProcessId::new(i)) as usize)
            .sum()
    }

    /// Iterates over every checkpoint of the pattern, process by process.
    pub fn checkpoints(&self) -> impl Iterator<Item = CheckpointId> + '_ {
        (0..self.n).flat_map(move |i| {
            let p = ProcessId::new(i);
            (0..self.checkpoint_count(p)).map(move |x| CheckpointId::new(p, x))
        })
    }

    /// All messages, in send order.
    pub fn messages(&self) -> &[MessageInfo] {
        &self.messages
    }

    /// Metadata of one message.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn message(&self, id: PatternMessageId) -> &MessageInfo {
        &self.messages[id.0]
    }

    /// Number of messages (delivered or in transit).
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Interval of the event at position `pos` of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` or `pos` is out of range.
    pub fn interval_of(&self, process: ProcessId, pos: usize) -> IntervalId {
        assert!(
            pos < self.events[process.index()].len(),
            "event position out of range"
        );
        let positions = &self.checkpoint_positions[process.index()];
        let before = positions.partition_point(|&cp| cp < pos);
        IntervalId::new(process, before as u32 + 1)
    }

    /// The interval in which `message` was sent.
    ///
    /// # Panics
    ///
    /// Panics if `message` is out of range.
    pub fn send_interval(&self, message: PatternMessageId) -> IntervalId {
        let info = self.message(message);
        self.interval_of(info.from, info.send_pos)
    }

    /// The interval in which `message` was delivered, or `None` if it is
    /// still in transit.
    ///
    /// # Panics
    ///
    /// Panics if `message` is out of range.
    pub fn deliver_interval(&self, message: PatternMessageId) -> Option<IntervalId> {
        let info = self.message(message);
        info.deliver_pos.map(|pos| self.interval_of(info.to, pos))
    }

    /// Index of the checkpoint event at position `pos` of `process`
    /// (`C_{i,x}` for the `x`-th explicit checkpoint, `x ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if the event at `pos` is not a checkpoint.
    pub fn checkpoint_index_at(&self, process: ProcessId, pos: usize) -> u32 {
        assert!(
            matches!(self.events[process.index()][pos], PatternEvent::Checkpoint),
            "event at position {pos} is not a checkpoint"
        );
        let positions = &self.checkpoint_positions[process.index()];
        positions.partition_point(|&cp| cp < pos) as u32 + 1
    }

    /// Position of checkpoint `C_{i,x}` in `i`'s event sequence, or `None`
    /// for the implicit initial checkpoint (`x == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist.
    pub fn checkpoint_position(&self, checkpoint: CheckpointId) -> Option<usize> {
        if checkpoint.index == 0 {
            return None;
        }
        Some(self.checkpoint_positions[checkpoint.process.index()][checkpoint.index as usize - 1])
    }

    /// Returns `true` if every event is followed (not necessarily
    /// immediately) by a checkpoint on its process — i.e. no interval is
    /// left open.
    ///
    /// Closed patterns make every send/delivery attributable to an existing
    /// closing checkpoint, which the R-graph and the consistency machinery
    /// require. [`PatternBuilder::close`] closes a pattern under
    /// construction.
    pub fn is_closed(&self) -> bool {
        (0..self.n).all(|i| {
            let events = &self.events[i];
            events.is_empty() || matches!(events.last(), Some(PatternEvent::Checkpoint))
        })
    }

    /// Returns a copy of the pattern with one checkpoint removed — the
    /// *hindsight* experiment: was this (typically forced) checkpoint
    /// necessary, i.e. does the pattern without it still satisfy RDT?
    ///
    /// The two intervals the checkpoint separated merge; later checkpoints
    /// of the process shift down by one index. Removing the implicit
    /// initial checkpoint is not possible.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist or `checkpoint.index == 0`.
    pub fn without_checkpoint(&self, checkpoint: CheckpointId) -> Pattern {
        assert!(
            checkpoint.index > 0,
            "the initial checkpoint cannot be removed"
        );
        let target_pos = self
            .checkpoint_position(checkpoint)
            .expect("non-initial checkpoints have positions");
        let order = self.linearize().expect("existing patterns are realizable");
        let mut builder = PatternBuilder::new(self.n);
        let mut tokens: Vec<Option<PatternMessageId>> = vec![None; self.messages.len()];
        for (process, pos) in order {
            match self.events(process)[pos] {
                PatternEvent::Checkpoint => {
                    if process == checkpoint.process && pos == target_pos {
                        continue;
                    }
                    builder.checkpoint(process);
                }
                PatternEvent::Send(m) => {
                    let info = self.message(m);
                    tokens[m.0] = Some(builder.send(info.from, info.to));
                }
                PatternEvent::Deliver(m) => {
                    let token = tokens[m.0].expect("linearize orders sends first");
                    builder.deliver(token).expect("single delivery");
                }
            }
        }
        builder.build().expect("removal preserves well-formedness")
    }

    /// Returns a closed copy of the pattern: a final checkpoint is appended
    /// to every process line that does not already end with one. Returns a
    /// plain clone if the pattern is already closed.
    pub fn to_closed(&self) -> Pattern {
        let mut closed = self.clone();
        for i in 0..closed.n {
            let events = &mut closed.events[i];
            if !events.is_empty() && !matches!(events.last(), Some(PatternEvent::Checkpoint)) {
                closed.checkpoint_positions[i].push(events.len());
                events.push(PatternEvent::Checkpoint);
            }
        }
        closed
    }

    /// Produces one global execution order of all events consistent with
    /// causality: per-process order is respected and every delivery comes
    /// after its send.
    ///
    /// The order is deterministic (lowest-index runnable process first), so
    /// replays over it are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the constraints are
    /// cyclic, i.e. the pattern corresponds to no real execution.
    pub fn linearize(&self) -> Result<Vec<(ProcessId, usize)>, PatternError> {
        let total: usize = self.events.iter().map(Vec::len).sum();
        let mut order = Vec::with_capacity(total);
        let mut cursor = vec![0usize; self.n];
        let mut sent = vec![false; self.messages.len()];
        while order.len() < total {
            let mut progressed = false;
            for (i, events) in self.events.iter().enumerate() {
                // Drain every currently-runnable event of P_i before moving
                // on; this keeps the scan linear in practice.
                while cursor[i] < events.len() {
                    let event = events[cursor[i]];
                    let runnable = match event {
                        PatternEvent::Checkpoint | PatternEvent::Send(_) => true,
                        PatternEvent::Deliver(m) => sent[m.0],
                    };
                    if !runnable {
                        break;
                    }
                    if let PatternEvent::Send(m) = event {
                        sent[m.0] = true;
                    }
                    order.push((ProcessId::new(i), cursor[i]));
                    cursor[i] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return Err(PatternError::Unrealizable);
            }
        }
        Ok(order)
    }

    /// Messages delivered in some interval of each process, grouped as
    /// `(message, send_interval, deliver_interval)` triples — the raw
    /// material for R-graph edges.
    pub fn delivered_messages(
        &self,
    ) -> impl Iterator<Item = (PatternMessageId, IntervalId, IntervalId)> + '_ {
        self.messages
            .iter()
            .enumerate()
            .filter_map(move |(idx, info)| {
                let id = PatternMessageId(idx);
                info.deliver_pos?;
                Some((id, self.send_interval(id), self.deliver_interval(id)?))
            })
    }

    /// A stable 64-bit structural digest (FNV-1a over every process line
    /// and message endpoint).
    ///
    /// Two patterns have equal digests exactly when they are structurally
    /// identical for all practical purposes; the sweep engine's tests use
    /// it to assert that sequential and parallel runs produced the *same*
    /// executions without shipping whole patterns between threads.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.n as u64);
        for events in &self.events {
            mix(0xE0E0_E0E0);
            for event in events {
                match event {
                    PatternEvent::Checkpoint => mix(1),
                    PatternEvent::Send(m) => {
                        mix(2);
                        mix(m.0 as u64);
                    }
                    PatternEvent::Deliver(m) => {
                        mix(3);
                        mix(m.0 as u64);
                    }
                }
            }
        }
        for info in &self.messages {
            mix(info.from.index() as u64);
            mix(info.to.index() as u64);
        }
        hash
    }

    /// Parses a pattern serialized with [`ToJson`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: invalid
    /// field shapes, out-of-range processes, or send/delivery mismatches.
    pub fn from_json(json: &Json) -> Result<Pattern, String> {
        let n = json
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("pattern: missing numeric field `n`")? as usize;
        let lines = json
            .get("events")
            .and_then(Json::as_array)
            .ok_or("pattern: missing array field `events`")?;
        if lines.len() != n {
            return Err(format!("pattern: {} event lines for n={n}", lines.len()));
        }
        let endpoints = json
            .get("messages")
            .and_then(Json::as_array)
            .ok_or("pattern: missing array field `messages`")?;
        let mut messages: Vec<MessageInfo> = Vec::with_capacity(endpoints.len());
        for (i, pair) in endpoints.iter().enumerate() {
            let fields = pair.as_array().unwrap_or(&[]);
            let (Some(from), Some(to)) = (
                fields.first().and_then(Json::as_u64),
                fields.get(1).and_then(Json::as_u64),
            ) else {
                return Err(format!("pattern message {i}: malformed endpoints"));
            };
            if from as usize >= n || to as usize >= n {
                return Err(format!("pattern message {i}: process out of range"));
            }
            messages.push(MessageInfo {
                from: ProcessId::new(from as usize),
                to: ProcessId::new(to as usize),
                send_pos: usize::MAX,
                deliver_pos: None,
            });
        }
        let mut events: Vec<Vec<PatternEvent>> = Vec::with_capacity(n);
        let mut checkpoint_positions: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (i, line) in lines.iter().enumerate() {
            let items = line
                .as_array()
                .ok_or_else(|| format!("pattern line {i}: not an array"))?;
            let mut line_events = Vec::with_capacity(items.len());
            let mut positions = Vec::new();
            for (pos, item) in items.iter().enumerate() {
                let fields = item.as_array().unwrap_or(&[]);
                let tag = fields.first().and_then(Json::as_str);
                let message = || -> Result<usize, String> {
                    let id = fields.get(1).and_then(Json::as_u64).ok_or_else(|| {
                        format!("pattern line {i} event {pos}: missing message id")
                    })? as usize;
                    if id >= messages.len() {
                        return Err(format!(
                            "pattern line {i} event {pos}: message out of range"
                        ));
                    }
                    Ok(id)
                };
                match tag {
                    Some("c") => {
                        positions.push(pos);
                        line_events.push(PatternEvent::Checkpoint);
                    }
                    Some("s") => {
                        let id = message()?;
                        if messages[id].send_pos != usize::MAX {
                            return Err(format!("pattern: message m{id} sent twice"));
                        }
                        if messages[id].from.index() != i {
                            return Err(format!("pattern: message m{id} sent by wrong process"));
                        }
                        messages[id].send_pos = pos;
                        line_events.push(PatternEvent::Send(PatternMessageId(id)));
                    }
                    Some("d") => {
                        let id = message()?;
                        if messages[id].deliver_pos.is_some() {
                            return Err(format!("pattern: message m{id} delivered twice"));
                        }
                        if messages[id].to.index() != i {
                            return Err(format!(
                                "pattern: message m{id} delivered at wrong process"
                            ));
                        }
                        messages[id].deliver_pos = Some(pos);
                        line_events.push(PatternEvent::Deliver(PatternMessageId(id)));
                    }
                    _ => return Err(format!("pattern line {i} event {pos}: unknown tag")),
                }
            }
            events.push(line_events);
            checkpoint_positions.push(positions);
        }
        for (id, info) in messages.iter().enumerate() {
            if info.send_pos == usize::MAX {
                return Err(format!("pattern: message m{id} never sent"));
            }
        }
        let pattern = Pattern {
            n,
            events,
            messages,
            checkpoint_positions,
        };
        pattern.linearize().map_err(|e| format!("pattern: {e}"))?;
        Ok(pattern)
    }
}

impl ToJson for Pattern {
    fn to_json(&self) -> Json {
        let lines: Vec<Json> = self
            .events
            .iter()
            .map(|events| {
                Json::Arr(
                    events
                        .iter()
                        .map(|event| match event {
                            PatternEvent::Checkpoint => Json::Arr(vec!["c".to_json()]),
                            PatternEvent::Send(m) => {
                                Json::Arr(vec!["s".to_json(), Json::U64(m.0 as u64)])
                            }
                            PatternEvent::Deliver(m) => {
                                Json::Arr(vec!["d".to_json(), Json::U64(m.0 as u64)])
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let endpoints: Vec<Json> = self
            .messages
            .iter()
            .map(|info| {
                Json::Arr(vec![
                    Json::U64(info.from.index() as u64),
                    Json::U64(info.to.index() as u64),
                ])
            })
            .collect();
        Json::obj([
            ("n", Json::U64(self.n as u64)),
            ("events", Json::Arr(lines)),
            ("messages", Json::Arr(endpoints)),
        ])
    }
}

/// Builder for [`Pattern`]s.
///
/// Drive the builder in any *linear extension* of the intended causal
/// order — i.e. call [`deliver`](PatternBuilder::deliver) only after the
/// corresponding [`send`](PatternBuilder::send), which the API enforces by
/// construction since a delivery needs the send's token.
///
/// # Example: the pattern of the paper's Figure 2
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_rgraph::PatternBuilder;
///
/// let (pk, pi, pj) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
/// let mut b = PatternBuilder::new(3);
/// let m = b.send(pk, pi);
/// let m_prime = b.send(pi, pj);
/// b.deliver(m)?;         // P_i delivers m after having sent m'
/// b.deliver(m_prime)?;
/// let pattern = b.close().build()?;
/// assert_eq!(pattern.num_messages(), 2);
/// # Ok::<(), rdt_rgraph::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    events: Vec<Vec<PatternEvent>>,
    messages: Vec<MessageInfo>,
    errors: Vec<PatternError>,
}

impl PatternBuilder {
    /// Starts a pattern over `n` processes.
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            n,
            events: vec![Vec::new(); n],
            messages: Vec::new(),
            errors: Vec::new(),
        }
    }

    fn check_process(&mut self, process: ProcessId) -> bool {
        if process.index() >= self.n {
            self.errors
                .push(PatternError::ProcessOutOfRange { process, n: self.n });
            false
        } else {
            true
        }
    }

    /// `process` takes a local checkpoint; returns its id.
    pub fn checkpoint(&mut self, process: ProcessId) -> CheckpointId {
        if !self.check_process(process) {
            return CheckpointId::initial(process);
        }
        let index = 1 + self.events[process.index()]
            .iter()
            .filter(|event| matches!(event, PatternEvent::Checkpoint))
            .count() as u32;
        self.events[process.index()].push(PatternEvent::Checkpoint);
        CheckpointId::new(process, index)
    }

    /// `from` sends a message to `to`; returns the message token to pass to
    /// [`deliver`](PatternBuilder::deliver).
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> PatternMessageId {
        let id = PatternMessageId(self.messages.len());
        if !self.check_process(from) || !self.check_process(to) {
            // Record a dummy so later indices stay aligned; build() fails.
            self.messages.push(MessageInfo {
                from,
                to,
                send_pos: 0,
                deliver_pos: None,
            });
            return id;
        }
        if from == to {
            self.errors.push(PatternError::SelfMessage(id));
        }
        let send_pos = self.events[from.index()].len();
        self.events[from.index()].push(PatternEvent::Send(id));
        self.messages.push(MessageInfo {
            from,
            to,
            send_pos,
            deliver_pos: None,
        });
        id
    }

    /// The destination process of `message` delivers it.
    ///
    /// # Errors
    ///
    /// Returns an error if the message is unknown or already delivered.
    pub fn deliver(&mut self, message: PatternMessageId) -> Result<(), PatternError> {
        let info = self
            .messages
            .get_mut(message.0)
            .ok_or(PatternError::UnknownMessage(message))?;
        if info.deliver_pos.is_some() {
            return Err(PatternError::DuplicateDelivery(message));
        }
        let to = info.to;
        let pos = self.events[to.index()].len();
        info.deliver_pos = Some(pos);
        self.events[to.index()].push(PatternEvent::Deliver(message));
        Ok(())
    }

    /// Appends a final checkpoint to every process whose last event is not
    /// already a checkpoint, so that [`Pattern::is_closed`] holds.
    ///
    /// The paper assumes every event is eventually followed by a checkpoint
    /// (§2.2); closing a finite prefix realizes that assumption.
    pub fn close(&mut self) -> &mut Self {
        for i in 0..self.n {
            let process = ProcessId::new(i);
            if !self.events[i].is_empty()
                && !matches!(self.events[i].last(), Some(PatternEvent::Checkpoint))
            {
                self.checkpoint(process);
            }
        }
        self
    }

    /// Finalizes the pattern.
    ///
    /// # Errors
    ///
    /// Returns the first construction error encountered (out-of-range
    /// process, self-message, duplicate delivery).
    pub fn build(&self) -> Result<Pattern, PatternError> {
        if let Some(err) = self.errors.first() {
            return Err(err.clone());
        }
        let checkpoint_positions = self
            .events
            .iter()
            .map(|events| {
                events
                    .iter()
                    .enumerate()
                    .filter(|(_, event)| matches!(event, PatternEvent::Checkpoint))
                    .map(|(pos, _)| pos)
                    .collect()
            })
            .collect();
        Ok(Pattern {
            n: self.n,
            events: self.events.clone(),
            messages: self.messages.clone(),
            checkpoint_positions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_pattern_has_only_initial_checkpoints() {
        let pattern = PatternBuilder::new(3).build().unwrap();
        assert_eq!(pattern.num_processes(), 3);
        assert_eq!(pattern.total_checkpoints(), 3);
        assert!(pattern.is_closed());
        let cps: Vec<_> = pattern.checkpoints().collect();
        assert_eq!(cps.len(), 3);
        assert!(cps.iter().all(|c| c.index == 0));
    }

    #[test]
    fn checkpoint_indices_count_from_one() {
        let mut b = PatternBuilder::new(1);
        let c1 = b.checkpoint(p(0));
        let c2 = b.checkpoint(p(0));
        assert_eq!(c1, CheckpointId::new(p(0), 1));
        assert_eq!(c2, CheckpointId::new(p(0), 2));
        let pattern = b.build().unwrap();
        assert_eq!(pattern.checkpoint_count(p(0)), 3);
        assert_eq!(pattern.last_checkpoint_index(p(0)), 2);
    }

    #[test]
    fn intervals_assigned_correctly() {
        let mut b = PatternBuilder::new(2);
        let m1 = b.send(p(0), p(1)); // in I_{0,1}
        b.checkpoint(p(0)); // C_{0,1}
        let m2 = b.send(p(0), p(1)); // in I_{0,2}
        b.deliver(m1).unwrap(); // in I_{1,1}
        b.checkpoint(p(1)); // C_{1,1}
        b.deliver(m2).unwrap(); // in I_{1,2}
        let pattern = b.close().build().unwrap();
        assert_eq!(pattern.send_interval(m1), IntervalId::new(p(0), 1));
        assert_eq!(pattern.send_interval(m2), IntervalId::new(p(0), 2));
        assert_eq!(pattern.deliver_interval(m1), Some(IntervalId::new(p(1), 1)));
        assert_eq!(pattern.deliver_interval(m2), Some(IntervalId::new(p(1), 2)));
    }

    #[test]
    fn in_transit_message_has_no_deliver_interval() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        let pattern = b.close().build().unwrap();
        assert_eq!(pattern.deliver_interval(m), None);
        assert_eq!(pattern.delivered_messages().count(), 0);
    }

    #[test]
    fn close_appends_checkpoints_only_where_needed() {
        let mut b = PatternBuilder::new(3);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        b.checkpoint(p(1));
        // P2 has no events; P1 already ends with a checkpoint.
        let pattern = b.close().build().unwrap();
        assert!(pattern.is_closed());
        assert_eq!(pattern.checkpoint_count(p(0)), 2);
        assert_eq!(pattern.checkpoint_count(p(1)), 2);
        assert_eq!(pattern.checkpoint_count(p(2)), 1);
    }

    #[test]
    fn duplicate_delivery_rejected() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        assert_eq!(b.deliver(m), Err(PatternError::DuplicateDelivery(m)));
    }

    #[test]
    fn unknown_message_rejected() {
        let mut b = PatternBuilder::new(2);
        assert_eq!(
            b.deliver(PatternMessageId(7)),
            Err(PatternError::UnknownMessage(PatternMessageId(7)))
        );
    }

    #[test]
    fn self_message_rejected_at_build() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(0));
        assert_eq!(b.build().unwrap_err(), PatternError::SelfMessage(m));
    }

    #[test]
    fn out_of_range_process_rejected_at_build() {
        let mut b = PatternBuilder::new(2);
        b.checkpoint(p(5));
        assert!(matches!(
            b.build(),
            Err(PatternError::ProcessOutOfRange { .. })
        ));
    }

    #[test]
    fn checkpoint_position_lookup() {
        let mut b = PatternBuilder::new(1);
        b.checkpoint(p(0));
        let pattern = b.build().unwrap();
        assert_eq!(
            pattern.checkpoint_position(CheckpointId::new(p(0), 0)),
            None
        );
        assert_eq!(
            pattern.checkpoint_position(CheckpointId::new(p(0), 1)),
            Some(0)
        );
    }

    #[test]
    fn checkpoint_index_at_positions() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.checkpoint(p(0));
        b.deliver(m).unwrap();
        b.checkpoint(p(0));
        let pattern = b.build().unwrap();
        assert_eq!(pattern.checkpoint_index_at(p(0), 1), 1);
        assert_eq!(pattern.checkpoint_index_at(p(0), 2), 2);
    }

    #[test]
    fn without_checkpoint_merges_intervals() {
        // P0: send m1, C_{0,1}, send m2, C_{0,2}; removing C_{0,1} puts
        // both sends into one interval closed by the (renumbered) C_{0,1}.
        let mut b = PatternBuilder::new(2);
        let m1 = b.send(p(0), p(1));
        b.checkpoint(p(0));
        let m2 = b.send(p(0), p(1));
        b.checkpoint(p(0));
        b.deliver(m1).unwrap();
        b.deliver(m2).unwrap();
        let pattern = b.close().build().unwrap();
        assert_eq!(pattern.send_interval(m1).index, 1);
        assert_eq!(pattern.send_interval(m2).index, 2);

        let surgered = pattern.without_checkpoint(CheckpointId::new(p(0), 1));
        assert_eq!(
            surgered.checkpoint_count(p(0)),
            pattern.checkpoint_count(p(0)) - 1
        );
        assert_eq!(surgered.send_interval(PatternMessageId(0)).index, 1);
        assert_eq!(surgered.send_interval(PatternMessageId(1)).index, 1);
        assert!(surgered.linearize().is_ok());
    }

    #[test]
    fn without_checkpoint_on_figure_2_restores_the_violation() {
        // figure_2_broken is figure_2_unbroken plus the forced checkpoint;
        // removing it must recreate an RDT-violating pattern.
        let broken_chain_fixed = crate::paper_figures::figure_2_broken();
        assert!(crate::RdtChecker::new(&broken_chain_fixed).check().holds());
        // The forced checkpoint is C_{i,1} of process 1 (P_i).
        let reverted = broken_chain_fixed.without_checkpoint(CheckpointId::new(p(1), 1));
        assert!(!crate::RdtChecker::new(&reverted).check().holds());
    }

    #[test]
    #[should_panic(expected = "initial checkpoint")]
    fn without_initial_checkpoint_panics() {
        let pattern = PatternBuilder::new(1).build().unwrap();
        let _ = pattern.without_checkpoint(CheckpointId::new(p(0), 0));
    }

    #[test]
    fn error_display_messages() {
        let e = PatternError::DuplicateDelivery(PatternMessageId(3));
        assert!(e.to_string().contains("m3"));
        let e = PatternError::SelfMessage(PatternMessageId(0));
        assert!(e.to_string().contains("itself"));
    }
}
