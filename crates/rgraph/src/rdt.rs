//! Offline verification of the Rollback-Dependency Trackability property
//! (Definition 3.4).

use std::fmt;

use rdt_causality::CheckpointId;

use crate::{Pattern, PatternAnalysis, PatternError};

/// One R-path that is not on-line trackable: the witness of an RDT
/// violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdtViolation {
    /// Origin of the untrackable R-path.
    pub from: CheckpointId,
    /// Destination of the untrackable R-path.
    pub to: CheckpointId,
    /// One concrete R-path from `from` to `to` (checkpoint sequence).
    pub r_path: Vec<CheckpointId>,
}

impl fmt::Display for RdtViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "untrackable R-path {} -> {} (", self.from, self.to)?;
        for (i, c) in self.r_path.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Result of an RDT check.
#[derive(Debug, Clone)]
pub struct RdtReport {
    violations: Vec<RdtViolation>,
    pairs_checked: usize,
    r_paths_found: usize,
}

impl RdtReport {
    /// Whether the pattern satisfies RDT.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// The untrackable R-paths found (up to the checker's limit).
    pub fn violations(&self) -> &[RdtViolation] {
        &self.violations
    }

    /// Number of ordered checkpoint pairs examined.
    ///
    /// Exact even when violation collection stops at the checker's limit:
    /// the count comes from the popcount of the reachability closure, not
    /// from how far the enumeration got.
    pub fn pairs_checked(&self) -> usize {
        self.pairs_checked
    }

    /// Number of pairs connected by an R-path (trackable or not). Like
    /// [`RdtReport::pairs_checked`], exact regardless of the violation
    /// limit.
    pub fn r_paths_found(&self) -> usize {
        self.r_paths_found
    }
}

/// Checks whether a pattern satisfies **RDT**: every R-path of its R-graph
/// must be *on-line trackable* — detectable by transitive dependency
/// vectors.
///
/// # Method
///
/// 1. Close the pattern (the paper assumes every event is eventually
///    followed by a checkpoint).
/// 2. Compute, by exact offline replay, the transitive dependency vector
///    `TDV_j^y` saved at every checkpoint `C_{j,y}` (the knowledge Wang's
///    mechanism accumulates when the vector rides on *every* message).
/// 3. Compute the R-graph's transitive closure.
/// 4. RDT holds iff for every R-path `C_{i,x} → C_{j,y}`:
///    `i = j ∧ x ≤ y`, or `TDV_j^y[i] ≥ x`.
///
/// Step 4 is the operational reading of Definition 3.3: a same-process
/// dependency is always trackable forward, and a cross-process dependency
/// is trackable exactly when some causal message chain carried it (then the
/// replayed `TDV` records an interval index at least as large). The paper
/// notes its definitions are equivalent to Wang's; in particular a
/// dependency witnessed by a causal chain from a *later* interval
/// (`TDV_j^y[i] = z > x`) subsumes the dependency on `C_{i,x}`, because
/// rolling `P_i` back before `C_{i,x}` also rolls it back before `C_{i,z}`.
///
/// # Example
///
/// ```rust
/// use rdt_rgraph::{paper_figures, RdtChecker};
///
/// // Figure 2, non-causal chain left unbroken: RDT is violated.
/// let report = RdtChecker::new(&paper_figures::figure_2_unbroken()).check();
/// assert!(!report.holds());
/// // Same scenario with the forced checkpoint: RDT holds.
/// let report = RdtChecker::new(&paper_figures::figure_2_broken()).check();
/// assert!(report.holds());
/// ```
#[derive(Debug)]
pub struct RdtChecker {
    pattern: Pattern,
    max_violations: usize,
}

impl RdtChecker {
    /// Prepares a checker for `pattern` (a closed copy is taken).
    pub fn new(pattern: &Pattern) -> Self {
        RdtChecker {
            pattern: pattern.to_closed(),
            max_violations: 16,
        }
    }

    /// Limits how many violations [`check`](RdtChecker::check) collects
    /// before stopping early (default 16). At least one violation is
    /// always collected, so a failing report always carries a concrete
    /// counterexample.
    pub fn max_violations(mut self, limit: usize) -> Self {
        self.max_violations = limit;
        self
    }

    /// Runs the check.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is unrealizable (cannot happen for patterns
    /// produced by [`PatternBuilder`](crate::PatternBuilder) or by the
    /// simulator); use [`try_check`](RdtChecker::try_check) to handle that
    /// case explicitly.
    pub fn check(&self) -> RdtReport {
        self.try_check().expect("pattern must be realizable")
    }

    /// Runs the check, reporting unrealizable patterns as an error.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the pattern admits no
    /// execution order.
    pub fn try_check(&self) -> Result<RdtReport, PatternError> {
        let analysis = PatternAnalysis::from_closed(self.pattern.clone());
        check_with_artifacts(&analysis, self.max_violations)
    }

    /// Runs the check off the shared artifacts of `analysis` instead of
    /// computing fresh ones — the entry point for callers that also run
    /// the chain-doubling characterizations on the same pattern. The
    /// checker's own pattern is not consulted; pass the analysis of the
    /// pattern this checker was built for.
    ///
    /// # Panics
    ///
    /// Panics if the analysis's pattern is unrealizable; use
    /// [`try_check_with`](RdtChecker::try_check_with) to handle that case.
    pub fn check_with(&self, analysis: &PatternAnalysis) -> RdtReport {
        self.try_check_with(analysis)
            .expect("pattern must be realizable")
    }

    /// Fallible variant of [`check_with`](RdtChecker::check_with).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the pattern admits no
    /// execution order.
    pub fn try_check_with(&self, analysis: &PatternAnalysis) -> Result<RdtReport, PatternError> {
        check_with_artifacts(analysis, self.max_violations)
    }
}

/// The R-path scan over shared artifacts: every reachable checkpoint pair
/// must be trackable by the replayed transitive dependency vectors.
///
/// Violation collection stops at `max_violations` (at least one is always
/// collected), but the reported pair counts stay exact: both equal the
/// popcount of the reachability closure
/// ([`Reachability::total_reachable_pairs`](crate::Reachability::total_reachable_pairs)),
/// which is what a full enumeration would have counted.
pub(crate) fn check_with_artifacts(
    analysis: &PatternAnalysis,
    max_violations: usize,
) -> Result<RdtReport, PatternError> {
    let annotations = analysis.annotations()?;
    let graph = analysis.rgraph();
    let reach = analysis.reachability();

    let total_pairs = reach.total_reachable_pairs();
    let mut violations = Vec::new();
    'scan: for from in analysis.pattern().checkpoints() {
        for to in reach.reachable_from(from) {
            if annotations.trackable(from, to) {
                continue;
            }
            if violations.len() < max_violations.max(1) {
                // Reachable pairs always have a concrete path; if the
                // witness search ever disagreed with the closure, keep
                // the violation (verdict and counts stay exact) with an
                // empty witness rather than aborting the whole check.
                let r_path = graph.find_path(from, to).unwrap_or_default();
                violations.push(RdtViolation { from, to, r_path });
            } else {
                // Verdict settled and limit reached; the counts are
                // already known from the closure popcount.
                break 'scan;
            }
        }
    }
    Ok(RdtReport {
        violations,
        pairs_checked: total_pairs,
        r_paths_found: total_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;
    use crate::PatternBuilder;
    use rdt_causality::ProcessId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn c(i: usize, x: u32) -> CheckpointId {
        CheckpointId::new(p(i), x)
    }

    #[test]
    fn empty_pattern_satisfies_rdt() {
        let pattern = PatternBuilder::new(4).build().unwrap();
        assert!(RdtChecker::new(&pattern).check().holds());
    }

    #[test]
    fn purely_causal_pattern_satisfies_rdt() {
        // A relay chain P0 -> P1 -> P2 with deliveries before sends.
        let mut b = PatternBuilder::new(3);
        let m1 = b.send(p(0), p(1));
        b.deliver(m1).unwrap();
        let m2 = b.send(p(1), p(2));
        b.deliver(m2).unwrap();
        let pattern = b.close().build().unwrap();
        let report = RdtChecker::new(&pattern).check();
        assert!(report.holds());
        assert!(report.r_paths_found() > 0);
    }

    #[test]
    fn figure_1_violates_rdt_via_m3_m2() {
        let report = RdtChecker::new(&paper_figures::figure_1()).check();
        assert!(!report.holds());
        // The chain [m3 m2] from C_{k,1} to C_{i,2} has no causal sibling.
        assert!(
            report
                .violations()
                .iter()
                .any(|v| v.from == c(2, 1) && v.to == c(0, 2)),
            "expected the C_(k,1) -> C_(i,2) hidden dependency among {:?}",
            report.violations()
        );
    }

    #[test]
    fn figure_2_cases() {
        assert!(!RdtChecker::new(&paper_figures::figure_2_unbroken())
            .check()
            .holds());
        assert!(RdtChecker::new(&paper_figures::figure_2_broken())
            .check()
            .holds());
    }

    #[test]
    fn figure_4_cases() {
        let report = RdtChecker::new(&paper_figures::figure_4_unbroken()).check();
        assert!(!report.holds());
        // The violation is the same-process path C_{k,z} -> C_{k,z-1}
        // (processes: i=0, k=1).
        assert!(report
            .violations()
            .iter()
            .any(|v| v.from.process == p(1) && v.to.process == p(1) && v.from.index > v.to.index));
        assert!(RdtChecker::new(&paper_figures::figure_4_broken())
            .check()
            .holds());
    }

    #[test]
    fn unclosed_pattern_is_closed_before_checking() {
        // The hidden dependency only materializes once intervals are
        // closed; the checker must still find it.
        let mut b = PatternBuilder::new(3);
        let m_prime = b.send(p(1), p(2));
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        b.deliver(m_prime).unwrap();
        let pattern = b.build().unwrap(); // NOT closed
        assert!(!pattern.is_closed());
        assert!(!RdtChecker::new(&pattern).check().holds());
    }

    #[test]
    fn violation_display_is_readable() {
        let report = RdtChecker::new(&paper_figures::figure_2_unbroken()).check();
        let text = report.violations()[0].to_string();
        assert!(text.contains("untrackable R-path"));
        assert!(text.contains("->"));
    }

    #[test]
    fn max_violations_limits_collection() {
        let report = RdtChecker::new(&paper_figures::figure_1())
            .max_violations(1)
            .try_check()
            .unwrap();
        assert_eq!(report.violations().len(), 1);
    }

    #[test]
    fn counts_stay_exact_when_collection_stops_early() {
        // Four repetitions of the figure-2 motif (a send racing past a
        // delivery) produce four independent hidden dependencies.
        let mut b = PatternBuilder::new(3);
        for _ in 0..4 {
            let m_prime = b.send(p(1), p(2));
            let m = b.send(p(0), p(1));
            b.deliver(m).unwrap();
            b.deliver(m_prime).unwrap();
            for i in 0..3 {
                b.checkpoint(p(i));
            }
        }
        let pattern = b.build().unwrap();
        let full = RdtChecker::new(&pattern).check();
        assert!(full.violations().len() >= 4);

        // With the limit at 1 the scan stops at the second violation, but
        // pairs_checked / r_paths_found must still equal the full scan's
        // counts (they come from the closure popcount, not the scan).
        let truncated = RdtChecker::new(&pattern).max_violations(1).check();
        assert_eq!(truncated.violations().len(), 1);
        assert_eq!(truncated.pairs_checked(), full.pairs_checked());
        assert_eq!(truncated.r_paths_found(), full.r_paths_found());
        // And both equal the closure popcount.
        let analysis = crate::PatternAnalysis::new(&pattern);
        assert_eq!(
            full.pairs_checked(),
            analysis.reachability().total_reachable_pairs()
        );
    }

    #[test]
    fn check_with_reuses_shared_artifacts() {
        let pattern = paper_figures::figure_2_unbroken();
        let analysis = crate::PatternAnalysis::new(&pattern);
        let shared = RdtChecker::new(&pattern).check_with(&analysis);
        let fresh = RdtChecker::new(&pattern).check();
        assert_eq!(shared.holds(), fresh.holds());
        assert_eq!(shared.violations(), fresh.violations());
        assert_eq!(shared.pairs_checked(), fresh.pairs_checked());
        assert!(!analysis.is_untouched());
    }

    #[test]
    fn violations_carry_concrete_paths() {
        let report = RdtChecker::new(&paper_figures::figure_1()).check();
        for v in report.violations() {
            assert_eq!(v.r_path.first(), Some(&v.from));
            assert_eq!(v.r_path.last(), Some(&v.to));
            assert!(v.r_path.len() >= 2);
        }
    }
}
