//! Minimum and maximum consistent global checkpoints containing a given
//! set of local checkpoints (Wang's theory; Corollary 4.5 of the paper).

use rdt_causality::{CheckpointId, ProcessId};

use crate::consistency::{is_consistent, GlobalCheckpoint};
use crate::Pattern;

/// Computes the **minimum** consistent global checkpoint containing every
/// checkpoint of `members`, or `None` if no consistent global checkpoint
/// contains them all.
///
/// The computation is the least fixpoint of the orphan constraints: start
/// from the members (0 elsewhere) and, whenever a message's delivery is
/// included while its send is not, raise the sender's entry to include the
/// send. The result fails to exist exactly when the propagation would push
/// a member's own entry past its index (a Z-path returns into a member) or
/// demand a checkpoint beyond a process's last one.
///
/// Under RDT, for a single member `C_{i,x}` the result equals the
/// transitive dependency vector `TDV_i^x` saved with the checkpoint —
/// Corollary 4.5; the integration tests cross-validate the two.
///
/// # Panics
///
/// Panics if a member's checkpoint does not exist in the pattern.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{CheckpointId, ProcessId};
/// use rdt_rgraph::{min_max, paper_figures};
///
/// let (pattern, f) = paper_figures::figure_1_with_handles();
/// // The minimum consistent GC containing C_{i,2} must include C_{j,1}
/// // (m2's send), which in turn includes delivery of m3 and so needs
/// // C_{k,1}.
/// let gc = min_max::min_consistent_containing(
///     &pattern,
///     &[CheckpointId::new(f.pi, 2)],
/// ).unwrap();
/// assert_eq!(gc.as_slice(), &[2, 1, 1]);
/// ```
pub fn min_consistent_containing(
    pattern: &Pattern,
    members: &[CheckpointId],
) -> Option<GlobalCheckpoint> {
    let n = pattern.num_processes();
    let mut gc = GlobalCheckpoint::initial(n);
    for &member in members {
        assert!(
            member.index <= pattern.last_checkpoint_index(member.process),
            "member {member} does not exist in the pattern"
        );
        gc.set(member.process, gc.get(member.process).max(member.index));
    }

    // Least fixpoint of: deliver included => send included.
    let delivered: Vec<_> = pattern.delivered_messages().collect();
    loop {
        let mut changed = false;
        for &(_, send, deliver) in &delivered {
            if deliver.index <= gc.get(deliver.process) && send.index > gc.get(send.process) {
                // The closing checkpoint C_{send.process, send.index} must
                // exist for the send to be includable.
                if send.index > pattern.last_checkpoint_index(send.process) {
                    return None;
                }
                gc.set(send.process, send.index);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // The fixpoint contains every member iff none was pushed past itself.
    let contains_all = members.iter().all(|&m| gc.get(m.process) == m.index);
    if !contains_all {
        return None;
    }
    debug_assert!(is_consistent(pattern, &gc));
    Some(gc)
}

/// Computes the **maximum** consistent global checkpoint containing every
/// checkpoint of `members`, or `None` if no consistent global checkpoint
/// contains them all.
///
/// Greatest fixpoint of the dual constraint: start from the members (each
/// process's last checkpoint elsewhere) and, whenever a message's send is
/// excluded while its delivery is included, lower the receiver's entry to
/// exclude the delivery.
///
/// # Panics
///
/// Panics if a member's checkpoint does not exist in the pattern.
pub fn max_consistent_containing(
    pattern: &Pattern,
    members: &[CheckpointId],
) -> Option<GlobalCheckpoint> {
    let n = pattern.num_processes();
    let mut gc = GlobalCheckpoint::new(
        (0..n)
            .map(|i| pattern.last_checkpoint_index(ProcessId::new(i)))
            .collect(),
    );
    for &member in members {
        assert!(
            member.index <= pattern.last_checkpoint_index(member.process),
            "member {member} does not exist in the pattern"
        );
        gc.set(member.process, gc.get(member.process).min(member.index));
    }

    let delivered: Vec<_> = pattern.delivered_messages().collect();
    loop {
        let mut changed = false;
        for &(_, send, deliver) in &delivered {
            if send.index > gc.get(send.process) && deliver.index <= gc.get(deliver.process) {
                // Exclude the delivery: receiver must stop before it.
                gc.set(deliver.process, deliver.index - 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let contains_all = members.iter().all(|&m| gc.get(m.process) == m.index);
    if !contains_all {
        return None;
    }
    debug_assert!(is_consistent(pattern, &gc));
    Some(gc)
}

/// Computes the minimum consistent global checkpoint containing `members`
/// through **R-graph reachability** instead of the orphan fixpoint: entry
/// `j` is the largest `z` such that some member is reachable from
/// `C_{j,z}` in the R-graph (or the member's own index on its process).
///
/// The rollback semantics of R-paths make the two formulations coincide —
/// `C_{j,z} → C` means "rolling `P_j` below `C_{j,z}` forces rolling below
/// `C`", i.e. any global checkpoint containing `C` must include `C_{j,z}`.
/// This function exists as an *independent witness* for
/// [`min_consistent_containing`]; the property tests assert they always
/// agree.
///
/// # Panics
///
/// Panics if a member's checkpoint does not exist in the pattern.
pub fn min_consistent_via_rgraph(
    pattern: &Pattern,
    members: &[CheckpointId],
) -> Option<GlobalCheckpoint> {
    let reach = crate::RGraph::new(pattern).reachability();
    min_consistent_via_reach(pattern, &reach, members)
}

/// [`min_consistent_via_rgraph`] off a shared [`crate::PatternAnalysis`] —
/// reuses the cached R-graph closure instead of rebuilding it. Operates on
/// the analysis's **closed** pattern (the two formulations agree on closed
/// patterns; closing can only append trailing checkpoints).
///
/// # Panics
///
/// Panics if a member's checkpoint does not exist in the pattern.
pub fn min_consistent_via_rgraph_with(
    analysis: &crate::PatternAnalysis,
    members: &[CheckpointId],
) -> Option<GlobalCheckpoint> {
    min_consistent_via_reach(analysis.pattern(), analysis.reachability(), members)
}

fn min_consistent_via_reach(
    pattern: &Pattern,
    reach: &crate::Reachability,
    members: &[CheckpointId],
) -> Option<GlobalCheckpoint> {
    let n = pattern.num_processes();
    let mut gc = GlobalCheckpoint::initial(n);
    for &member in members {
        assert!(
            member.index <= pattern.last_checkpoint_index(member.process),
            "member {member} does not exist in the pattern"
        );
        gc.set(member.process, gc.get(member.process).max(member.index));
    }
    for j in 0..n {
        let p = ProcessId::new(j);
        // Largest z whose checkpoint reaches some member.
        for z in (gc.get(p) + 1..=pattern.last_checkpoint_index(p)).rev() {
            let from = CheckpointId::new(p, z);
            if members.iter().any(|&m| reach.reaches(from, m)) {
                gc.set(p, z);
                break;
            }
        }
    }
    // Exists iff no member was pushed past itself.
    members
        .iter()
        .all(|&m| gc.get(m.process) == m.index)
        .then_some(gc)
}

/// Whether the set of checkpoints can be extended to a consistent global
/// checkpoint at all.
///
/// For patterns satisfying RDT, any set of pairwise causally-unrelated
/// checkpoints is extendable (property (1) of the paper's introduction);
/// the integration tests verify this on protocol-generated patterns.
pub fn extendable(pattern: &Pattern, members: &[CheckpointId]) -> bool {
    min_consistent_containing(pattern, members).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;

    fn c(i: usize, x: u32) -> CheckpointId {
        CheckpointId::new(ProcessId::new(i), x)
    }

    #[test]
    fn min_of_initial_is_initial() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let gc = min_consistent_containing(&pattern, &[c(0, 0)]).unwrap();
        assert_eq!(gc.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn min_includes_transitive_send_constraints() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        // C_{j,2} includes deliveries of m1 (from I_{i,1}) and m5 (from
        // I_{i,3}): P_i must advance to 3; C_{i,3} includes delivery of m2
        // (send I_{j,1}, already in), nothing more; m3's delivery (I_{j,1})
        // forces P_k to 1.
        let gc = min_consistent_containing(&pattern, &[c(1, 2)]).unwrap();
        assert_eq!(gc.as_slice(), &[3, 2, 1]);
        assert!(is_consistent(&pattern, &gc));
    }

    #[test]
    fn min_fails_for_inconsistent_member_sets() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        // (C_{i,2}, C_{j,2}) is inconsistent (orphan m5): no consistent GC
        // contains both.
        assert_eq!(
            min_consistent_containing(&pattern, &[c(0, 2), c(1, 2)]),
            None
        );
        assert!(!extendable(&pattern, &[c(0, 2), c(1, 2)]));
    }

    #[test]
    fn min_fails_for_useless_checkpoint() {
        // In figure_4_unbroken, C_{k,1} (process 1) is on a Z-cycle.
        let pattern = paper_figures::figure_4_unbroken();
        assert_eq!(min_consistent_containing(&pattern, &[c(1, 1)]), None);
        // While C_{i,1} is fine.
        assert!(min_consistent_containing(&pattern, &[c(0, 1)]).is_some());
    }

    #[test]
    fn max_of_last_is_last() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let last = GlobalCheckpoint::new(vec![3, 3, 3]);
        assert!(is_consistent(&pattern, &last));
        let gc = max_consistent_containing(&pattern, &[c(0, 3)]).unwrap();
        assert_eq!(gc.as_slice(), &[3, 3, 3]);
    }

    #[test]
    fn max_excludes_orphan_deliveries() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        // Fix C_{i,2}: m5 (sent in I_{i,3}) must not be delivered, so P_j
        // stops at 1; then m4/m6 (sent I_{j,2}) must not be delivered at
        // P_k... m4 delivered I_{k,2}: P_k stops at 1; m7 sent I_{k,3} not
        // included, delivered I_{j,3} > 1 fine.
        let gc = max_consistent_containing(&pattern, &[c(0, 2)]).unwrap();
        assert_eq!(gc.as_slice(), &[2, 1, 1]);
        assert!(is_consistent(&pattern, &gc));
    }

    #[test]
    fn min_le_max_when_both_exist() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        for x in 0..=3 {
            let member = [c(0, x)];
            let min = min_consistent_containing(&pattern, &member);
            let max = max_consistent_containing(&pattern, &member);
            match (min, max) {
                (Some(lo), Some(hi)) => assert!(lo.le(&hi), "min {lo} > max {hi}"),
                (None, None) => {}
                (lo, hi) => panic!("min/max existence must agree, got {lo:?} / {hi:?}"),
            }
        }
    }

    #[test]
    fn rgraph_formulation_agrees_with_fixpoint() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        for i in 0..3 {
            for x in 0..=3u32 {
                let member = [c(i, x)];
                assert_eq!(
                    min_consistent_containing(&pattern, &member),
                    min_consistent_via_rgraph(&pattern, &member),
                    "disagreement for {}",
                    member[0]
                );
            }
        }
        // Pairs too, including an inconsistent one.
        assert_eq!(
            min_consistent_via_rgraph(&pattern, &[c(0, 2), c(1, 2)]),
            None,
            "orphan pair must be unextendable in both formulations"
        );
        assert_eq!(
            min_consistent_containing(&pattern, &[c(0, 1), c(2, 1)]),
            min_consistent_via_rgraph(&pattern, &[c(0, 1), c(2, 1)]),
        );
    }

    #[test]
    fn rgraph_formulation_detects_useless_checkpoints() {
        let pattern = paper_figures::figure_4_unbroken();
        assert_eq!(min_consistent_via_rgraph(&pattern, &[c(1, 1)]), None);
    }

    #[test]
    fn shared_analysis_variant_agrees() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let analysis = crate::PatternAnalysis::new(&pattern);
        for i in 0..3 {
            for x in 0..=3u32 {
                let member = [c(i, x)];
                assert_eq!(
                    min_consistent_via_rgraph(&pattern, &member),
                    min_consistent_via_rgraph_with(&analysis, &member),
                    "disagreement for {}",
                    member[0]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn missing_member_panics() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let _ = min_consistent_containing(&pattern, &[c(0, 9)]);
    }
}
