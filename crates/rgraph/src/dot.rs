//! Graphviz (DOT) export of patterns and R-graphs, for debugging and
//! documentation.

use std::fmt::Write as _;

use rdt_causality::ProcessId;

use crate::{Pattern, PatternEvent, RGraph};

/// Renders the pattern as a DOT digraph: one horizontal rank per process,
/// checkpoints as boxes, message arrows between send and delivery events.
///
/// # Example
///
/// ```rust
/// use rdt_rgraph::{dot, paper_figures};
///
/// let text = dot::pattern_to_dot(&paper_figures::figure_1());
/// assert!(text.starts_with("digraph pattern"));
/// ```
pub fn pattern_to_dot(pattern: &Pattern) -> String {
    let mut out = String::from("digraph pattern {\n  rankdir=LR;\n  node [fontsize=10];\n");
    // One node per event (plus the implicit initial checkpoints); messages
    // as cross-process edges.
    for i in 0..pattern.num_processes() {
        let p = ProcessId::new(i);
        let _ = writeln!(out, "  subgraph cluster_p{i} {{ label=\"P{i}\";");
        let _ = writeln!(out, "    e{i}_init [label=\"C({i},0)\", shape=box];");
        let mut prev = format!("e{i}_init");
        for (pos, event) in pattern.events(p).iter().enumerate() {
            let name = format!("e{i}_{pos}");
            let label = match event {
                PatternEvent::Checkpoint => {
                    format!("C({i},{})", pattern.checkpoint_index_at(p, pos))
                }
                PatternEvent::Send(m) => format!("s({m})"),
                PatternEvent::Deliver(m) => format!("d({m})"),
            };
            let shape = if matches!(event, PatternEvent::Checkpoint) {
                "box"
            } else {
                "circle"
            };
            let _ = writeln!(out, "    {name} [label=\"{label}\", shape={shape}];");
            let _ = writeln!(out, "    {prev} -> {name} [style=dotted, arrowhead=none];");
            prev = name;
        }
        let _ = writeln!(out, "  }}");
    }
    for (idx, info) in pattern.messages().iter().enumerate() {
        if let Some(deliver_pos) = info.deliver_pos {
            let _ = writeln!(
                out,
                "  e{}_{} -> e{}_{} [label=\"m{idx}\"];",
                info.from.index(),
                info.send_pos,
                info.to.index(),
                deliver_pos
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the R-graph as a DOT digraph (nodes are checkpoints).
///
/// # Example
///
/// ```rust
/// use rdt_rgraph::{dot, paper_figures, RGraph};
///
/// let graph = RGraph::new(&paper_figures::figure_1());
/// let text = dot::rgraph_to_dot(&graph);
/// assert!(text.starts_with("digraph rgraph"));
/// ```
pub fn rgraph_to_dot(graph: &RGraph) -> String {
    let mut out =
        String::from("digraph rgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for node in 0..graph.num_nodes() {
        let c = graph.checkpoint(crate::NodeId(node));
        let _ = writeln!(out, "  n{node} [label=\"{c}\"];");
        for succ in graph.successors(crate::NodeId(node)) {
            let _ = writeln!(out, "  n{node} -> n{};", succ.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;

    #[test]
    fn pattern_dot_mentions_all_messages() {
        let text = pattern_to_dot(&paper_figures::figure_1());
        for m in 0..7 {
            assert!(text.contains(&format!("m{m}")), "missing message m{m}");
        }
        assert!(text.contains("C(0,0)"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn rgraph_dot_has_nodes_and_edges() {
        let graph = RGraph::new(&paper_figures::figure_1());
        let text = rgraph_to_dot(&graph);
        assert!(text.contains("C(2,1)"));
        assert!(text.contains("->"));
    }
}
