//! Message chains (zigzag paths) and their classification (§3.2).

use std::fmt;

use rdt_causality::{CheckpointId, ProcessId};

use crate::bitset::{BitMatrix, BitRow};
use crate::closure;
use crate::{Pattern, PatternMessageId};

/// A sequence of messages `[m_1, …, m_q]` claimed to form a message chain
/// (Definition 3.1 — called a *zigzag path* by Netzer & Xu).
///
/// Validate and classify against a pattern with [`MessageChain::is_chain`],
/// [`MessageChain::is_causal`] and [`MessageChain::is_simple`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MessageChain(pub Vec<PatternMessageId>);

impl MessageChain {
    /// Builds a chain from its messages.
    pub fn new<I: IntoIterator<Item = PatternMessageId>>(messages: I) -> Self {
        MessageChain(messages.into_iter().collect())
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the chain is empty (an empty sequence is not a valid chain).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether this message sequence satisfies Definition 3.1 in
    /// `pattern`: for each consecutive pair, `deliver(m_v) ∈ I_{k,s}`,
    /// `send(m_{v+1}) ∈ I_{k,t}` with `s ≤ t` (same process `k`), and every
    /// message but possibly the last is delivered. A single delivered
    /// message is always a chain.
    ///
    /// # Panics
    ///
    /// Panics if a message id is out of range for the pattern.
    pub fn is_chain(&self, pattern: &Pattern) -> bool {
        if self.0.is_empty() {
            return false;
        }
        // Every message must be delivered (all participate in links or in
        // the chain's destination interval).
        if self
            .0
            .iter()
            .any(|&m| pattern.message(m).deliver_pos.is_none())
        {
            return false;
        }
        self.0.windows(2).all(|w| {
            let (m, m_next) = (w[0], w[1]);
            let deliver = pattern.deliver_interval(m).expect("checked delivered");
            let send = pattern.send_interval(m_next);
            deliver.process == send.process && deliver.index <= send.index
        })
    }

    /// Whether the chain is *causal* (Definition 3.2): the delivery event
    /// of each message (but the last) occurs before the send event of the
    /// next message.
    ///
    /// # Panics
    ///
    /// Panics if a message id is out of range.
    pub fn is_causal(&self, pattern: &Pattern) -> bool {
        self.is_chain(pattern)
            && self.0.windows(2).all(|w| {
                let m = pattern.message(w[0]);
                let m_next = pattern.message(w[1]);
                m.to == m_next.from && m.deliver_pos.expect("checked delivered") < m_next.send_pos
            })
    }

    /// Whether the chain is causal and *simple* (§4.1): each delivery
    /// occurs before and **in the same checkpoint interval** as the next
    /// send — no intermediate local checkpoint sits inside the chain.
    ///
    /// # Panics
    ///
    /// Panics if a message id is out of range.
    pub fn is_simple(&self, pattern: &Pattern) -> bool {
        self.is_causal(pattern)
            && self.0.windows(2).all(|w| {
                let deliver = pattern.deliver_interval(w[0]).expect("checked delivered");
                let send = pattern.send_interval(w[1]);
                deliver.index == send.index
            })
    }

    /// The checkpoint the chain is *from*: `C_{i,x}` where
    /// `send(m_1) ∈ I_{i,x}`.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or a message id is out of range.
    pub fn from_checkpoint(&self, pattern: &Pattern) -> CheckpointId {
        let send = pattern.send_interval(*self.0.first().expect("chain not empty"));
        CheckpointId::new(send.process, send.index)
    }

    /// The checkpoint the chain is *to*: `C_{j,y}` where
    /// `deliver(m_q) ∈ I_{j,y}`. Returns `None` if the last message is in
    /// transit.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or a message id is out of range.
    pub fn to_checkpoint(&self, pattern: &Pattern) -> Option<CheckpointId> {
        let deliver = pattern.deliver_interval(*self.0.last().expect("chain not empty"))?;
        Some(CheckpointId::new(deliver.process, deliver.index))
    }
}

impl fmt::Display for MessageChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, m) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

/// Precomputed chain reachability over a pattern's delivered messages.
///
/// Two closures are maintained over the *message graph* (nodes = delivered
/// messages):
///
/// * **zigzag links**: `m → m'` iff `deliver(m) ∈ I_{k,s}`,
///   `send(m') ∈ I_{k,t}`, `s ≤ t`;
/// * **causal links**: additionally `deliver(m)` precedes `send(m')` in
///   `P_k`'s event order.
///
/// Both relations are closed by the word-parallel SCC kernel
/// ([`crate::closure::transitive_closure`]) over *compressed* link graphs:
/// instead of materializing the `O(M²)` direct links, each process
/// contributes a spine of per-interval slot nodes (zigzag) and a suffix
/// spine over its send events (causal), so construction is
/// `O(M + C + M·M/64)` for `C` checkpoints. Checkpoint-level queries go
/// through per-(process, interval) send/deliver indexes and prefix
/// delivery masks rather than scanning every message.
///
/// The closure relations themselves still take `O(M²)` bits for `M`
/// delivered messages — intended for analysis and testing, not for the
/// full-scale simulation sweeps (the [`RdtChecker`](crate::RdtChecker)
/// avoids it entirely).
///
/// # Example
///
/// ```rust
/// use rdt_causality::CheckpointId;
/// use rdt_rgraph::{paper_figures, ZigzagReachability};
///
/// let (pattern, f) = paper_figures::figure_1_with_handles();
/// let zz = ZigzagReachability::new(&pattern);
/// // [m3 m2] is a chain from C_(k,1) to C_(i,2) but no causal chain exists.
/// let from = CheckpointId::new(f.pk, 1);
/// let to = CheckpointId::new(f.pi, 2);
/// assert!(zz.chain_exists(from, to));
/// assert!(!zz.causal_chain_exists(from, to));
/// ```
#[derive(Debug, Clone)]
pub struct ZigzagReachability {
    /// Delivered message ids, densely renumbered.
    delivered: Vec<PatternMessageId>,
    /// Map from pattern message id to dense index (usize::MAX = in
    /// transit).
    dense: Vec<usize>,
    /// Zigzag closure: bit `(a, b)` set iff message `b` is chain-reachable
    /// from `a` (including `a` itself).
    zz: BitMatrix,
    /// Causal closure, same convention.
    causal: BitMatrix,
    /// Per message (dense): send/deliver checkpoints-of-interval.
    send_at: Vec<(ProcessId, u32)>,
    deliver_at: Vec<(ProcessId, u32)>,
    /// Per message (dense): endpoints and event positions, for O(1)
    /// single-causal-link tests.
    msg_from: Vec<ProcessId>,
    msg_to: Vec<ProcessId>,
    msg_send_pos: Vec<usize>,
    msg_deliver_pos: Vec<usize>,
    /// `send_in[p][x]` = dense messages sent by process `p` in interval
    /// `x` (interval indexes are one-based; slot 0 stays empty).
    send_in: Vec<Vec<Vec<usize>>>,
    /// `deliver_in[p][y]` = dense messages delivered at `p` in interval `y`.
    deliver_in: Vec<Vec<Vec<usize>>>,
    /// `deliver_upto[p][y]` = mask of dense messages delivered at `p` in
    /// an interval `≤ y` (prefix masks).
    deliver_upto: Vec<Vec<BitRow>>,
}

impl ZigzagReachability {
    /// Builds both closures for `pattern` with the word-parallel SCC
    /// kernel over compressed link graphs.
    pub fn new(pattern: &Pattern) -> Self {
        Self::build(pattern, false)
    }

    /// Builds the same structure with the naive per-bit reference kernel
    /// ([`crate::closure::transitive_closure_reference`]).
    ///
    /// Public as the baseline for the `closure_kernels` bench and the
    /// oracle of the differential kernel tests; every query answers
    /// identically to [`ZigzagReachability::new`].
    pub fn new_naive(pattern: &Pattern) -> Self {
        Self::build(pattern, true)
    }

    fn build(pattern: &Pattern, naive: bool) -> Self {
        let mut delivered = Vec::new();
        let mut dense = vec![usize::MAX; pattern.num_messages()];
        for (idx, info) in pattern.messages().iter().enumerate() {
            if info.deliver_pos.is_some() {
                dense[idx] = delivered.len();
                delivered.push(PatternMessageId(idx));
            }
        }
        let m = delivered.len();
        let n = pattern.num_processes();
        let mut send_at = Vec::with_capacity(m);
        let mut deliver_at = Vec::with_capacity(m);
        let mut msg_from = Vec::with_capacity(m);
        let mut msg_to = Vec::with_capacity(m);
        let mut msg_send_pos = Vec::with_capacity(m);
        let mut msg_deliver_pos = Vec::with_capacity(m);
        for &id in &delivered {
            let info = pattern.message(id);
            let s = pattern.send_interval(id);
            // `delivered` holds delivered messages only, so both are
            // always `Some`; skipping keeps the builder panic-free.
            let (Some(d), Some(deliver_pos)) = (pattern.deliver_interval(id), info.deliver_pos)
            else {
                continue;
            };
            send_at.push((s.process, s.index));
            deliver_at.push((d.process, d.index));
            msg_from.push(info.from);
            msg_to.push(info.to);
            msg_send_pos.push(info.send_pos);
            msg_deliver_pos.push(deliver_pos);
        }

        // Per-(process, interval) indexes. Interval indexes run
        // `1..=checkpoint_count`; slot 0 is allocated so indexes address
        // the tables directly.
        let top: Vec<usize> = (0..n)
            .map(|p| pattern.checkpoint_count(ProcessId::new(p)) as usize)
            .collect();
        let mut send_in: Vec<Vec<Vec<usize>>> =
            (0..n).map(|p| vec![Vec::new(); top[p] + 1]).collect();
        let mut deliver_in: Vec<Vec<Vec<usize>>> =
            (0..n).map(|p| vec![Vec::new(); top[p] + 1]).collect();
        for a in 0..m {
            let (sp, si) = send_at[a];
            send_in[sp.index()][si as usize].push(a);
            let (dp, di) = deliver_at[a];
            deliver_in[dp.index()][di as usize].push(a);
        }
        let deliver_upto: Vec<Vec<BitRow>> = (0..n)
            .map(|p| {
                let mut acc = BitRow::new(m);
                let mut rows = Vec::with_capacity(top[p] + 1);
                rows.push(acc.clone());
                for in_interval in deliver_in[p].iter().skip(1) {
                    for &b in in_interval {
                        acc.set(b);
                    }
                    rows.push(acc.clone());
                }
                rows
            })
            .collect();

        // Compressed zigzag graph: message `a` links into the slot of its
        // delivery interval; slots chain forward (`s ≤ t`) and fan out to
        // the messages sent in their interval. O(M + C) edges instead of
        // the O(M²) all-pairs link scan.
        let mut slot_base = vec![0usize; n];
        let mut total = m;
        for p in 0..n {
            slot_base[p] = total;
            total += top[p] + 1;
        }
        let mut zz_adj: Vec<Vec<usize>> = vec![Vec::new(); total];
        for a in 0..m {
            let (dp, di) = deliver_at[a];
            zz_adj[a].push(slot_base[dp.index()] + di as usize);
        }
        for p in 0..n {
            for (x, in_interval) in send_in[p].iter().enumerate() {
                let slot = slot_base[p] + x;
                if x < top[p] {
                    zz_adj[slot].push(slot + 1);
                }
                zz_adj[slot].extend(in_interval.iter().copied());
            }
        }

        // Compressed causal graph: per process, a suffix spine over its
        // send events; a delivery links to the first send strictly after
        // it, the spine supplies every later one.
        let mut sends_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for a in 0..m {
            sends_of[msg_from[a].index()].push(a);
        }
        for list in &mut sends_of {
            list.sort_unstable_by_key(|&a| msg_send_pos[a]);
        }
        let mut spine_base = vec![0usize; n];
        let mut total_c = m;
        for p in 0..n {
            spine_base[p] = total_c;
            total_c += sends_of[p].len();
        }
        let mut causal_adj: Vec<Vec<usize>> = vec![Vec::new(); total_c];
        for p in 0..n {
            for (i, &a) in sends_of[p].iter().enumerate() {
                let node = spine_base[p] + i;
                causal_adj[node].push(a);
                if i + 1 < sends_of[p].len() {
                    causal_adj[node].push(node + 1);
                }
            }
        }
        for a in 0..m {
            let p = msg_to[a].index();
            let i = sends_of[p].partition_point(|&b| msg_send_pos[b] <= msg_deliver_pos[a]);
            if i < sends_of[p].len() {
                causal_adj[a].push(spine_base[p] + i);
            }
        }

        let kernel: fn(&[Vec<usize>], usize) -> BitMatrix = if naive {
            closure::transitive_closure_reference
        } else {
            closure::transitive_closure
        };
        let mut zz = kernel(&zz_adj, m);
        zz.truncate_rows(m);
        let mut causal = kernel(&causal_adj, m);
        causal.truncate_rows(m);

        ZigzagReachability {
            delivered,
            dense,
            zz,
            causal,
            send_at,
            deliver_at,
            msg_from,
            msg_to,
            msg_send_pos,
            msg_deliver_pos,
            send_in,
            deliver_in,
            deliver_upto,
        }
    }

    /// Dense messages sent by `p` in exactly interval `x` (empty for
    /// out-of-range coordinates).
    fn interval_sends(&self, p: ProcessId, x: u32) -> &[usize] {
        self.send_in
            .get(p.index())
            .and_then(|v| v.get(x as usize))
            .map_or(&[], Vec::as_slice)
    }

    /// Dense messages delivered at `p` in exactly interval `y`.
    fn interval_delivers(&self, p: ProcessId, y: u32) -> &[usize] {
        self.deliver_in
            .get(p.index())
            .and_then(|v| v.get(y as usize))
            .map_or(&[], Vec::as_slice)
    }

    /// Mask of messages delivered at `p` in an interval `≤ y`; `None` for
    /// an unknown process. Indexes beyond the last interval saturate.
    fn deliver_mask_upto(&self, p: ProcessId, y: u32) -> Option<&BitRow> {
        let rows = self.deliver_upto.get(p.index())?;
        Some(&rows[(y as usize).min(rows.len() - 1)])
    }

    /// Dense messages sent by `p` in an interval with index `≥ x`.
    fn sends_at_or_after(&self, p: ProcessId, x: usize) -> impl Iterator<Item = usize> + '_ {
        self.send_in
            .get(p.index())
            .into_iter()
            .flat_map(move |v| v.iter().skip(x).flatten().copied())
    }

    fn chain_query(&self, rows: &BitMatrix, from: CheckpointId, to: CheckpointId) -> bool {
        // ∃ delivered m_a with send ∈ I_{from.process, from.index} and
        // m_b with deliver ∈ I_{to.process, to.index}, m_b reachable from
        // m_a (reflexively). Both candidate sets come straight from the
        // interval indexes.
        let delivers = self.interval_delivers(to.process, to.index);
        self.interval_sends(from.process, from.index)
            .iter()
            .any(|&a| delivers.iter().any(|&b| rows.get(a, b)))
    }

    /// Whether some message chain goes from `from` to `to` in the paper's
    /// sense: first send in `I_{from}`, last delivery in `I_{to}` (the
    /// checkpoint ids name the *closing* checkpoints of those intervals).
    pub fn chain_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        self.chain_query(&self.zz, from, to)
    }

    /// Whether some **causal** message chain goes from `from` to `to`.
    pub fn causal_chain_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        self.chain_query(&self.causal, from, to)
    }

    /// Whether a *causal sibling* exists for a (non-causal) chain from
    /// `from` to `to`, in the relaxed sense sufficient for trackability:
    /// a causal chain from `C_{i,x'}` to `C_{j,y'}` with `x' ≥ x` and
    /// `y' ≤ y` (a later origin interval and an earlier destination
    /// interval carry at least as much rollback information).
    pub fn causal_doubling_exists(&self, from: CheckpointId, to: CheckpointId) -> bool {
        // Interval indexes are one-based, so every delivery interval `di`
        // already satisfies `di ≥ 1`; the prefix mask is the whole
        // destination-side condition in one word-parallel intersection.
        let Some(mask) = self.deliver_mask_upto(to.process, to.index) else {
            return false;
        };
        self.sends_at_or_after(from.process, from.index as usize)
            .any(|a| self.causal.row_intersects(a, mask))
    }

    /// Whether some delivered message is **orphan** with respect to the
    /// ordered pair `(on_sender, on_receiver)`: sent by
    /// `on_sender.process` in an interval after `on_sender` but delivered
    /// to `on_receiver.process` at or before `on_receiver` (§2.2).
    ///
    /// Consults the per-(process, interval) send index, so only messages
    /// actually sent after `on_sender` are inspected.
    pub fn orphan_exists(&self, on_sender: CheckpointId, on_receiver: CheckpointId) -> bool {
        self.sends_at_or_after(on_sender.process, on_sender.index as usize + 1)
            .any(|a| {
                let (dp, di) = self.deliver_at[a];
                dp == on_receiver.process && di <= on_receiver.index
            })
    }

    /// Whether any delivered message is orphan with respect to the global
    /// checkpoint whose per-process indices are `gc` — i.e. whether the
    /// global checkpoint is *inconsistent* (Definition 2.2).
    ///
    /// # Panics
    ///
    /// Panics if `gc` has fewer entries than the pattern has processes.
    pub fn orphan_in_global(&self, gc: &[u32]) -> bool {
        (0..self.delivered.len()).any(|a| {
            let (dp, di) = self.deliver_at[a];
            let (sp, si) = self.send_at[a];
            di <= gc[dp.index()] && si > gc[sp.index()]
        })
    }

    /// Netzer–Xu zigzag query: is there a Z-path that starts strictly
    /// *after* checkpoint `a` and ends at or *before* checkpoint `b`?
    /// (Send in an interval with index `> a.index`, delivery in an
    /// interval with index `≤ b.index`.)
    ///
    /// Two checkpoints on different processes can belong to a common
    /// consistent global checkpoint iff no such Z-path exists in either
    /// direction; a checkpoint is *useless* iff such a Z-path loops back to
    /// it ([`ZigzagReachability::on_z_cycle`]).
    pub fn z_path_after_to_before(&self, a: CheckpointId, b: CheckpointId) -> bool {
        let Some(mask) = self.deliver_mask_upto(b.process, b.index) else {
            return false;
        };
        self.sends_at_or_after(a.process, a.index as usize + 1)
            .any(|ma| self.zz.row_intersects(ma, mask))
    }

    /// Whether `checkpoint` lies on a Z-cycle (Netzer & Xu): a zigzag path
    /// leaves after it and returns at or before it. Such a checkpoint is
    /// *useless* — it belongs to no consistent global checkpoint.
    pub fn on_z_cycle(&self, checkpoint: CheckpointId) -> bool {
        self.z_path_after_to_before(checkpoint, checkpoint)
    }

    /// Netzer & Xu's theorem, as an API: two local checkpoints can belong
    /// to the **same** consistent global checkpoint iff no zigzag path runs
    /// from (after) either one to (before) the other — including the
    /// degenerate Z-cycles through each.
    ///
    /// Cross-validated against the constructive test
    /// `min_consistent_containing(&[a, b]).is_some()` in the property
    /// suite.
    pub fn can_coexist(&self, a: CheckpointId, b: CheckpointId) -> bool {
        if a.process == b.process {
            return a.index == b.index && !self.on_z_cycle(a);
        }
        !self.z_path_after_to_before(a, b)
            && !self.z_path_after_to_before(b, a)
            && !self.on_z_cycle(a)
            && !self.on_z_cycle(b)
    }

    /// Finds one concrete **causal** chain witnessing
    /// [`causal_doubling_exists`](ZigzagReachability::causal_doubling_exists):
    /// a causal chain from `C_{from.process, x'}` (`x' ≥ from.index`) to
    /// `C_{to.process, y'}` (`y' ≤ to.index`), or `None` if no doubling
    /// exists.
    ///
    /// BFS over the causal message links, shortest chain first — the
    /// diagnostic companion to the boolean query (e.g. it reconstructs
    /// `[m5 m6]` as the sibling of `[m5 m4]` in the paper's Figure 1).
    pub fn find_causal_sibling(
        &self,
        from: CheckpointId,
        to: CheckpointId,
    ) -> Option<MessageChain> {
        let m = self.delivered.len();
        // Start messages: sent by `from.process` in interval >= from.index.
        let starts: Vec<usize> = (0..m)
            .filter(|&a| {
                let (sp, si) = self.send_at[a];
                sp == from.process && si >= from.index
            })
            .collect();
        let goal = |b: usize| {
            let (dp, di) = self.deliver_at[b];
            dp == to.process && di <= to.index
        };
        // BFS with parent tracking over single causal links.
        let mut parent: Vec<Option<usize>> = vec![None; m];
        let mut visited = vec![false; m];
        let mut queue = std::collections::VecDeque::new();
        for &s in &starts {
            visited[s] = true;
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            if goal(u) {
                let mut chain = vec![self.delivered[u]];
                let mut cur = u;
                while let Some(prev) = parent[cur] {
                    chain.push(self.delivered[prev]);
                    cur = prev;
                }
                chain.reverse();
                return Some(MessageChain(chain));
            }
            for w in 0..m {
                if !visited[w] && u != w && self.causal_single_link(u, w) {
                    visited[w] = true;
                    parent[w] = Some(u);
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Whether `[delivered[a], delivered[b]]` is a single *causal* link.
    fn causal_single_link(&self, a: usize, b: usize) -> bool {
        self.msg_to[a] == self.msg_from[b] && self.msg_deliver_pos[a] < self.msg_send_pos[b]
    }

    /// Dense index helper used by the characterization module.
    pub(crate) fn dense_index(&self, message: PatternMessageId) -> Option<usize> {
        let idx = *self.dense.get(message.0)?;
        (idx != usize::MAX).then_some(idx)
    }

    /// Whether message `b` is causally chain-reachable from message `a`
    /// (reflexively), both given as pattern message ids.
    ///
    /// Returns `false` if either message is undelivered.
    pub fn causal_link_closure(&self, a: PatternMessageId, b: PatternMessageId) -> bool {
        match (self.dense_index(a), self.dense_index(b)) {
            (Some(da), Some(db)) => self.causal.get(da, db),
            _ => false,
        }
    }

    /// Whether message `b` is zigzag chain-reachable from message `a`
    /// (reflexively), both given as pattern message ids.
    ///
    /// Returns `false` if either message is undelivered.
    pub fn zigzag_closure(&self, a: PatternMessageId, b: PatternMessageId) -> bool {
        match (self.dense_index(a), self.dense_index(b)) {
            (Some(da), Some(db)) => self.zz.get(da, db),
            _ => false,
        }
    }

    /// The delivered messages, densely ordered.
    pub fn delivered_messages(&self) -> &[PatternMessageId] {
        &self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;
    use rdt_causality::CheckpointId;

    #[test]
    fn figure_1_chain_classification() {
        let (pattern, f) = paper_figures::figure_1_with_handles();

        let m3_m2 = MessageChain::new([f.m3, f.m2]);
        assert!(m3_m2.is_chain(&pattern));
        assert!(!m3_m2.is_causal(&pattern));

        let m2_m5 = MessageChain::new([f.m2, f.m5]);
        assert!(m2_m5.is_causal(&pattern));
        assert!(!m2_m5.is_simple(&pattern), "crosses C_(i,2)");

        let m5_m4 = MessageChain::new([f.m5, f.m4]);
        assert!(m5_m4.is_chain(&pattern));
        assert!(!m5_m4.is_causal(&pattern));

        let m5_m6 = MessageChain::new([f.m5, f.m6]);
        assert!(m5_m6.is_causal(&pattern));
        assert!(m5_m6.is_simple(&pattern));

        let m4_m7 = MessageChain::new([f.m4, f.m7]);
        assert!(m4_m7.is_causal(&pattern));
        assert!(!m4_m7.is_simple(&pattern), "crosses C_(k,2)");

        let long = MessageChain::new([f.m3, f.m2, f.m5, f.m4, f.m7]);
        assert!(long.is_chain(&pattern));
        assert!(!long.is_causal(&pattern));

        // Single messages are always causal chains.
        assert!(MessageChain::new([f.m3]).is_causal(&pattern));
        assert!(MessageChain::new([f.m3]).is_simple(&pattern));
    }

    #[test]
    fn figure_1_chain_endpoints() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let m3_m2 = MessageChain::new([f.m3, f.m2]);
        assert_eq!(m3_m2.from_checkpoint(&pattern), CheckpointId::new(f.pk, 1));
        assert_eq!(
            m3_m2.to_checkpoint(&pattern),
            Some(CheckpointId::new(f.pi, 2))
        );

        let m5_m4 = MessageChain::new([f.m5, f.m4]);
        assert_eq!(m5_m4.from_checkpoint(&pattern), CheckpointId::new(f.pi, 3));
        assert_eq!(
            m5_m4.to_checkpoint(&pattern),
            Some(CheckpointId::new(f.pk, 2))
        );
    }

    #[test]
    fn non_chain_rejected() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        // m1 delivered at P_j in I_{j,1}; m3 sent by P_k — wrong process.
        let bogus = MessageChain::new([f.m1, f.m3]);
        assert!(!bogus.is_chain(&pattern));
        // Backwards interval order: deliver(m5) in I_{j,2}, send(m2) in
        // I_{j,1}: 2 > 1.
        let backwards = MessageChain::new([f.m5, f.m2]);
        assert!(!backwards.is_chain(&pattern));
        assert!(!MessageChain::new([]).is_chain(&pattern));
    }

    #[test]
    fn zigzag_reachability_matches_figure_1() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let zz = ZigzagReachability::new(&pattern);
        let cki1 = CheckpointId::new(f.pk, 1);
        let ci2 = CheckpointId::new(f.pi, 2);
        let ci3 = CheckpointId::new(f.pi, 3);
        let ck2 = CheckpointId::new(f.pk, 2);

        assert!(zz.chain_exists(cki1, ci2));
        assert!(!zz.causal_chain_exists(cki1, ci2), "hidden dependency");
        assert!(zz.chain_exists(ci3, ck2));
        assert!(zz.causal_chain_exists(ci3, ck2), "via [m5 m6]");
    }

    #[test]
    fn find_causal_sibling_reconstructs_m5_m6() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let zz = ZigzagReachability::new(&pattern);
        let sibling = zz
            .find_causal_sibling(CheckpointId::new(f.pi, 3), CheckpointId::new(f.pk, 2))
            .expect("[m5 m4] is doubled");
        assert_eq!(sibling, MessageChain::new([f.m5, f.m6]));
        assert!(sibling.is_causal(&pattern));
        // The undoubled chain has no sibling.
        assert_eq!(
            zz.find_causal_sibling(CheckpointId::new(f.pk, 1), CheckpointId::new(f.pi, 2)),
            None
        );
    }

    #[test]
    fn found_siblings_always_validate() {
        // Every sibling the finder returns must be a genuine causal chain
        // with endpoints at least as strong as requested.
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let zz = ZigzagReachability::new(&pattern);
        for from in pattern.checkpoints() {
            for to in pattern.checkpoints() {
                let exists = zz.causal_doubling_exists(from, to);
                match zz.find_causal_sibling(from, to) {
                    Some(chain) => {
                        assert!(exists, "finder found a chain the query denies");
                        assert!(chain.is_causal(&pattern));
                        let start = chain.from_checkpoint(&pattern);
                        let end = chain.to_checkpoint(&pattern).expect("delivered");
                        assert_eq!(start.process, from.process);
                        assert!(start.index >= from.index);
                        assert_eq!(end.process, to.process);
                        assert!(end.index <= to.index);
                    }
                    None => assert!(!exists, "query says doubled but finder found nothing"),
                }
            }
        }
    }

    #[test]
    fn causal_doubling_relaxation() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let zz = ZigzagReachability::new(&pattern);
        // [m5 m4] is doubled by [m5 m6] at exactly the same endpoints.
        assert!(zz.causal_doubling_exists(CheckpointId::new(f.pi, 3), CheckpointId::new(f.pk, 2)));
        // The [m3 m2] chain has no doubling at or beyond its endpoints.
        assert!(!zz.causal_doubling_exists(CheckpointId::new(f.pk, 1), CheckpointId::new(f.pi, 2)));
    }

    #[test]
    fn z_cycle_detection_on_figure_4() {
        // figure_4_unbroken has an R-cycle but also a genuine Z-cycle?
        // m1 sent in I_{i,1} (not after C_{i,1}); m2 delivered in I_{i,1}
        // (before C_{i,1}): the zigzag [m1 m2]... m1 leaves after C_{i,0}
        // and m2 returns before C_{i,1} — so C_{i,0}: send after it (yes,
        // interval 1 > 0) delivered before C_{i,0} (interval 1 <= 0 is
        // false). Not a cycle on C_{i,0}. For C_{k,1}: is there a chain
        // leaving after C_{k,1} (interval >= 2: m2) returning at or before
        // C_{k,1}? m2 -> m1? m1 is sent by P_i in I_{i,1}, m2 delivered at
        // P_i in I_{i,1}: link m2 -> m1 needs deliver(m2) interval <=
        // send(m1) interval: 1 <= 1 holds! Then m1 delivers at P_k in
        // I_{k,1} <= C_{k,1}. So C_{k,1} IS on a Z-cycle: it is useless.
        let pattern = paper_figures::figure_4_unbroken();
        let zz = ZigzagReachability::new(&pattern);
        assert!(zz.on_z_cycle(CheckpointId::new(ProcessId::new(1), 1)));
        assert!(!zz.on_z_cycle(CheckpointId::new(ProcessId::new(0), 1)));
    }

    #[test]
    fn consistent_pair_has_no_z_path_between() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let zz = ZigzagReachability::new(&pattern);
        let ck1 = CheckpointId::new(f.pk, 1);
        let cj1 = CheckpointId::new(f.pj, 1);
        // (C_{k,1}, C_{j,1}) is consistent (paper): no z-path either way.
        assert!(!zz.z_path_after_to_before(ck1, cj1));
        assert!(!zz.z_path_after_to_before(cj1, ck1));
        // (C_{i,2}, C_{j,2}) inconsistent: m5 is itself such a z-path.
        let ci2 = CheckpointId::new(f.pi, 2);
        let cj2 = CheckpointId::new(f.pj, 2);
        assert!(zz.z_path_after_to_before(ci2, cj2));
    }
}
