//! The rollback-dependency graph (R-graph) and its reachability relation
//! (§3.1 of the paper).

use std::fmt;

use rdt_causality::{CheckpointId, ProcessId};

use crate::bitset::{BitMatrix, BitRow};
use crate::closure;
use crate::Pattern;

/// Dense index of a checkpoint node inside an [`RGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The **Rollback-Dependency Graph** of a pattern.
///
/// Nodes are local checkpoints; there is an edge `C_{i,x} → C_{j,y}` iff
///
/// 1. `i = j` and `y = x + 1` (successive checkpoints of a process), or
/// 2. `i ≠ j` and some message is sent in `I_{i,x}` and delivered in
///    `I_{j,y}`.
///
/// The operational meaning of an R-path `C_{i,x} → C_{j,y}`: if `P_i` has
/// to be rolled back to before `C_{i,x}`, then `P_j` has to be rolled back
/// to before `C_{j,y}`.
///
/// Messages sent or delivered in an interval whose closing checkpoint does
/// not exist (an *open* interval of a non-[closed](Pattern::is_closed)
/// pattern) contribute no edge; close the pattern first if those
/// dependencies matter.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{CheckpointId, ProcessId};
/// use rdt_rgraph::{PatternBuilder, RGraph};
///
/// let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
/// let mut b = PatternBuilder::new(2);
/// let m = b.send(p0, p1);
/// b.deliver(m)?;
/// let pattern = b.close().build()?;
/// let graph = RGraph::new(&pattern);
/// let reach = graph.reachability();
/// assert!(reach.reaches(CheckpointId::new(p0, 1), CheckpointId::new(p1, 1)));
/// # Ok::<(), rdt_rgraph::PatternError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RGraph {
    n: usize,
    /// `offsets[i]` = node index of `C_{i,0}`.
    offsets: Vec<usize>,
    /// Checkpoint count per process (including the initial checkpoint).
    counts: Vec<u32>,
    /// Out-adjacency, deduplicated, ascending.
    adjacency: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl RGraph {
    /// Builds the R-graph of `pattern`.
    pub fn new(pattern: &Pattern) -> Self {
        let n = pattern.num_processes();
        let mut offsets = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut total = 0usize;
        for i in 0..n {
            offsets.push(total);
            let count = pattern.checkpoint_count(ProcessId::new(i));
            counts.push(count);
            total += count as usize;
        }

        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); total];
        // Rule 1: local successor edges.
        for i in 0..n {
            for x in 0..counts[i].saturating_sub(1) {
                let from = offsets[i] + x as usize;
                adjacency[from].push(NodeId(from + 1));
            }
        }
        // Rule 2: message edges between closing checkpoints.
        for (_, send_interval, deliver_interval) in pattern.delivered_messages() {
            let (i, x) = (send_interval.process, send_interval.index);
            let (j, y) = (deliver_interval.process, deliver_interval.index);
            // The edge needs the closing checkpoints C_{i,x} and C_{j,y}.
            if x >= counts[i.index()] || y >= counts[j.index()] {
                continue;
            }
            let from = offsets[i.index()] + x as usize;
            let to = NodeId(offsets[j.index()] + y as usize);
            adjacency[from].push(to);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let num_edges = adjacency.iter().map(Vec::len).sum();
        RGraph {
            n,
            offsets,
            counts,
            adjacency,
            num_edges,
        }
    }

    /// Number of checkpoint nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of processes of the underlying pattern.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Node index of a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist in the pattern.
    pub fn node(&self, checkpoint: CheckpointId) -> NodeId {
        let i = checkpoint.process.index();
        assert!(i < self.n, "process out of range");
        assert!(
            checkpoint.index < self.counts[i],
            "checkpoint {checkpoint} does not exist (process has {} checkpoints)",
            self.counts[i]
        );
        NodeId(self.offsets[i] + checkpoint.index as usize)
    }

    /// Checkpoint of a node index.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn checkpoint(&self, node: NodeId) -> CheckpointId {
        assert!(node.0 < self.num_nodes(), "node out of range");
        // offsets is ascending; find the owning process.
        let i = self.offsets.partition_point(|&off| off <= node.0) - 1;
        CheckpointId::new(ProcessId::new(i), (node.0 - self.offsets[i]) as u32)
    }

    /// Direct successors of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// The adjacency as plain index lists, in the shape the closure
    /// kernels consume.
    fn adjacency_indices(&self) -> Vec<Vec<usize>> {
        self.adjacency
            .iter()
            .map(|list| list.iter().map(|&NodeId(w)| w).collect())
            .collect()
    }

    /// Computes the full transitive reachability relation.
    ///
    /// Runs the word-parallel SCC-condensation kernel
    /// ([`crate::closure::transitive_closure`]): `O(V + E·V/64)` time, with
    /// every row of the relation including the node itself (an R-path of
    /// length 0 is a valid R-path `C → C`). The relation takes `V²` bits.
    pub fn reachability(&self) -> Reachability {
        let rows = closure::transitive_closure(&self.adjacency_indices(), self.num_nodes());
        Reachability {
            graph: self.clone(),
            rows,
        }
    }

    /// Computes the same relation as [`RGraph::reachability`] with the
    /// naive per-node per-bit search — `O(V·E)` time.
    ///
    /// Kept public as the baseline for the `closure_kernels` bench and the
    /// oracle of the differential kernel tests; not meant for production
    /// callers.
    pub fn reachability_naive(&self) -> Reachability {
        let rows =
            closure::transitive_closure_reference(&self.adjacency_indices(), self.num_nodes());
        Reachability {
            graph: self.clone(),
            rows,
        }
    }

    /// Finds one concrete R-path from `from` to `to`, as a checkpoint
    /// sequence, if any exists. Mainly used to render counterexamples.
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn find_path(&self, from: CheckpointId, to: CheckpointId) -> Option<Vec<CheckpointId>> {
        let start = self.node(from);
        let goal = self.node(to);
        let mut parent: Vec<Option<NodeId>> = vec![None; self.num_nodes()];
        let mut visited = BitRow::new(self.num_nodes());
        visited.set(start.0);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            if u == goal {
                let mut path = vec![self.checkpoint(u)];
                let mut cur = u;
                while let Some(prev) = parent[cur.0] {
                    path.push(self.checkpoint(prev));
                    cur = prev;
                }
                path.reverse();
                return Some(path);
            }
            for &w in &self.adjacency[u.0] {
                if !visited.get(w.0) {
                    visited.set(w.0);
                    parent[w.0] = Some(u);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

/// The transitive closure of an [`RGraph`]: which checkpoints have an
/// R-path to which.
#[derive(Debug, Clone)]
pub struct Reachability {
    graph: RGraph,
    rows: BitMatrix,
}

impl Reachability {
    /// Whether there is an R-path `from → to` (reflexively: every
    /// checkpoint reaches itself).
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn reaches(&self, from: CheckpointId, to: CheckpointId) -> bool {
        self.rows
            .get(self.graph.node(from).0, self.graph.node(to).0)
    }

    /// Iterates over every checkpoint reachable from `from` (including
    /// itself).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist.
    pub fn reachable_from(&self, from: CheckpointId) -> impl Iterator<Item = CheckpointId> + '_ {
        self.rows
            .row_ones(self.graph.node(from).0)
            .map(|idx| self.graph.checkpoint(NodeId(idx)))
    }

    /// Number of checkpoints reachable from `from`, including itself.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist.
    pub fn reachable_count(&self, from: CheckpointId) -> usize {
        self.rows.row_count_ones(self.graph.node(from).0)
    }

    /// Total number of reachable (ordered) checkpoint pairs, reflexive
    /// pairs included — the popcount of the whole relation. This is
    /// exactly the number of pairs a full R-path scan would visit, which
    /// lets [`crate::RdtChecker`] report exact counts even when it stops
    /// enumerating violations early.
    pub fn total_reachable_pairs(&self) -> usize {
        self.rows.total_ones()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &RGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn c(i: usize, x: u32) -> CheckpointId {
        CheckpointId::new(p(i), x)
    }

    #[test]
    fn local_edges_chain_checkpoints() {
        let mut b = PatternBuilder::new(1);
        b.checkpoint(p(0));
        b.checkpoint(p(0));
        let g = RGraph::new(&b.build().unwrap());
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let reach = g.reachability();
        assert!(reach.reaches(c(0, 0), c(0, 2)));
        assert!(!reach.reaches(c(0, 2), c(0, 0)));
        assert!(reach.reaches(c(0, 1), c(0, 1)), "reflexive");
    }

    #[test]
    fn message_edge_connects_closing_checkpoints() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        let g = RGraph::new(&b.close().build().unwrap());
        // Nodes: C00 C01 C10 C11; edges: 2 local + 1 message.
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        let reach = g.reachability();
        assert!(reach.reaches(c(0, 1), c(1, 1)));
        assert!(!reach.reaches(c(1, 1), c(0, 1)));
        // C_{0,0} reaches C_{1,1} via the local edge then the message edge.
        assert!(reach.reaches(c(0, 0), c(1, 1)));
    }

    #[test]
    fn open_interval_messages_do_not_create_edges() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        // NOT closed: C_{0,1} and C_{1,1} do not exist.
        let g = RGraph::new(&b.build().unwrap());
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn node_checkpoint_roundtrip() {
        let mut b = PatternBuilder::new(3);
        b.checkpoint(p(1));
        b.checkpoint(p(1));
        b.checkpoint(p(2));
        let g = RGraph::new(&b.build().unwrap());
        for cp in b.build().unwrap().checkpoints() {
            assert_eq!(g.checkpoint(g.node(cp)), cp);
        }
    }

    #[test]
    fn figure_1_r_graph_paths() {
        let pattern = crate::paper_figures::figure_1();
        let g = RGraph::new(&pattern);
        let reach = g.reachability();
        // R-path C_{k,1} -> C_{i,2} via [m3 m2] (processes: i=0, j=1, k=2).
        assert!(reach.reaches(c(2, 1), c(0, 2)));
        // R-path C_{i,3} -> C_{k,2} via [m5 m4] / [m5 m6].
        assert!(reach.reaches(c(0, 3), c(2, 2)));
        // And a concrete path object exists for it.
        let path = g.find_path(c(2, 1), c(0, 2)).unwrap();
        assert_eq!(path.first(), Some(&c(2, 1)));
        assert_eq!(path.last(), Some(&c(0, 2)));
        // No backwards dependency.
        assert!(!reach.reaches(c(0, 2), c(2, 1)));
    }

    #[test]
    fn find_path_none_when_unreachable() {
        let b = PatternBuilder::new(2);
        let g = RGraph::new(&b.build().unwrap());
        assert_eq!(g.find_path(c(0, 0), c(1, 0)), None);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn missing_checkpoint_panics() {
        let b = PatternBuilder::new(1);
        let g = RGraph::new(&b.build().unwrap());
        let _ = g.node(c(0, 5));
    }
}
