//! Orphan messages, consistent pairs, and consistent global checkpoints
//! (§2.2).

use std::fmt;

use rdt_causality::{CheckpointId, ProcessId};

use crate::{Pattern, PatternAnalysis, PatternMessageId};

/// A global checkpoint: one local checkpoint index per process.
///
/// Entry `i` is the index `x` of `C_{i,x}`; index 0 names the initial
/// checkpoint.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{CheckpointId, ProcessId};
/// use rdt_rgraph::GlobalCheckpoint;
///
/// let gc = GlobalCheckpoint::new(vec![1, 1, 1]);
/// assert!(gc.contains(CheckpointId::new(ProcessId::new(2), 1)));
/// assert_eq!(gc.get(ProcessId::new(0)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalCheckpoint(Vec<u32>);

impl GlobalCheckpoint {
    /// Builds a global checkpoint from per-process indices.
    pub fn new(indices: Vec<u32>) -> Self {
        GlobalCheckpoint(indices)
    }

    /// The all-initial global checkpoint `{C_{0,0}, …, C_{n-1,0}}`.
    pub fn initial(n: usize) -> Self {
        GlobalCheckpoint(vec![0; n])
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether it covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The checkpoint index of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn get(&self, process: ProcessId) -> u32 {
        self.0[process.index()]
    }

    /// Sets the checkpoint index of `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn set(&mut self, process: ProcessId, index: u32) {
        self.0[process.index()] = index;
    }

    /// Whether the global checkpoint contains the given local checkpoint.
    pub fn contains(&self, checkpoint: CheckpointId) -> bool {
        self.0.get(checkpoint.process.index()) == Some(&checkpoint.index)
    }

    /// Iterates over the member checkpoints.
    pub fn members(&self) -> impl Iterator<Item = CheckpointId> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &x)| CheckpointId::new(ProcessId::new(i), x))
    }

    /// The per-process indices as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Component-wise `≤` (the natural "earlier than" order on global
    /// checkpoints).
    pub fn le(&self, other: &GlobalCheckpoint) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Component-wise minimum — the *meet* of the lattice of global
    /// checkpoints. The set of **consistent** global checkpoints is closed
    /// under meet (see [`is_consistent`] and the tests): recovery theory
    /// relies on this to make "the latest consistent line" well-defined.
    ///
    /// # Panics
    ///
    /// Panics if the two global checkpoints have different arities.
    pub fn meet(&self, other: &GlobalCheckpoint) -> GlobalCheckpoint {
        assert_eq!(self.0.len(), other.0.len(), "arity mismatch");
        GlobalCheckpoint(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.min(b))
                .collect(),
        )
    }

    /// Component-wise maximum — the *join* of the lattice. Consistent
    /// global checkpoints are closed under join as well, which is what
    /// makes minimum/maximum consistent global checkpoints containing a
    /// set unique when they exist.
    ///
    /// # Panics
    ///
    /// Panics if the two global checkpoints have different arities.
    pub fn join(&self, other: &GlobalCheckpoint) -> GlobalCheckpoint {
        assert_eq!(self.0.len(), other.0.len(), "arity mismatch");
        GlobalCheckpoint(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.max(b))
                .collect(),
        )
    }
}

impl fmt::Display for GlobalCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.members().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Whether `message` is **orphan** with respect to the ordered pair
/// `(on_sender, on_receiver)` of local checkpoints: its delivery belongs to
/// `on_receiver` while its send does not belong to `on_sender` (§2.2).
///
/// Returns `false` when the message connects other processes than the
/// pair's, or is still in transit.
///
/// # Panics
///
/// Panics if the message id is out of range.
pub fn is_orphan(
    pattern: &Pattern,
    message: PatternMessageId,
    on_sender: CheckpointId,
    on_receiver: CheckpointId,
) -> bool {
    let info = pattern.message(message);
    if info.from != on_sender.process || info.to != on_receiver.process {
        return false;
    }
    let Some(deliver) = pattern.deliver_interval(message) else {
        return false;
    };
    let send = pattern.send_interval(message);
    deliver.index <= on_receiver.index && send.index > on_sender.index
}

/// Whether the ordered pair of local checkpoints is consistent: no message
/// from `a.process` to `b.process` is orphan with respect to `(a, b)`.
pub fn pair_consistent(pattern: &Pattern, a: CheckpointId, b: CheckpointId) -> bool {
    (0..pattern.num_messages()).all(|m| !is_orphan(pattern, PatternMessageId(m), a, b))
}

/// [`pair_consistent`] off a shared [`PatternAnalysis`]: instead of
/// scanning every message, only the messages `a.process` sent after `a`
/// are inspected, through the analysis's per-(process, interval) send
/// index.
pub fn pair_consistent_with(analysis: &PatternAnalysis, a: CheckpointId, b: CheckpointId) -> bool {
    !analysis.zigzag().orphan_exists(a, b)
}

/// Whether a global checkpoint is consistent (Definition 2.2): all its
/// ordered pairs are consistent, i.e. no message is orphan with respect to
/// any pair of its members.
///
/// # Panics
///
/// Panics if `gc` does not have one entry per process of `pattern`.
pub fn is_consistent(pattern: &Pattern, gc: &GlobalCheckpoint) -> bool {
    assert_eq!(
        gc.len(),
        pattern.num_processes(),
        "global checkpoint has wrong arity"
    );
    pattern.messages().iter().enumerate().all(|(idx, info)| {
        let m = PatternMessageId(idx);
        let Some(deliver) = pattern.deliver_interval(m) else {
            return true; // in-transit messages are never orphan
        };
        let send = pattern.send_interval(m);
        // Orphan iff delivery included but send not included.
        !(deliver.index <= gc.get(info.to) && send.index > gc.get(info.from))
    })
}

/// [`is_consistent`] off a shared [`PatternAnalysis`] — reads the cached
/// per-message interval coordinates instead of re-deriving each event's
/// interval by binary search.
///
/// # Panics
///
/// Panics if `gc` does not have one entry per process of the pattern.
pub fn is_consistent_with(analysis: &PatternAnalysis, gc: &GlobalCheckpoint) -> bool {
    assert_eq!(
        gc.len(),
        analysis.pattern().num_processes(),
        "global checkpoint has wrong arity"
    );
    !analysis.zigzag().orphan_in_global(gc.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;

    #[test]
    fn figure_1_consistent_pair_facts() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let ck1 = CheckpointId::new(f.pk, 1);
        let cj1 = CheckpointId::new(f.pj, 1);
        let ci2 = CheckpointId::new(f.pi, 2);
        let cj2 = CheckpointId::new(f.pj, 2);
        // "(C_{k,1}, C_{j,1}) is consistent"
        assert!(pair_consistent(&pattern, ck1, cj1));
        assert!(pair_consistent(&pattern, cj1, ck1));
        // "(C_{i,2}, C_{j,2}) is inconsistent (because of orphan m5)"
        assert!(!pair_consistent(&pattern, ci2, cj2));
        assert!(is_orphan(&pattern, f.m5, ci2, cj2));
    }

    #[test]
    fn figure_1_global_checkpoint_facts() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        // {C_{i,1}, C_{j,1}, C_{k,1}} is consistent.
        assert!(is_consistent(
            &pattern,
            &GlobalCheckpoint::new(vec![1, 1, 1])
        ));
        // {C_{i,2}, C_{j,2}, C_{k,1}} is not.
        assert!(!is_consistent(
            &pattern,
            &GlobalCheckpoint::new(vec![2, 2, 1])
        ));
    }

    #[test]
    fn initial_global_checkpoint_is_always_consistent() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        assert!(is_consistent(&pattern, &GlobalCheckpoint::initial(3)));
    }

    #[test]
    fn orphan_requires_matching_processes() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        // m5 goes P_i -> P_j; querying it against a (P_k, P_j) pair is not
        // an orphan regardless of indices.
        let ck0 = CheckpointId::new(f.pk, 0);
        let cj2 = CheckpointId::new(f.pj, 2);
        assert!(!is_orphan(&pattern, f.m5, ck0, cj2));
    }

    #[test]
    fn in_transit_message_never_orphan() {
        use crate::PatternBuilder;
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let mut b = PatternBuilder::new(2);
        let m = b.send(p0, p1);
        b.checkpoint(p0);
        let pattern = b.build().unwrap();
        assert!(!is_orphan(
            &pattern,
            m,
            CheckpointId::new(p0, 0),
            CheckpointId::new(p1, 0)
        ));
        assert!(is_consistent(&pattern, &GlobalCheckpoint::new(vec![0, 0])));
    }

    #[test]
    fn consistent_global_checkpoints_form_a_lattice() {
        // Classic result: consistency is closed under component-wise min
        // and max. Enumerate all consistent GCs of figure 1 and check
        // closure exhaustively.
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let mut consistent = Vec::new();
        for a in 0..=3u32 {
            for b in 0..=3u32 {
                for c in 0..=3u32 {
                    let gc = GlobalCheckpoint::new(vec![a, b, c]);
                    if is_consistent(&pattern, &gc) {
                        consistent.push(gc);
                    }
                }
            }
        }
        assert!(consistent.len() > 4, "figure 1 has several consistent GCs");
        for x in &consistent {
            for y in &consistent {
                assert!(is_consistent(&pattern, &x.meet(y)), "meet of {x} and {y}");
                assert!(is_consistent(&pattern, &x.join(y)), "join of {x} and {y}");
            }
        }
    }

    #[test]
    fn meet_join_are_pointwise() {
        let a = GlobalCheckpoint::new(vec![1, 4, 2]);
        let b = GlobalCheckpoint::new(vec![3, 0, 2]);
        assert_eq!(a.meet(&b).as_slice(), &[1, 0, 2]);
        assert_eq!(a.join(&b).as_slice(), &[3, 4, 2]);
        assert!(a.meet(&b).le(&a) && a.meet(&b).le(&b));
        assert!(a.le(&a.join(&b)) && b.le(&a.join(&b)));
    }

    #[test]
    fn indexed_variants_agree_with_scans() {
        // The `_with` entry points answer through the analysis's interval
        // indexes; they must agree with the direct O(m) scans everywhere.
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let analysis = crate::PatternAnalysis::new(&pattern);
        for a in pattern.checkpoints() {
            for b in pattern.checkpoints() {
                assert_eq!(
                    pair_consistent(&pattern, a, b),
                    pair_consistent_with(&analysis, a, b),
                    "pair ({a}, {b})"
                );
            }
        }
        for x in 0..=3u32 {
            for y in 0..=3u32 {
                for z in 0..=3u32 {
                    let gc = GlobalCheckpoint::new(vec![x, y, z]);
                    assert_eq!(
                        is_consistent(&pattern, &gc),
                        is_consistent_with(&analysis, &gc),
                        "gc {gc}"
                    );
                }
            }
        }
    }

    #[test]
    fn global_checkpoint_accessors() {
        let mut gc = GlobalCheckpoint::initial(2);
        gc.set(ProcessId::new(1), 3);
        assert_eq!(gc.get(ProcessId::new(1)), 3);
        assert_eq!(gc.as_slice(), &[0, 3]);
        assert!(GlobalCheckpoint::initial(2).le(&gc));
        assert!(!gc.le(&GlobalCheckpoint::initial(2)));
        assert_eq!(gc.to_string(), "{C(0,0), C(1,3)}");
        let members: Vec<_> = gc.members().collect();
        assert_eq!(members.len(), 2);
    }
}
