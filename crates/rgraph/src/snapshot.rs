//! Engine snapshot/restore for [`IncrementalAnalysis`].
//!
//! A snapshot captures everything the engine needs to keep answering
//! queries and accepting appends: counters, per-process tables, message
//! records, the three closure matrices, and the compaction state. The
//! undo **journal is deliberately excluded** — appends and queries never
//! read it, so a restored engine produces byte-identical answers to the
//! uninterrupted original; only rewinds to pre-snapshot marks become
//! defined [`RewindError`]s, mirroring the compaction-boundary rule.
//!
//! The format is a single versioned [`Json`] object so the daemon can
//! persist it with the workspace's own writer and reload it with the
//! total [`Json::parse_bytes`]. Restore validates every cross-table
//! invariant the append/query paths rely on for in-bounds indexing, so a
//! corrupted or hand-edited snapshot is a [`SnapshotError`], never a
//! panic later on.

use rdt_json::Json;

use super::{ClosureMatrix, EdgeScratch, IncrementalAnalysis, MsgRec, NONE_U32};

/// Identifies the snapshot format inside the JSON document.
pub const SNAPSHOT_FORMAT: &str = "rdt-rgraph-snapshot";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be restored. The input is rejected wholesale;
/// no partially-restored engine is ever returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// What was wrong with the snapshot document.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine snapshot: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

fn bad(message: impl Into<String>) -> SnapshotError {
    SnapshotError {
        message: message.into(),
    }
}

// ----------------------------------------------------------- reading ----

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SnapshotError> {
    obj.get(key).ok_or_else(|| bad(format!("missing `{key}`")))
}

fn read_u64(value: &Json, key: &str) -> Result<u64, SnapshotError> {
    match *value {
        Json::U64(v) => Ok(v),
        _ => Err(bad(format!("`{key}` is not an unsigned integer"))),
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, SnapshotError> {
    read_u64(field(obj, key)?, key)
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, SnapshotError> {
    usize::try_from(get_u64(obj, key)?).map_err(|_| bad(format!("`{key}` out of range")))
}

fn to_u32(value: &Json, key: &str) -> Result<u32, SnapshotError> {
    u32::try_from(read_u64(value, key)?).map_err(|_| bad(format!("`{key}` entry out of range")))
}

fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    field(obj, key)?
        .as_array()
        .ok_or_else(|| bad(format!("`{key}` is not an array")))
}

fn get_u32_vec(obj: &Json, key: &str) -> Result<Vec<u32>, SnapshotError> {
    get_arr(obj, key)?.iter().map(|v| to_u32(v, key)).collect()
}

fn get_u64_vec(obj: &Json, key: &str) -> Result<Vec<u64>, SnapshotError> {
    get_arr(obj, key)?
        .iter()
        .map(|v| read_u64(v, key))
        .collect()
}

fn get_bool_vec(obj: &Json, key: &str) -> Result<Vec<bool>, SnapshotError> {
    get_arr(obj, key)?
        .iter()
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| bad(format!("`{key}` entry is not a boolean")))
        })
        .collect()
}

fn get_nested_u32(obj: &Json, key: &str) -> Result<Vec<Vec<u32>>, SnapshotError> {
    get_arr(obj, key)?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| bad(format!("`{key}` row is not an array")))?
                .iter()
                .map(|v| to_u32(v, key))
                .collect()
        })
        .collect()
}

fn read_pair(value: &Json, key: &str) -> Result<(u32, u32), SnapshotError> {
    let pair = value
        .as_array()
        .ok_or_else(|| bad(format!("`{key}` entry is not a pair")))?;
    if pair.len() != 2 {
        return Err(bad(format!("`{key}` entry is not a pair")));
    }
    Ok((to_u32(&pair[0], key)?, to_u32(&pair[1], key)?))
}

fn get_pairs(obj: &Json, key: &str) -> Result<Vec<(u32, u32)>, SnapshotError> {
    get_arr(obj, key)?
        .iter()
        .map(|v| read_pair(v, key))
        .collect()
}

fn get_nested_pairs(obj: &Json, key: &str) -> Result<Vec<Vec<(u32, u32)>>, SnapshotError> {
    get_arr(obj, key)?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| bad(format!("`{key}` row is not an array")))?
                .iter()
                .map(|v| read_pair(v, key))
                .collect()
        })
        .collect()
}

// ----------------------------------------------------------- writing ----

fn u32s(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(u64::from(v))).collect())
}

fn u64s(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::U64(v)).collect())
}

fn nested_u32s(rows: &[Vec<u32>]) -> Json {
    Json::Arr(rows.iter().map(|row| u32s(row)).collect())
}

fn pairs(values: &[(u32, u32)]) -> Json {
    Json::Arr(
        values
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::U64(u64::from(a)), Json::U64(u64::from(b))]))
            .collect(),
    )
}

fn nested_pairs(rows: &[Vec<(u32, u32)>]) -> Json {
    Json::Arr(rows.iter().map(|row| pairs(row)).collect())
}

fn matrix_json(mat: &ClosureMatrix) -> Json {
    Json::obj([
        ("nodes", Json::U64(mat.nodes as u64)),
        ("width", Json::U64(mat.width as u64)),
        ("fwd", u64s(&mat.fwd)),
        ("bwd", u64s(&mat.bwd)),
    ])
}

fn matrix_from_json(value: &Json, key: &str) -> Result<ClosureMatrix, SnapshotError> {
    let nodes = get_usize(value, "nodes")?;
    let width = get_usize(value, "width")?;
    let fwd = get_u64_vec(value, "fwd")?;
    let bwd = get_u64_vec(value, "bwd")?;
    if width == 0 {
        return Err(bad(format!("`{key}` has zero width")));
    }
    if nodes > width * 64 {
        return Err(bad(format!("`{key}` node count exceeds its width")));
    }
    if fwd.len() != nodes * width || bwd.len() != nodes * width {
        return Err(bad(format!("`{key}` slab sizes disagree with nodes×width")));
    }
    Ok(ClosureMatrix {
        nodes,
        width,
        fwd,
        bwd,
    })
}

/// Node-index bound check: `NONE_U32` is allowed when `none_ok`.
fn check_node(value: u32, nodes: usize, none_ok: bool, what: &str) -> Result<(), SnapshotError> {
    if value == NONE_U32 {
        if none_ok {
            return Ok(());
        }
        return Err(bad(format!("`{what}` has an unexpected NONE entry")));
    }
    if (value as usize) < nodes {
        Ok(())
    } else {
        Err(bad(format!("`{what}` entry {value} out of node range")))
    }
}

impl IncrementalAnalysis {
    /// Serializes the engine into a versioned JSON document.
    ///
    /// Everything appends and queries read is captured — counters,
    /// per-process tables, message records, the three closure matrices,
    /// and compaction state — except the undo journal: restored engines
    /// answer every query and accept every append byte-identically, but
    /// marks taken before the snapshot cannot be rewound to afterwards
    /// (they fail with a defined [`RewindError`], like marks across a
    /// compaction).
    pub fn snapshot_json(&self) -> Json {
        Json::obj([
            ("format", Json::Str(SNAPSHOT_FORMAT.to_string())),
            ("version", Json::U64(SNAPSHOT_VERSION)),
            ("n", Json::U64(self.n as u64)),
            ("events", Json::U64(self.events as u64)),
            ("untrackable", Json::U64(self.untrackable)),
            ("cp_count", u32s(&self.cp_count)),
            (
                "line_open",
                Json::Arr(self.line_open.iter().map(|&b| Json::Bool(b)).collect()),
            ),
            (
                "msgs",
                Json::Arr(
                    self.msgs
                        .iter()
                        .map(|m| {
                            u32s(&[
                                m.from,
                                m.to,
                                m.send_iv,
                                m.deliver_iv,
                                m.znode,
                                m.cnode,
                                m.spine,
                                m.tdv_row,
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cur_tdv", u32s(&self.cur_tdv)),
            ("msg_tdv", u32s(&self.msg_tdv)),
            ("cp_tdv", u32s(&self.cp_tdv)),
            ("rmat", matrix_json(&self.rmat)),
            ("zmat", matrix_json(&self.zmat)),
            ("cmat", matrix_json(&self.cmat)),
            ("r_meta", pairs(&self.r_meta)),
            ("cp_nodes", nested_u32s(&self.cp_nodes)),
            ("z_slots", nested_u32s(&self.z_slots)),
            ("c_spine", nested_u32s(&self.c_spine)),
            ("c_delivs", nested_u32s(&self.c_delivs)),
            ("c_linked", u32s(&self.c_linked)),
            ("send_events", nested_pairs(&self.send_events)),
            ("deliver_events", nested_pairs(&self.deliver_events)),
            ("epoch", Json::U64(self.epoch)),
            ("watermark", u32s(&self.watermark)),
            ("cp_base", u32s(&self.cp_base)),
            ("slot_base", u32s(&self.slot_base)),
            ("chain_floor", u32s(&self.chain_floor)),
            ("drop_reach", u32s(&self.drop_reach)),
            ("compactions", Json::U64(self.compactions)),
            ("reclaimed_rows", Json::U64(self.reclaimed_rows)),
        ])
    }

    /// Restores an engine from a [`snapshot_json`]
    /// (IncrementalAnalysis::snapshot_json) document.
    ///
    /// The restore is **total and validating**: unknown formats, missing
    /// fields, wrong types, and — crucially — cross-table inconsistencies
    /// that would let a later append or query index out of bounds are all
    /// reported as [`SnapshotError`]s. The restored engine starts with an
    /// empty undo journal at the snapshot's compaction epoch.
    pub fn from_snapshot_json(doc: &Json) -> Result<IncrementalAnalysis, SnapshotError> {
        match field(doc, "format")?.as_str() {
            Some(SNAPSHOT_FORMAT) => {}
            _ => return Err(bad("not an rdt-rgraph snapshot")),
        }
        let version = get_u64(doc, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!("unsupported snapshot version {version}")));
        }

        let n = get_usize(doc, "n")?;
        if n == 0 {
            return Err(bad("`n` must be at least 1"));
        }
        let events = get_usize(doc, "events")?;
        let untrackable = get_u64(doc, "untrackable")?;
        let cp_count = get_u32_vec(doc, "cp_count")?;
        let line_open = get_bool_vec(doc, "line_open")?;
        let msgs_json = get_arr(doc, "msgs")?;
        let cur_tdv = get_u32_vec(doc, "cur_tdv")?;
        let msg_tdv = get_u32_vec(doc, "msg_tdv")?;
        let cp_tdv = get_u32_vec(doc, "cp_tdv")?;
        let rmat = matrix_from_json(field(doc, "rmat")?, "rmat")?;
        let zmat = matrix_from_json(field(doc, "zmat")?, "zmat")?;
        let cmat = matrix_from_json(field(doc, "cmat")?, "cmat")?;
        let r_meta = get_pairs(doc, "r_meta")?;
        let cp_nodes = get_nested_u32(doc, "cp_nodes")?;
        let z_slots = get_nested_u32(doc, "z_slots")?;
        let c_spine = get_nested_u32(doc, "c_spine")?;
        let c_delivs = get_nested_u32(doc, "c_delivs")?;
        let c_linked = get_u32_vec(doc, "c_linked")?;
        let send_events = get_nested_pairs(doc, "send_events")?;
        let deliver_events = get_nested_pairs(doc, "deliver_events")?;
        let epoch = get_u64(doc, "epoch")?;
        let watermark = get_u32_vec(doc, "watermark")?;
        let cp_base = get_u32_vec(doc, "cp_base")?;
        let slot_base = get_u32_vec(doc, "slot_base")?;
        let chain_floor = get_u32_vec(doc, "chain_floor")?;
        let drop_reach = get_u32_vec(doc, "drop_reach")?;
        let compactions = get_u64(doc, "compactions")?;
        let reclaimed_rows = get_u64(doc, "reclaimed_rows")?;

        // ---- per-process table shapes -------------------------------
        for (name, len) in [
            ("cp_count", cp_count.len()),
            ("line_open", line_open.len()),
            ("cp_nodes", cp_nodes.len()),
            ("z_slots", z_slots.len()),
            ("c_spine", c_spine.len()),
            ("c_delivs", c_delivs.len()),
            ("c_linked", c_linked.len()),
            ("send_events", send_events.len()),
            ("deliver_events", deliver_events.len()),
            ("watermark", watermark.len()),
            ("cp_base", cp_base.len()),
            ("slot_base", slot_base.len()),
            ("chain_floor", chain_floor.len()),
        ] {
            if len != n {
                return Err(bad(format!("`{name}` length {len} != n = {n}")));
            }
        }
        if cur_tdv.len() != n * n {
            return Err(bad("`cur_tdv` is not n×n"));
        }
        if msg_tdv.len() % n != 0 {
            return Err(bad("`msg_tdv` is not a whole number of rows"));
        }
        let tdv_rows = msg_tdv.len() / n;

        // ---- R-layer invariants -------------------------------------
        if r_meta.len() != rmat.nodes {
            return Err(bad("`r_meta` length disagrees with `rmat` nodes"));
        }
        if cp_tdv.len() != rmat.nodes * n {
            return Err(bad("`cp_tdv` length disagrees with `rmat` nodes"));
        }
        if !drop_reach.is_empty() && drop_reach.len() != rmat.nodes * n {
            return Err(bad("`drop_reach` length disagrees with `rmat` nodes"));
        }
        for (p, meta) in r_meta.iter().enumerate() {
            if meta.0 as usize >= n {
                return Err(bad(format!("`r_meta` node {p} names an unknown process")));
            }
        }
        for p in 0..n {
            let have = cp_nodes[p].len() as u64;
            let want = u64::from(cp_count[p]) + 1 - u64::from(cp_base[p].min(cp_count[p] + 1));
            if cp_base[p] > cp_count[p] || have != want {
                return Err(bad(format!(
                    "`cp_nodes[{p}]` does not span cp_base..=cp_count"
                )));
            }
            for &node in &cp_nodes[p] {
                check_node(node, rmat.nodes, false, "cp_nodes")?;
            }
            for &slot in &z_slots[p] {
                check_node(slot, zmat.nodes, false, "z_slots")?;
            }
            for &node in &c_spine[p] {
                check_node(node, cmat.nodes, false, "c_spine")?;
            }
            for &node in &c_delivs[p] {
                check_node(node, cmat.nodes, false, "c_delivs")?;
            }
            if c_linked[p] as usize > c_delivs[p].len() {
                return Err(bad(format!("`c_linked[{p}]` exceeds its delivery count")));
            }
        }

        // ---- message records ----------------------------------------
        let mut msgs = Vec::with_capacity(msgs_json.len());
        for rec in msgs_json {
            let cols = rec
                .as_array()
                .ok_or_else(|| bad("`msgs` entry is not an array"))?;
            if cols.len() != 8 {
                return Err(bad("`msgs` entry does not have 8 columns"));
            }
            let mut vals = [0u32; 8];
            for (slot, col) in vals.iter_mut().zip(cols) {
                *slot = to_u32(col, "msgs")?;
            }
            let m = MsgRec {
                from: vals[0],
                to: vals[1],
                send_iv: vals[2],
                deliver_iv: vals[3],
                znode: vals[4],
                cnode: vals[5],
                spine: vals[6],
                tdv_row: vals[7],
            };
            if m.from as usize >= n || m.to as usize >= n {
                return Err(bad("`msgs` entry names an unknown process"));
            }
            check_node(m.znode, zmat.nodes, true, "msgs.znode")?;
            check_node(m.cnode, cmat.nodes, true, "msgs.cnode")?;
            check_node(m.spine, cmat.nodes, true, "msgs.spine")?;
            if m.tdv_row != NONE_U32 && m.tdv_row as usize >= tdv_rows {
                return Err(bad("`msgs` entry points past the piggyback table"));
            }
            msgs.push(m);
        }
        for (name, events) in [
            ("send_events", &send_events),
            ("deliver_events", &deliver_events),
        ] {
            for row in events.iter() {
                for &(_, mid) in row {
                    if mid as usize >= msgs.len() {
                        return Err(bad(format!("`{name}` names an unknown message")));
                    }
                }
            }
        }

        Ok(IncrementalAnalysis {
            n,
            journal: Vec::new(),
            events,
            untrackable,
            cp_count,
            line_open,
            msgs,
            cur_tdv,
            msg_tdv,
            cp_tdv,
            rmat,
            r_meta,
            cp_nodes,
            zmat,
            z_slots,
            cmat,
            c_spine,
            c_delivs,
            c_linked,
            send_events,
            deliver_events,
            scratch: EdgeScratch::default(),
            epoch,
            watermark,
            cp_base,
            slot_base,
            chain_floor,
            drop_reach,
            compactions,
            reclaimed_rows,
        })
    }
}
