//! Word-parallel bitset primitives backing the graph-closure kernels.
//!
//! Two shapes are provided: [`BitRow`], a single fixed-length row, and
//! [`BitMatrix`], a dense row-slab of equally long rows stored in one
//! contiguous `Vec<u64>` (one allocation, cache-friendly row unions).
//! The closure kernels in [`crate::closure`] do all their work through
//! whole-word operations on these types — that is where the `O(V·E/64)`
//! in their complexity bounds comes from.

/// Yields the indices of the set bits of `words`, skipping any padding
/// bits at or beyond `len`.
fn ones_in(words: &[u64], len: usize) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(move |(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                let idx = wi * 64 + bit;
                if idx < len {
                    return Some(idx);
                }
            }
            None
        })
    })
}

/// A fixed-length bitset indexed by `usize`, with the word-parallel
/// union/intersection operations that transitive-closure computations and
/// interval-mask queries need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    /// An all-zero row of `len` bits.
    pub fn new(len: usize) -> Self {
        BitRow {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero bits of capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Clears every bit, keeping the capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// `self |= other`; returns `true` if any bit changed.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the lengths differ.
    pub fn union_with(&mut self, other: &BitRow) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= *b;
            changed |= *a != before;
        }
        changed
    }

    /// Whether `self ∩ other` is non-empty, without materializing it.
    pub fn intersects(&self, other: &BitRow) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the indices of the set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        ones_in(&self.words, self.len)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (used by [`BitMatrix`] row operations).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A dense boolean matrix stored as a row slab: all rows live in one
/// contiguous `Vec<u64>`, each padded to a whole number of words.
///
/// This is the storage of the closure relations ([`crate::Reachability`],
/// [`crate::ZigzagReachability`]): row `r` holds the set of columns
/// reachable from node `r`, and row-level unions/intersections run 64
/// bits per instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// Words per row.
    width: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix of `rows × cols` bits.
    pub fn new(rows: usize, cols: usize) -> Self {
        let width = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            width,
            words: vec![0; rows * width],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.rows);
        &self.words[r * self.width..(r + 1) * self.width]
    }

    /// Reads bit `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.cols);
        (self.row_words(r)[c / 64] >> (c % 64)) & 1 == 1
    }

    /// Sets bit `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.width + c / 64] |= 1u64 << (c % 64);
    }

    /// `row[dst] |= row[src]` in one word-parallel pass; returns `true`
    /// if any bit changed. A no-op when `dst == src`.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        debug_assert!(dst < self.rows && src < self.rows);
        if dst == src {
            return false;
        }
        let w = self.width;
        let (dst_words, src_words) = if dst < src {
            let (lo, hi) = self.words.split_at_mut(src * w);
            (&mut lo[dst * w..dst * w + w], &hi[..w])
        } else {
            let (lo, hi) = self.words.split_at_mut(dst * w);
            (&mut hi[..w], &lo[src * w..src * w + w])
        };
        let mut changed = false;
        for (a, b) in dst_words.iter_mut().zip(src_words) {
            let before = *a;
            *a |= *b;
            changed |= *a != before;
        }
        changed
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the column counts differ.
    pub fn copy_row_from(&mut self, dst: usize, other: &BitMatrix, src: usize) {
        debug_assert_eq!(self.cols, other.cols);
        debug_assert!(dst < self.rows && src < other.rows);
        self.words[dst * self.width..(dst + 1) * self.width].copy_from_slice(other.row_words(src));
    }

    /// Iterates over the set columns of row `r`, ascending.
    pub fn row_ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        ones_in(self.row_words(r), self.cols)
    }

    /// Number of set bits in row `r`.
    pub fn row_count_ones(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Whether row `r` intersects `mask` (word-parallel, no allocation).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `mask.len() != self.cols()`.
    pub fn row_intersects(&self, r: usize, mask: &BitRow) -> bool {
        debug_assert_eq!(mask.len(), self.cols);
        self.row_words(r)
            .iter()
            .zip(mask.words())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits over the whole matrix.
    pub fn total_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Drops every row at index `n` and beyond, releasing their storage.
    ///
    /// The closure kernels compute rows for auxiliary graph nodes (interval
    /// slots) that callers do not query; truncating sheds that memory.
    pub fn truncate_rows(&mut self, n: usize) {
        if n < self.rows {
            self.rows = n;
            self.words.truncate(n * self.width);
            self.words.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_union() {
        let mut a = BitRow::new(130);
        a.set(0);
        a.set(129);
        assert!(a.get(0) && a.get(129) && !a.get(64));
        let mut b = BitRow::new(130);
        b.set(64);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union changes nothing");
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(b.len(), 130);
    }

    #[test]
    fn union_with_change_detection_across_words() {
        // A change in a later word only must still be reported.
        let mut a = BitRow::new(200);
        a.set(3);
        let mut b = BitRow::new(200);
        b.set(3);
        b.set(190);
        assert!(a.union_with(&b), "bit 190 is new");
        assert!(!a.union_with(&b));
        // Union with an all-zero row never changes anything.
        let zero = BitRow::new(200);
        assert!(!a.union_with(&zero));
    }

    #[test]
    fn clear_and_clear_all() {
        let mut a = BitRow::new(70);
        a.set(1);
        a.set(69);
        a.clear(69);
        assert!(a.get(1) && !a.get(69));
        assert_eq!(a.count_ones(), 1);
        a.clear_all();
        assert_eq!(a.count_ones(), 0);
        assert_eq!(a.len(), 70, "capacity survives clear_all");
    }

    #[test]
    fn count_ones_and_ones_on_ragged_final_word() {
        // 65 bits: the second word is a single ragged bit.
        let mut a = BitRow::new(65);
        a.set(63);
        a.set(64);
        assert_eq!(a.count_ones(), 2);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![63, 64]);
        // A full final-word boundary row.
        let mut b = BitRow::new(64);
        b.set(0);
        b.set(63);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn intersects_is_word_parallel_and_exact() {
        let mut a = BitRow::new(300);
        let mut b = BitRow::new(300);
        a.set(299);
        assert!(!a.intersects(&b));
        b.set(299);
        assert!(a.intersects(&b));
        b.clear(299);
        b.set(298);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn empty_row_is_harmless() {
        let a = BitRow::new(0);
        assert!(a.is_empty());
        assert_eq!(a.count_ones(), 0);
        assert_eq!(a.ones().count(), 0);
    }

    #[test]
    fn matrix_set_get_roundtrip() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.get(0, 0) && m.get(1, 64) && m.get(2, 129));
        assert!(!m.get(0, 129) && !m.get(2, 0));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 130);
        assert_eq!(m.total_ones(), 3);
    }

    #[test]
    fn matrix_union_rows_both_directions() {
        let mut m = BitMatrix::new(2, 100);
        m.set(0, 7);
        m.set(1, 99);
        assert!(m.union_rows(0, 1), "dst < src");
        assert!(m.get(0, 7) && m.get(0, 99));
        assert!(m.union_rows(1, 0), "dst > src");
        assert!(m.get(1, 7));
        assert!(!m.union_rows(1, 0), "now saturated");
        assert!(!m.union_rows(1, 1), "self-union is a no-op");
    }

    #[test]
    fn matrix_row_queries_and_copy() {
        let mut m = BitMatrix::new(2, 70);
        m.set(0, 3);
        m.set(0, 69);
        assert_eq!(m.row_ones(0).collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(m.row_count_ones(0), 2);
        let mut mask = BitRow::new(70);
        mask.set(69);
        assert!(m.row_intersects(0, &mask));
        assert!(!m.row_intersects(1, &mask));
        let mut n = BitMatrix::new(4, 70);
        n.copy_row_from(3, &m, 0);
        assert_eq!(n.row_ones(3).collect::<Vec<_>>(), vec![3, 69]);
    }

    #[test]
    fn matrix_truncate_rows() {
        let mut m = BitMatrix::new(4, 65);
        m.set(0, 64);
        m.set(3, 1);
        m.truncate_rows(2);
        assert_eq!(m.rows(), 2);
        assert!(m.get(0, 64));
        assert_eq!(m.total_ones(), 1, "truncated rows drop their bits");
    }
}
