//! Minimal internal bitset used for graph closures.

/// A fixed-length bitset indexed by `usize`, with the word-parallel union
/// that transitive-closure computations need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    pub(crate) fn new(len: usize) -> Self {
        BitRow {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub(crate) fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// `self |= other`; returns `true` if any bit changed.
    #[cfg(test)]
    pub(crate) fn union_with(&mut self, other: &BitRow) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= *b;
            changed |= *a != before;
        }
        changed
    }

    pub(crate) fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let len = self.len;
            let mut w = word;
            std::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = wi * 64 + bit;
                    if idx < len {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_union() {
        let mut a = BitRow::new(130);
        a.set(0);
        a.set(129);
        assert!(a.get(0) && a.get(129) && !a.get(64));
        let mut b = BitRow::new(130);
        b.set(64);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union changes nothing");
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(b.len(), 130);
    }
}
