//! Checkpoint & communication patterns and the theory of
//! **Rollback-Dependency Trackability** (RDT).
//!
//! This crate is the *offline* half of the reproduction: where `rdt-core`
//! enforces RDT on-line, this crate takes a finished computation — a
//! [`Pattern`] of checkpoints and messages — and answers the questions the
//! paper (and its PODC 1999 companion, *"Rollback-Dependency Trackability:
//! Visible Characterizations"*) asks about it:
//!
//! * What is its rollback-dependency graph ([`RGraph`]) and which
//!   checkpoints depend on which ([`Reachability`])?
//! * Which message chains (zigzag paths) exist, which are causal, which are
//!   *simple*, and which non-causal chains have causal siblings
//!   ([`chains`], [`characterization`])?
//! * Does the pattern satisfy RDT ([`RdtChecker`])? If not, produce a
//!   counterexample R-path that no transitive dependency vector can track.
//! * Which global checkpoints are consistent, and what are the *minimum*
//!   and *maximum* consistent global checkpoints containing a given set of
//!   local checkpoints ([`min_max`])?
//! * Which checkpoints are *useless* (on a Z-cycle, Netzer & Xu)?
//!
//! # Example
//!
//! ```rust
//! use rdt_rgraph::{PatternBuilder, RdtChecker};
//! use rdt_causality::ProcessId;
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let mut b = PatternBuilder::new(2);
//! let m = b.send(p0, p1);
//! b.deliver(m)?;
//! let pattern = b.close().build()?;
//! assert!(RdtChecker::new(&pattern).check().holds());
//! # Ok::<(), rdt_rgraph::PatternError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod bitset;

pub mod chains;
pub mod characterization;
pub mod closure;
pub mod consistency;
pub mod dot;
mod incremental;
pub mod min_max;
pub mod paper_figures;
mod pattern;
mod rdt;
mod replay;
mod rgraph_impl;

pub use analysis::PatternAnalysis;
pub use bitset::{BitMatrix, BitRow};
pub use chains::{MessageChain, ZigzagReachability};
pub use consistency::GlobalCheckpoint;
pub use incremental::{
    AppendError, CompactionStats, IncrementalAnalysis, Mark, MessageRoute, RewindError,
    SnapshotError, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
pub use pattern::{Pattern, PatternBuilder, PatternError, PatternEvent, PatternMessageId};
pub use rdt::{RdtChecker, RdtReport, RdtViolation};
pub use replay::{CheckpointAnnotations, Replay};
pub use rgraph_impl::{NodeId, RGraph, Reachability};
