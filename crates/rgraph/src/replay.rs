//! Offline replay of a pattern, annotating every checkpoint with its
//! vector clock and its transitive dependency vector.

use rdt_causality::{CheckpointId, DependencyVector, ProcessId, VectorClock};

use crate::{Pattern, PatternError, PatternEvent};

/// Per-checkpoint annotations computed by [`Replay`].
#[derive(Debug, Clone)]
pub struct CheckpointAnnotations {
    n: usize,
    /// `vcs[i][x]` = vector clock of the checkpoint event `C_{i,x}`.
    vcs: Vec<Vec<VectorClock>>,
    /// `tdvs[i][x]` = `TDV_i^x`, the transitive dependency vector saved
    /// when `C_{i,x}` was taken (owner entry equals `x`).
    tdvs: Vec<Vec<DependencyVector>>,
}

impl CheckpointAnnotations {
    /// The vector clock of `checkpoint`.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist in the replayed pattern.
    pub fn vc(&self, checkpoint: CheckpointId) -> &VectorClock {
        &self.vcs[checkpoint.process.index()][checkpoint.index as usize]
    }

    /// `TDV_i^x` for `checkpoint = C_{i,x}` — the value a dependency-vector
    /// protocol would save with the checkpoint, assuming the vector is
    /// piggybacked on *every* message of the computation.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not exist in the replayed pattern.
    pub fn tdv(&self, checkpoint: CheckpointId) -> &DependencyVector {
        &self.tdvs[checkpoint.process.index()][checkpoint.index as usize]
    }

    /// Lamport's happened-before between checkpoint events: `a → b`.
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn causally_ordered(&self, a: CheckpointId, b: CheckpointId) -> bool {
        self.vc(a).happened_before(self.vc(b))
    }

    /// Whether two distinct checkpoints are causally unrelated.
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn concurrent(&self, a: CheckpointId, b: CheckpointId) -> bool {
        a != b && !self.causally_ordered(a, b) && !self.causally_ordered(b, a)
    }

    /// The *on-line trackability* test of §3.3: the R-path `from → to` is
    /// detectable by transitive dependency vectors iff
    /// `from.process == to.process ∧ from.index ≤ to.index`, or
    /// `TDV_to[from.process] ≥ from.index`.
    ///
    /// # Panics
    ///
    /// Panics if either checkpoint does not exist.
    pub fn trackable(&self, from: CheckpointId, to: CheckpointId) -> bool {
        if from.process == to.process {
            return from.index <= to.index;
        }
        self.tdv(to).get(from.process) >= from.index
    }

    /// Number of processes of the replayed pattern.
    pub fn num_processes(&self) -> usize {
        self.n
    }
}

/// Replays a [`Pattern`] in a deterministic linear extension, running full
/// vector clocks and transitive dependency vectors over it.
///
/// This is the "perfect observer": unlike the on-line protocols it sees
/// every message's piggyback, so its `TDV`s are exactly the dependency
/// knowledge Wang's mechanism (§3.3) would accumulate on that execution.
///
/// # Example
///
/// ```rust
/// use rdt_causality::{CheckpointId, ProcessId};
/// use rdt_rgraph::{PatternBuilder, Replay};
///
/// let (p0, p1) = (ProcessId::new(0), ProcessId::new(1));
/// let mut b = PatternBuilder::new(2);
/// let m = b.send(p0, p1);
/// b.deliver(m)?;
/// let pattern = b.close().build()?;
/// let ann = Replay::new(&pattern).annotate()?;
/// // C_{0,1} closed the sending interval; C_{1,1} the delivering one.
/// assert!(ann.trackable(CheckpointId::new(p0, 1), CheckpointId::new(p1, 1)));
/// # Ok::<(), rdt_rgraph::PatternError>(())
/// ```
#[derive(Debug)]
pub struct Replay<'a> {
    pattern: &'a Pattern,
}

impl<'a> Replay<'a> {
    /// Prepares a replay of `pattern`.
    pub fn new(pattern: &'a Pattern) -> Self {
        Replay { pattern }
    }

    /// Runs the replay and returns the per-checkpoint annotations.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the pattern admits no
    /// execution order.
    pub fn annotate(&self) -> Result<CheckpointAnnotations, PatternError> {
        let n = self.pattern.num_processes();
        let order = self.pattern.linearize()?;

        let mut vcs: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
        let mut tdvs: Vec<DependencyVector> = (0..n)
            .map(|i| DependencyVector::initial(n, ProcessId::new(i)))
            .collect();

        // Snapshots for the implicit initial checkpoints: zero vector clock
        // (ticked once to make C_{i,0} a distinct event) and all-zero TDV.
        let mut vc_out: Vec<Vec<VectorClock>> = (0..n)
            .map(|i| {
                let mut vc = VectorClock::new(n);
                vc.tick(ProcessId::new(i));
                vcs[i] = vc.clone();
                vec![vc]
            })
            .collect();
        let mut tdv_out: Vec<Vec<DependencyVector>> = (0..n)
            .map(|i| {
                vec![DependencyVector::from_entries(
                    ProcessId::new(i),
                    vec![0; n],
                )]
            })
            .collect();

        // Piggybacks captured at send events, consumed at deliveries.
        let mut message_vc: Vec<Option<VectorClock>> = vec![None; self.pattern.num_messages()];
        let mut message_tdv: Vec<Option<DependencyVector>> =
            vec![None; self.pattern.num_messages()];

        for (process, pos) in order {
            let i = process.index();
            match self.pattern.events(process)[pos] {
                PatternEvent::Checkpoint => {
                    vcs[i].tick(process);
                    vc_out[i].push(vcs[i].clone());
                    tdv_out[i].push(tdvs[i].clone());
                    tdvs[i].increment_owner();
                }
                PatternEvent::Send(m) => {
                    vcs[i].tick(process);
                    message_vc[m.0] = Some(vcs[i].clone());
                    message_tdv[m.0] = Some(tdvs[i].clone());
                }
                PatternEvent::Deliver(m) => {
                    // A linearization always schedules a send before its
                    // delivery; a missing piggyback means the order was
                    // not a linearization, i.e. the pattern admits no
                    // execution — report that instead of panicking.
                    let (Some(vc), Some(tdv)) = (message_vc[m.0].take(), message_tdv[m.0].take())
                    else {
                        return Err(PatternError::Unrealizable);
                    };
                    vcs[i].merge_max(&vc);
                    vcs[i].tick(process);
                    tdvs[i].merge_max(&tdv);
                }
            }
        }

        Ok(CheckpointAnnotations {
            n,
            vcs: vc_out,
            tdvs: tdv_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn c(i: usize, x: u32) -> CheckpointId {
        CheckpointId::new(p(i), x)
    }

    #[test]
    fn initial_checkpoints_are_concurrent() {
        let pattern = PatternBuilder::new(3).build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        assert!(ann.concurrent(c(0, 0), c(1, 0)));
        assert!(ann.concurrent(c(1, 0), c(2, 0)));
    }

    #[test]
    fn message_creates_causal_order_between_closing_checkpoints() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        let pattern = b.close().build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        // C_{0,0} happened before C_{1,1} (through m).
        assert!(ann.causally_ordered(c(0, 0), c(1, 1)));
        // The closing checkpoints C_{0,1} and C_{1,1} are concurrent:
        // C_{0,1} happened after the send.
        assert!(ann.concurrent(c(0, 1), c(1, 1)));
    }

    #[test]
    fn tdv_snapshot_matches_protocol_semantics() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m).unwrap();
        b.checkpoint(p(1)); // C_{1,1}
        let pattern = b.close().build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        // TDV_1^1 records the dependency on P0's interval 1.
        assert_eq!(ann.tdv(c(1, 1)).as_slice(), &[1, 1]);
        // TDV_0^0 is all zeros (initial checkpoint).
        assert_eq!(ann.tdv(c(0, 0)).as_slice(), &[0, 0]);
    }

    #[test]
    fn trackable_same_process_is_index_order() {
        let mut b = PatternBuilder::new(1);
        b.checkpoint(p(0));
        b.checkpoint(p(0));
        let pattern = b.build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        assert!(ann.trackable(c(0, 0), c(0, 2)));
        assert!(ann.trackable(c(0, 1), c(0, 1)));
        assert!(!ann.trackable(c(0, 2), c(0, 1)));
    }

    #[test]
    fn trackable_through_causal_chain() {
        // P0 -> P1 -> P2, causally chained.
        let mut b = PatternBuilder::new(3);
        let m1 = b.send(p(0), p(1));
        b.deliver(m1).unwrap();
        let m2 = b.send(p(1), p(2));
        b.deliver(m2).unwrap();
        let pattern = b.close().build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        // Chain from C_{0,1} (send interval I_{0,1}) to C_{2,1}.
        assert!(ann.trackable(c(0, 1), c(2, 1)));
        assert!(ann.trackable(c(1, 1), c(2, 1)));
    }

    #[test]
    fn non_causal_chain_is_not_trackable() {
        // The hidden-dependency pattern: P1 sends m2 to P2 BEFORE delivering
        // m1 from P0. The chain [m1, m2] is non-causal: TDV cannot track
        // C_{0,1} -> C_{2,1}.
        let mut b = PatternBuilder::new(3);
        let m1 = b.send(p(0), p(1));
        let m2 = b.send(p(1), p(2));
        b.deliver(m1).unwrap(); // P1 delivers after its send
        b.deliver(m2).unwrap();
        let pattern = b.close().build().unwrap();
        let ann = Replay::new(&pattern).annotate().unwrap();
        assert!(!ann.trackable(c(0, 1), c(2, 1)));
        // But the chain into P1's closing checkpoint is causal:
        assert!(ann.trackable(c(0, 1), c(1, 1)));
    }

    #[test]
    fn unrealizable_pattern_reported() {
        // Two messages delivered "before" they are sent relative to each
        // other: P0 delivers m2 before sending m1; P1 delivers m1 before
        // sending m2. Local orders force a causal cycle.
        let mut b = PatternBuilder::new(2);
        // Build event lists directly through the builder in an impossible
        // order: we must bypass the token discipline, so emulate with three
        // processes... Simpler: P0: deliver(m2) send(m1); P1: deliver(m1)
        // send(m2). The builder requires tokens before delivery, so create
        // sends first but position deliveries before them is impossible
        // through the API — which is the point. Instead, craft mutual
        // waiting: P0 delivers m2 then sends m1; P1 delivers m1 then sends
        // m2 — requires tokens, so send them up-front on helper processes?
        // Not expressible: the builder cannot create unrealizable patterns.
        // We assert that here.
        let m1 = b.send(p(0), p(1));
        b.deliver(m1).unwrap();
        let pattern = b.close().build().unwrap();
        assert!(pattern.linearize().is_ok());
    }

    #[test]
    fn linearize_orders_sends_before_deliveries() {
        let mut b = PatternBuilder::new(2);
        let m = b.send(p(1), p(0));
        b.deliver(m).unwrap();
        let pattern = b.build().unwrap();
        let order = pattern.linearize().unwrap();
        let send_pos = order.iter().position(|&(q, _)| q == p(1)).unwrap();
        let deliver_pos = order.iter().position(|&(q, _)| q == p(0)).unwrap();
        assert!(send_pos < deliver_pos);
    }
}
