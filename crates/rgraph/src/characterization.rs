//! Characterizations of RDT over message chains — the theory the PODC 1999
//! companion paper (*"Rollback-Dependency Trackability: Visible
//! Characterizations"*) develops.
//!
//! Three equivalent views of the same property are implemented:
//!
//! 1. **R-path trackability** (Definition 3.4) — [`crate::RdtChecker`];
//! 2. **all chains doubled** — every message chain (zigzag path) between
//!    two checkpoints is *doubled* by a causal chain carrying at least as
//!    much rollback information ([`all_chains_doubled`]);
//! 3. **all CM-paths doubled** — it suffices to double the *visible*
//!    family of chains of the form `[causal-prefix · m]`: a causal chain
//!    followed by one message ([`all_cm_paths_doubled`]). These are the
//!    chains a process can actually observe forming when `m` arrives,
//!    which is why on-line protocols (predicate `C1`) can prevent exactly
//!    them and still obtain full RDT.
//!
//! The equivalence `(2) ⇔ (3)` is the heart of the "visible
//! characterization": an induction on chain length shows every chain is a
//! concatenation of CM-paths whose doublings compose. The test-suite
//! verifies `(1) ⇔ (2) ⇔ (3)` on the paper's figures and on randomly
//! generated patterns.

use rdt_causality::CheckpointId;

use crate::chains::{MessageChain, ZigzagReachability};
use crate::{Pattern, PatternAnalysis, PatternMessageId};

/// A chain-level RDT counterexample: the endpoints of a message chain with
/// no causal doubling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoubledChain {
    /// Chain origin (`C_{i,x}` with the first send in `I_{i,x}`).
    pub from: CheckpointId,
    /// Chain destination (`C_{j,y}` with the last delivery in `I_{j,y}`).
    pub to: CheckpointId,
}

/// Returns every endpoint pair `(from, to)` connected by some message
/// chain but by **no** causal doubling (a causal chain from an interval
/// `≥ from` to an interval `≤ to` on the same processes).
///
/// The pattern satisfies RDT iff this list is empty (characterization (2));
/// cross-validated against [`crate::RdtChecker`] in the tests.
pub fn undoubled_chains(pattern: &Pattern) -> Vec<UndoubledChain> {
    undoubled_chains_with(&PatternAnalysis::new(pattern))
}

/// [`undoubled_chains`] off a shared [`PatternAnalysis`] — pays for the
/// chain closures only if no other characterization has already.
pub fn undoubled_chains_with(analysis: &PatternAnalysis) -> Vec<UndoubledChain> {
    let pattern = analysis.pattern();
    let zz = analysis.zigzag();
    let mut out = Vec::new();
    // BTreeSet, not HashSet: `out` is built in iteration order, and result
    // paths must not depend on hash-order (the `hash-collections` lint
    // rule keeps it that way).
    let mut seen = std::collections::BTreeSet::new();
    for &a in zz.delivered_messages() {
        let from_iv = pattern.send_interval(a);
        let from = CheckpointId::new(from_iv.process, from_iv.index);
        for &b in zz.delivered_messages() {
            if !zz_chain(zz, a, b) {
                continue;
            }
            let to_iv = pattern.deliver_interval(b).expect("delivered");
            let to = CheckpointId::new(to_iv.process, to_iv.index);
            if !seen.insert((from, to)) {
                continue;
            }
            if trivially_trackable(from, to) {
                continue;
            }
            if !zz.causal_doubling_exists(from, to) {
                out.push(UndoubledChain { from, to });
            }
        }
    }
    out
}

/// Characterization (2): every message chain is doubled by a causal chain.
pub fn all_chains_doubled(pattern: &Pattern) -> bool {
    undoubled_chains(pattern).is_empty()
}

/// [`all_chains_doubled`] off a shared [`PatternAnalysis`].
pub fn all_chains_doubled_with(analysis: &PatternAnalysis) -> bool {
    undoubled_chains_with(analysis).is_empty()
}

/// Characterization (3): every **CM-path** is doubled.
///
/// A CM-path is a chain `[μ · m]` where `μ` is a causal chain (possibly a
/// single message) and `m` is one more message attached through a zigzag
/// link — the only kind of chain whose formation is *visible* to the
/// process delivering `m`. Checking just this family is enough: doublings
/// compose along the concatenations that build longer chains.
pub fn all_cm_paths_doubled(pattern: &Pattern) -> bool {
    all_cm_paths_doubled_with(&PatternAnalysis::new(pattern))
}

/// [`all_cm_paths_doubled`] off a shared [`PatternAnalysis`].
pub fn all_cm_paths_doubled_with(analysis: &PatternAnalysis) -> bool {
    let pattern = analysis.pattern();
    let zz = analysis.zigzag();
    let delivered = zz.delivered_messages().to_vec();
    for &mid in &delivered {
        // `mid` is the junction message m' ending the causal prefix μ; `b`
        // is the trailing message m.
        for &b in &delivered {
            if mid == b || !zigzag_link(pattern, mid, b) {
                continue;
            }
            let to_iv = pattern.deliver_interval(b).expect("delivered");
            let to = CheckpointId::new(to_iv.process, to_iv.index);
            for &a in &delivered {
                if !zz.causal_link_closure(a, mid) {
                    continue;
                }
                let from_iv = pattern.send_interval(a);
                let from = CheckpointId::new(from_iv.process, from_iv.index);
                if trivially_trackable(from, to) {
                    continue;
                }
                if !zz.causal_doubling_exists(from, to) {
                    return false;
                }
            }
        }
    }
    true
}

/// All checkpoints lying on a Z-cycle — the *useless* checkpoints of
/// Netzer & Xu, which belong to no consistent global checkpoint.
///
/// RDT implies there are none: a Z-cycle would demand a causal chain from
/// a checkpoint back into its own past.
pub fn useless_checkpoints(pattern: &Pattern) -> Vec<CheckpointId> {
    useless_checkpoints_with(&PatternAnalysis::new(pattern))
}

/// [`useless_checkpoints`] off a shared [`PatternAnalysis`].
pub fn useless_checkpoints_with(analysis: &PatternAnalysis) -> Vec<CheckpointId> {
    let zz = analysis.zigzag();
    analysis
        .pattern()
        .checkpoints()
        .filter(|&c| zz.on_z_cycle(c))
        .collect()
}

/// Enumerates message chains of `pattern` up to `max_len` messages,
/// without repeating a message inside one chain.
///
/// Exponential in the worst case — a test and documentation aid for small
/// patterns, not a production query (use [`ZigzagReachability`] for
/// reachability questions).
pub fn enumerate_chains(pattern: &Pattern, max_len: usize) -> Vec<MessageChain> {
    let delivered: Vec<PatternMessageId> = pattern
        .messages()
        .iter()
        .enumerate()
        .filter(|(_, info)| info.deliver_pos.is_some())
        .map(|(idx, _)| PatternMessageId(idx))
        .collect();
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for &start in &delivered {
        stack.push(start);
        extend(pattern, &delivered, &mut stack, &mut out, max_len);
        stack.pop();
    }
    out
}

fn extend(
    pattern: &Pattern,
    delivered: &[PatternMessageId],
    stack: &mut Vec<PatternMessageId>,
    out: &mut Vec<MessageChain>,
    max_len: usize,
) {
    out.push(MessageChain::new(stack.iter().copied()));
    if stack.len() >= max_len {
        return;
    }
    // Every caller pushes before recursing, so the stack is nonempty.
    let Some(&last) = stack.last() else { return };
    for &next in delivered {
        if stack.contains(&next) || !zigzag_link(pattern, last, next) {
            continue;
        }
        stack.push(next);
        extend(pattern, delivered, stack, out, max_len);
        stack.pop();
    }
}

/// Same-process forward dependencies are trackable by index comparison
/// alone (Definition 3.3's first disjunct) and need no causal doubling.
fn trivially_trackable(from: CheckpointId, to: CheckpointId) -> bool {
    from.process == to.process && from.index <= to.index
}

/// Whether `[a, b]` forms one zigzag link: `deliver(a) ∈ I_{k,s}`,
/// `send(b) ∈ I_{k,t}`, `s ≤ t`.
fn zigzag_link(pattern: &Pattern, a: PatternMessageId, b: PatternMessageId) -> bool {
    match pattern.deliver_interval(a) {
        Some(d) => {
            let s = pattern.send_interval(b);
            d.process == s.process && d.index <= s.index
        }
        None => false,
    }
}

fn zz_chain(zz: &ZigzagReachability, a: PatternMessageId, b: PatternMessageId) -> bool {
    // Chain-reachable through the zigzag closure (reflexively).
    match (zz.dense_index(a), zz.dense_index(b)) {
        (Some(_), Some(_)) => zz.zigzag_closure(a, b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_figures;
    use crate::RdtChecker;

    fn rdt_by_all_three(pattern: &Pattern) -> (bool, bool, bool) {
        (
            RdtChecker::new(pattern).check().holds(),
            all_chains_doubled(pattern),
            all_cm_paths_doubled(pattern),
        )
    }

    #[test]
    fn characterizations_agree_on_paper_figures() {
        for (name, pattern, expected) in [
            ("figure_1", paper_figures::figure_1(), false),
            (
                "figure_2_unbroken",
                paper_figures::figure_2_unbroken(),
                false,
            ),
            ("figure_2_broken", paper_figures::figure_2_broken(), true),
            (
                "figure_4_unbroken",
                paper_figures::figure_4_unbroken(),
                false,
            ),
            ("figure_4_broken", paper_figures::figure_4_broken(), true),
        ] {
            let (r, chains, cm) = rdt_by_all_three(&pattern);
            assert_eq!(r, expected, "{name}: RdtChecker");
            assert_eq!(chains, expected, "{name}: all_chains_doubled");
            assert_eq!(cm, expected, "{name}: all_cm_paths_doubled");
        }
    }

    #[test]
    fn figure_1_undoubled_chain_is_m3_m2() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let undoubled = undoubled_chains(&pattern);
        assert!(undoubled
            .iter()
            .any(|u| u.from == CheckpointId::new(f.pk, 1) && u.to == CheckpointId::new(f.pi, 2)));
        // [m5 m4] is doubled by [m5 m6]: its endpoints must NOT appear.
        assert!(!undoubled
            .iter()
            .any(|u| u.from == CheckpointId::new(f.pi, 3) && u.to == CheckpointId::new(f.pk, 2)));
    }

    #[test]
    fn useless_checkpoints_only_without_rdt() {
        assert!(useless_checkpoints(&paper_figures::figure_2_broken()).is_empty());
        assert!(useless_checkpoints(&paper_figures::figure_4_broken()).is_empty());
        let useless = useless_checkpoints(&paper_figures::figure_4_unbroken());
        assert_eq!(
            useless,
            vec![CheckpointId::new(rdt_causality::ProcessId::new(1), 1)]
        );
    }

    #[test]
    fn figure_1_has_no_useless_checkpoint_despite_rdt_violation() {
        // RDT violations and Z-cycles are different defects: figure 1
        // breaks trackability but every checkpoint still belongs to some
        // consistent global checkpoint.
        assert!(useless_checkpoints(&paper_figures::figure_1()).is_empty());
        assert!(!all_chains_doubled(&paper_figures::figure_1()));
    }

    #[test]
    fn enumerate_chains_finds_the_long_chain_of_figure_1() {
        let (pattern, f) = paper_figures::figure_1_with_handles();
        let chains = enumerate_chains(&pattern, 5);
        let long = MessageChain::new([f.m3, f.m2, f.m5, f.m4, f.m7]);
        assert!(chains.contains(&long));
        // Every enumerated sequence really is a chain.
        for chain in &chains {
            assert!(chain.is_chain(&pattern), "{chain} is not a chain");
        }
    }

    #[test]
    fn enumerate_respects_max_len() {
        let (pattern, _) = paper_figures::figure_1_with_handles();
        let chains = enumerate_chains(&pattern, 2);
        assert!(chains.iter().all(|c| c.len() <= 2));
        assert!(chains.iter().any(|c| c.len() == 2));
    }
}
