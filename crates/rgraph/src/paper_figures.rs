//! The checkpoint and communication patterns of the paper's figures,
//! reconstructed as reusable [`Pattern`] values.
//!
//! These literal scenarios anchor the whole test-suite: every theory module
//! checks its queries against the facts the paper states about them.

use rdt_causality::ProcessId;

use crate::{Pattern, PatternBuilder, PatternMessageId};

/// Handle to the messages of [`figure_1`], for assertions by name.
#[derive(Debug, Clone, Copy)]
pub struct Figure1 {
    /// `P_i` (drawn first in the figure).
    pub pi: ProcessId,
    /// `P_j`.
    pub pj: ProcessId,
    /// `P_k`.
    pub pk: ProcessId,
    /// `m1`: `P_i → P_j`, sent in `I_{i,1}`, delivered in `I_{j,1}`.
    pub m1: PatternMessageId,
    /// `m2`: `P_j → P_i`, sent in `I_{j,1}`, delivered in `I_{i,2}`.
    pub m2: PatternMessageId,
    /// `m3`: `P_k → P_j`, sent in `I_{k,1}`, delivered in `I_{j,1}`
    /// *after* `send(m2)` — making `[m3 m2]` non-causal.
    pub m3: PatternMessageId,
    /// `m4`: `P_j → P_k`, sent in `I_{j,2}` *before* `deliver(m5)`,
    /// delivered in `I_{k,2}` — making `[m5 m4]` non-causal.
    pub m4: PatternMessageId,
    /// `m5`: `P_i → P_j`, sent in `I_{i,3}`, delivered in `I_{j,2}` — the
    /// orphan of the pair `(C_{i,2}, C_{j,2})`.
    pub m5: PatternMessageId,
    /// `m6`: `P_j → P_k`, sent in `I_{j,2}` *after* `deliver(m5)`,
    /// delivered in `I_{k,2}` — the causal sibling `[m5 m6]` of `[m5 m4]`.
    pub m6: PatternMessageId,
    /// `m7`: `P_k → P_j`, sent in `I_{k,3}` after `deliver(m4)`, delivered
    /// in `I_{j,3}` — closing the long non-causal chain
    /// `[m3 m2 m5 m4 m7]`.
    pub m7: PatternMessageId,
}

/// The checkpoint and communication pattern of **Figure 1.a**, together
/// with named handles to its messages.
///
/// Facts the paper states about this pattern (all verified in tests):
///
/// * `(C_{k,1}, C_{j,1})` is a consistent pair; `(C_{i,2}, C_{j,2})` is
///   inconsistent because `m5` is orphan with respect to it.
/// * `{C_{i,1}, C_{j,1}, C_{k,1}}` is a consistent global checkpoint;
///   `{C_{i,2}, C_{j,2}, C_{k,1}}` is not.
/// * `[m3 m2]` is a (non-causal) chain from `C_{k,1}` to `C_{i,2}`;
///   `[m5 m4]` and `[m5 m6]` both correspond to the R-path
///   `C_{i,3} → C_{k,2}`, and `[m5 m6]` is a causal sibling of `[m5 m4]`.
/// * `[m3 m2 m5 m4 m7]` is a non-causal chain, the concatenation of the
///   causal chains `[m3]`, `[m2 m5]`, `[m4 m7]`.
pub fn figure_1_with_handles() -> (Pattern, Figure1) {
    let pi = ProcessId::new(0);
    let pj = ProcessId::new(1);
    let pk = ProcessId::new(2);
    let mut b = PatternBuilder::new(3);

    let m1 = b.send(pi, pj); // I_{i,1}
    b.checkpoint(pi); // C_{i,1}
    b.deliver(m1).unwrap(); // I_{j,1}
    let m2 = b.send(pj, pi); // I_{j,1}
    let m3 = b.send(pk, pj); // I_{k,1}
    b.deliver(m3).unwrap(); // I_{j,1}, after send(m2): [m3 m2] non-causal
    b.checkpoint(pj); // C_{j,1}
    b.checkpoint(pk); // C_{k,1}
    b.deliver(m2).unwrap(); // I_{i,2}
    b.checkpoint(pi); // C_{i,2}
    let m5 = b.send(pi, pj); // I_{i,3}
    let m4 = b.send(pj, pk); // I_{j,2}, before deliver(m5): [m5 m4] non-causal
    b.deliver(m5).unwrap(); // I_{j,2}
    let m6 = b.send(pj, pk); // I_{j,2}, after deliver(m5): [m5 m6] causal
    b.checkpoint(pj); // C_{j,2}
    b.deliver(m4).unwrap(); // I_{k,2}
    b.deliver(m6).unwrap(); // I_{k,2}
    b.checkpoint(pk); // C_{k,2}
    let m7 = b.send(pk, pj); // I_{k,3}, after deliver(m4): [m4 m7] causal
    b.deliver(m7).unwrap(); // I_{j,3}
    b.checkpoint(pi); // C_{i,3}

    let pattern = b.close().build().expect("figure 1 is well-formed");
    (
        pattern,
        Figure1 {
            pi,
            pj,
            pk,
            m1,
            m2,
            m3,
            m4,
            m5,
            m6,
            m7,
        },
    )
}

/// [`figure_1_with_handles`] without the handles.
pub fn figure_1() -> Pattern {
    figure_1_with_handles().0
}

/// The scenario of **Figure 2**: a non-causal message chain breakable by
/// `P_i`, *not* broken (case b of the figure).
///
/// `P_k` sends `m` to `P_i`; `P_i` had already sent `m'` to `P_j` in the
/// same interval and delivers `m` without checkpointing. The chain
/// `[m, m']` from `C_{k,1}` to `C_{j,1}` is non-causal and has no causal
/// sibling, so the pattern violates RDT.
pub fn figure_2_unbroken() -> Pattern {
    let pk = ProcessId::new(0);
    let pi = ProcessId::new(1);
    let pj = ProcessId::new(2);
    let mut b = PatternBuilder::new(3);
    let m_prime = b.send(pi, pj);
    let m = b.send(pk, pi);
    b.deliver(m).unwrap(); // P_i delivers m after send(m'): chain breakable
    b.deliver(m_prime).unwrap();
    b.close().build().expect("figure 2 is well-formed")
}

/// The scenario of **Figure 2**, with the chain *broken* (case c): `P_i`
/// takes a (forced) checkpoint between `send(m')` and `deliver(m)`, so the
/// resulting pattern satisfies RDT.
pub fn figure_2_broken() -> Pattern {
    let pk = ProcessId::new(0);
    let pi = ProcessId::new(1);
    let pj = ProcessId::new(2);
    let mut b = PatternBuilder::new(3);
    let m_prime = b.send(pi, pj);
    let m = b.send(pk, pi);
    b.checkpoint(pi); // the forced checkpoint C_{i,x+1} of the figure
    b.deliver(m).unwrap();
    b.deliver(m_prime).unwrap();
    b.close().build().expect("figure 2 is well-formed")
}

/// The scenario of **Figure 4**: a non-causal message chain from `C_{k,z}`
/// back to `C_{k,z-1}`, breakable only by `P_i`.
///
/// `P_k` sends `m''`(first leg of `Θ''`) to `P_i`, takes checkpoint
/// `C_{k,z}`, then sends `m'`(the chain `Θ'`) to `P_i`; `P_i` delivers
/// `m'` *after* it delivered `m''`... precisely: `P_i` delivers `m''`,
/// sends nothing, then delivers `m'` in the same interval — forming the
/// chain `Θ' Θ''` from `C_{k,z}` to `C_{k,z-1}` once `P_i`'s interval ends
/// *after* both events with a send back to `P_k` in between? The minimal
/// realization used here:
///
/// * `P_i` delivers `m1` from `P_k` (sent in `I_{k,1}`), then sends `m2`
///   to `P_k`, delivered by `P_k` in `I_{k,1}` *after* `P_k` already sent
///   `m3` to `P_i` from `I_{k,2}`? — impossible; instead, `P_k`
///   checkpoints between sending and delivering, giving the non-simple
///   chain back to `P_i`'s own interval:
/// * `P_i` sends `m1` to `P_k`; `P_k` delivers `m1`, takes `C_{k,1}`,
///   sends `m2` back; `P_i` delivers `m2` in the interval in which it sent
///   `m1`. The chain `[m1 m2]` is causal but **not simple** (it crosses
///   `C_{k,1}`), and it closes a cycle `C_{i,1} → C_{i,1}` in the R-graph
///   through `C_{k,1}` — exactly the situation predicate `C2` prevents.
pub fn figure_4_unbroken() -> Pattern {
    let pi = ProcessId::new(0);
    let pk = ProcessId::new(1);
    let mut b = PatternBuilder::new(2);
    let m1 = b.send(pi, pk);
    b.deliver(m1).unwrap();
    b.checkpoint(pk); // C_{k,1} sits inside the chain
    let m2 = b.send(pk, pi);
    b.deliver(m2).unwrap(); // delivered in I_{i,1}, where m1 was sent
    b.close().build().expect("figure 4 is well-formed")
}

/// The scenario of **Figure 4** with the chain broken: `P_i` checkpoints
/// before delivering `m2`, so the non-causal chain from `C_{k,1}`'s
/// interval back to `C_{k,0}`'s interval is split and RDT holds.
pub fn figure_4_broken() -> Pattern {
    let pi = ProcessId::new(0);
    let pk = ProcessId::new(1);
    let mut b = PatternBuilder::new(2);
    let m1 = b.send(pi, pk);
    b.deliver(m1).unwrap();
    b.checkpoint(pk);
    let m2 = b.send(pk, pi);
    b.checkpoint(pi); // forced by C2 in the protocol
    b.deliver(m2).unwrap();
    b.close().build().expect("figure 4 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_causality::IntervalId;

    #[test]
    fn figure_1_intervals_match_the_figure() {
        let (pattern, f) = figure_1_with_handles();
        assert_eq!(pattern.send_interval(f.m1), IntervalId::new(f.pi, 1));
        assert_eq!(
            pattern.deliver_interval(f.m1),
            Some(IntervalId::new(f.pj, 1))
        );
        assert_eq!(pattern.send_interval(f.m2), IntervalId::new(f.pj, 1));
        assert_eq!(
            pattern.deliver_interval(f.m2),
            Some(IntervalId::new(f.pi, 2))
        );
        assert_eq!(pattern.send_interval(f.m3), IntervalId::new(f.pk, 1));
        assert_eq!(
            pattern.deliver_interval(f.m3),
            Some(IntervalId::new(f.pj, 1))
        );
        assert_eq!(pattern.send_interval(f.m4), IntervalId::new(f.pj, 2));
        assert_eq!(
            pattern.deliver_interval(f.m4),
            Some(IntervalId::new(f.pk, 2))
        );
        assert_eq!(pattern.send_interval(f.m5), IntervalId::new(f.pi, 3));
        assert_eq!(
            pattern.deliver_interval(f.m5),
            Some(IntervalId::new(f.pj, 2))
        );
        assert_eq!(pattern.send_interval(f.m6), IntervalId::new(f.pj, 2));
        assert_eq!(
            pattern.deliver_interval(f.m6),
            Some(IntervalId::new(f.pk, 2))
        );
        assert_eq!(pattern.send_interval(f.m7), IntervalId::new(f.pk, 3));
        assert_eq!(
            pattern.deliver_interval(f.m7),
            Some(IntervalId::new(f.pj, 3))
        );
    }

    #[test]
    fn figure_1_checkpoint_counts() {
        let (pattern, f) = figure_1_with_handles();
        assert!(pattern.is_closed());
        assert_eq!(pattern.checkpoint_count(f.pi), 4); // C_{i,0..3}
        assert_eq!(pattern.checkpoint_count(f.pj), 4);
        assert_eq!(pattern.checkpoint_count(f.pk), 4);
    }

    #[test]
    fn figure_patterns_build_and_linearize() {
        for pattern in [
            figure_2_unbroken(),
            figure_2_broken(),
            figure_4_unbroken(),
            figure_4_broken(),
        ] {
            assert!(pattern.is_closed());
            assert!(pattern.linearize().is_ok());
        }
    }
}
