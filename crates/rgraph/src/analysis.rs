//! Shared, lazily computed analysis artifacts for one pattern.
//!
//! Every offline characterization of RDT needs some subset of the same
//! four artifacts: the replay annotations (vector clocks + transitive
//! dependency vectors), the R-graph, its reachability closure, and the
//! message-chain closures. Before this cache existed, the R-path checker,
//! both doubling checkers and the consistency helpers each rebuilt those
//! from scratch — a triple rebuild per pattern in the differential suite
//! and the sweep grid. [`PatternAnalysis`] computes each artifact at most
//! once and hands out borrows.

use std::sync::OnceLock;

use crate::chains::ZigzagReachability;
use crate::rdt::{check_with_artifacts, RdtReport};
use crate::{CheckpointAnnotations, Pattern, PatternError, RGraph, Reachability, Replay};

/// Lazily computed, shareable analysis artifacts of one (closed) pattern.
///
/// Construction is cheap: nothing is computed until first use, and each
/// artifact is computed exactly once (`OnceLock`-backed, so a shared
/// reference can be handed to parallel sweep workers). All checkpoint- and
/// chain-level checkers accept a `&PatternAnalysis` through their `_with`
/// entry points, so one pattern analyzed by all three RDT
/// characterizations pays for replay, R-graph closure and chain closures
/// a single time.
///
/// # Example
///
/// ```rust
/// use rdt_rgraph::characterization::{all_chains_doubled_with, all_cm_paths_doubled_with};
/// use rdt_rgraph::{paper_figures, PatternAnalysis};
///
/// let analysis = PatternAnalysis::new(&paper_figures::figure_1());
/// // All three characterizations agree, off one set of artifacts.
/// assert!(!analysis.rdt_report().holds());
/// assert!(!all_chains_doubled_with(&analysis));
/// assert!(!all_cm_paths_doubled_with(&analysis));
/// ```
#[derive(Debug)]
pub struct PatternAnalysis {
    pattern: Pattern,
    annotations: OnceLock<Result<CheckpointAnnotations, PatternError>>,
    rgraph: OnceLock<RGraph>,
    reachability: OnceLock<Reachability>,
    zigzag: OnceLock<ZigzagReachability>,
}

impl PatternAnalysis {
    /// Prepares the analysis of `pattern`; a closed copy is taken (the
    /// paper assumes every event is eventually followed by a checkpoint).
    pub fn new(pattern: &Pattern) -> Self {
        Self::from_closed(pattern.to_closed())
    }

    /// Wraps an already-closed pattern without copying it again.
    pub(crate) fn from_closed(pattern: Pattern) -> Self {
        debug_assert!(pattern.is_closed());
        PatternAnalysis {
            pattern,
            annotations: OnceLock::new(),
            rgraph: OnceLock::new(),
            reachability: OnceLock::new(),
            zigzag: OnceLock::new(),
        }
    }

    /// The closed pattern all artifacts describe.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Replay annotations: the vector clock and transitive dependency
    /// vector of every checkpoint. Computed on first call.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the pattern admits no
    /// execution order (the failure is cached too).
    pub fn annotations(&self) -> Result<&CheckpointAnnotations, PatternError> {
        self.annotations
            .get_or_init(|| Replay::new(&self.pattern).annotate())
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The rollback-dependency graph. Computed on first call.
    pub fn rgraph(&self) -> &RGraph {
        self.rgraph.get_or_init(|| RGraph::new(&self.pattern))
    }

    /// The R-graph's transitive closure (word-parallel SCC kernel).
    /// Computed on first call.
    pub fn reachability(&self) -> &Reachability {
        self.reachability
            .get_or_init(|| self.rgraph().reachability())
    }

    /// The zigzag/causal message-chain closures with their interval
    /// indexes. Computed on first call.
    pub fn zigzag(&self) -> &ZigzagReachability {
        self.zigzag
            .get_or_init(|| ZigzagReachability::new(&self.pattern))
    }

    /// Whether any artifact has been computed yet — `false` right after
    /// construction. Mainly useful to tests asserting laziness.
    pub fn is_untouched(&self) -> bool {
        self.annotations.get().is_none()
            && self.rgraph.get().is_none()
            && self.reachability.get().is_none()
            && self.zigzag.get().is_none()
    }

    /// Runs the R-path RDT check (characterization (1)) off the shared
    /// artifacts, with the default violation limit of
    /// [`crate::RdtChecker`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern is unrealizable; use
    /// [`PatternAnalysis::try_rdt_report`] to handle that case.
    pub fn rdt_report(&self) -> RdtReport {
        self.try_rdt_report().expect("pattern must be realizable")
    }

    /// Fallible variant of [`PatternAnalysis::rdt_report`].
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::Unrealizable`] if the pattern admits no
    /// execution order.
    pub fn try_rdt_report(&self) -> Result<RdtReport, PatternError> {
        check_with_artifacts(self, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{all_chains_doubled_with, all_cm_paths_doubled_with};
    use crate::paper_figures;
    use crate::RdtChecker;

    #[test]
    fn artifacts_are_lazy_and_stable() {
        let analysis = PatternAnalysis::new(&paper_figures::figure_1());
        assert!(analysis.is_untouched());
        let first = analysis.rgraph() as *const RGraph;
        let second = analysis.rgraph() as *const RGraph;
        assert_eq!(first, second, "the same artifact is handed out");
        assert!(!analysis.is_untouched());
    }

    #[test]
    fn shared_verdicts_match_standalone_checkers() {
        for pattern in [
            paper_figures::figure_1(),
            paper_figures::figure_2_unbroken(),
            paper_figures::figure_2_broken(),
            paper_figures::figure_4_unbroken(),
            paper_figures::figure_4_broken(),
        ] {
            let analysis = PatternAnalysis::new(&pattern);
            let standalone = RdtChecker::new(&pattern).check();
            let shared = analysis.rdt_report();
            assert_eq!(standalone.holds(), shared.holds());
            assert_eq!(standalone.violations(), shared.violations());
            assert_eq!(standalone.pairs_checked(), shared.pairs_checked());
            assert_eq!(standalone.r_paths_found(), shared.r_paths_found());
            assert_eq!(
                all_chains_doubled_with(&analysis),
                crate::characterization::all_chains_doubled(&pattern)
            );
            assert_eq!(
                all_cm_paths_doubled_with(&analysis),
                crate::characterization::all_cm_paths_doubled(&pattern)
            );
        }
    }

    #[test]
    fn analysis_closes_the_pattern() {
        use rdt_causality::ProcessId;
        let mut b = crate::PatternBuilder::new(2);
        let m = b.send(ProcessId::new(0), ProcessId::new(1));
        b.deliver(m).unwrap();
        let open = b.build().unwrap();
        assert!(!open.is_closed());
        let analysis = PatternAnalysis::new(&open);
        assert!(analysis.pattern().is_closed());
        // The closed pattern's R-graph sees the message edge.
        assert_eq!(analysis.rgraph().num_edges(), 3);
    }
}
