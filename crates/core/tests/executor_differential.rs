//! Differential tests pinning the packed round-executor to the legacy
//! protocol implementations.
//!
//! Each case drives an [`ExecutorCell`] system and the corresponding
//! legacy system through the *same* random schedule (basic checkpoints,
//! sends, out-of-order deliveries) and asserts, event by event:
//!
//! * identical forced-checkpoint decisions and identical checkpoint
//!   records (id, kind, `min_consistent_gc` snapshot);
//! * identical reported `piggyback_bytes` on every send;
//! * identical final control state (`TDV`, `sent_to`, `simple`,
//!   `causal`) and identical [`ProtocolStats`].
//!
//! Since the forced decisions and checkpoint indices agree at every
//! event, the resulting checkpoint and communication patterns are
//! identical too — the executor is a drop-in replacement and the legacy
//! modules remain its oracles.

use proptest::prelude::*;

use rdt_causality::ProcessId;
use rdt_core::{
    spawner, Bhmr, BhmrCausalOnly, BhmrNoSimple, CheckpointRecord, CicProtocol, ExecutorCell,
    ExecutorSpec, Fdas, Fdi, PiggybackSize,
};

/// One abstract system event. `Deliver` picks the `idx % in_flight`-th
/// queued message so schedules exercise message reordering.
#[derive(Debug, Clone, Copy)]
enum Event {
    Basic(u8),
    Send(u8, u8),
    Deliver(u8, u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..8).prop_map(Event::Basic),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Event::Send(a, b)),
        (0u8..8, 0u8..8).prop_map(|(p, i)| Event::Deliver(p, i)),
    ]
}

fn assert_records_eq(legacy: &CheckpointRecord, packed: &CheckpointRecord, context: &str) {
    assert_eq!(legacy.id, packed.id, "checkpoint id diverged at {context}");
    assert_eq!(
        legacy.kind, packed.kind,
        "checkpoint kind diverged at {context}"
    );
    assert_eq!(
        legacy.min_consistent_gc, packed.min_consistent_gc,
        "min consistent GC snapshot diverged at {context}"
    );
}

/// Drives the legacy protocol and the executor through the same schedule,
/// comparing every externally visible decision, then hands the final
/// systems to `compare_final` for a state-level comparison.
fn run_differential<P: CicProtocol>(
    n: usize,
    events: &[Event],
    legacy_factory: impl Fn(usize, ProcessId) -> P,
    spec: ExecutorSpec,
    compare_final: impl Fn(&P, &ExecutorCell),
) {
    let make = spawner(spec);
    let mut legacy: Vec<P> = ProcessId::all(n).map(|p| legacy_factory(n, p)).collect();
    let mut packed: Vec<ExecutorCell> = ProcessId::all(n).map(|p| make(n, p)).collect();
    let mut legacy_queue: Vec<Vec<(ProcessId, P::Piggyback)>> =
        (0..n).map(|_| Vec::new()).collect();
    let mut packed_queue: Vec<Vec<(ProcessId, <ExecutorCell as CicProtocol>::Piggyback)>> =
        (0..n).map(|_| Vec::new()).collect();

    for (step, &event) in events.iter().enumerate() {
        match event {
            Event::Basic(p) => {
                let p = p as usize % n;
                let a = legacy[p].take_basic_checkpoint();
                let b = packed[p].take_basic_checkpoint();
                assert_records_eq(&a, &b, &format!("step {step}: basic checkpoint at P{p}"));
            }
            Event::Send(from, to) => {
                let from = from as usize % n;
                let mut to = to as usize % n;
                if to == from {
                    to = (to + 1) % n;
                }
                let a = legacy[from].before_send(ProcessId::new(to));
                let b = packed[from].before_send(ProcessId::new(to));
                assert_eq!(
                    a.piggyback.piggyback_bytes(),
                    b.piggyback.piggyback_bytes(),
                    "step {step}: piggyback bytes diverged on send P{from}->P{to}"
                );
                legacy_queue[to].push((ProcessId::new(from), a.piggyback));
                packed_queue[to].push((ProcessId::new(from), b.piggyback));
            }
            Event::Deliver(p, idx) => {
                let p = p as usize % n;
                if legacy_queue[p].is_empty() {
                    continue;
                }
                let idx = idx as usize % legacy_queue[p].len();
                let (sender, lpb) = legacy_queue[p].remove(idx);
                let (_, ppb) = packed_queue[p].remove(idx);
                let a = legacy[p].on_message_arrival(sender, &lpb);
                let b = packed[p].on_message_arrival(sender, &ppb);
                let context = format!("step {step}: delivery {sender}->P{p}");
                assert_eq!(
                    a.was_forced(),
                    b.was_forced(),
                    "forced decision diverged at {context}"
                );
                match (&a.forced, &b.forced) {
                    (Some(ra), Some(rb)) => assert_records_eq(ra, rb, &context),
                    (None, None) => {}
                    _ => unreachable!("was_forced already compared"),
                }
            }
        }
    }

    for p in 0..n {
        assert_eq!(
            legacy[p].stats(),
            packed[p].stats(),
            "stats diverged for P{p}"
        );
        assert_eq!(
            legacy[p].next_checkpoint_index(),
            packed[p].next_checkpoint_index(),
            "interval diverged for P{p}"
        );
        compare_final(&legacy[p], &packed[p]);
    }
}

fn compare_bhmr(legacy: &Bhmr, packed: &ExecutorCell) {
    let n = legacy.num_processes();
    for k in ProcessId::all(n) {
        assert_eq!(legacy.tdv().get(k), packed.tdv_entry(k));
        assert_eq!(legacy.sent_to().get(k), packed.sent_to(k));
        assert_eq!(legacy.simple().get(k), packed.simple_entry(k));
        for l in ProcessId::all(n) {
            assert_eq!(
                legacy.causal().get(k, l),
                packed.causal_entry(k, l),
                "causal[{k}][{l}] diverged at {}",
                legacy.process()
            );
        }
    }
}

fn compare_nosimple(legacy: &BhmrNoSimple, packed: &ExecutorCell) {
    let n = legacy.num_processes();
    for k in ProcessId::all(n) {
        assert_eq!(legacy.tdv().get(k), packed.tdv_entry(k));
        assert_eq!(legacy.sent_to().get(k), packed.sent_to(k));
        for l in ProcessId::all(n) {
            assert_eq!(legacy.causal().get(k, l), packed.causal_entry(k, l));
        }
    }
}

fn compare_causalonly(legacy: &BhmrCausalOnly, packed: &ExecutorCell) {
    let n = legacy.num_processes();
    for k in ProcessId::all(n) {
        assert_eq!(legacy.tdv().get(k), packed.tdv_entry(k));
        assert_eq!(legacy.sent_to().get(k), packed.sent_to(k));
        for l in ProcessId::all(n) {
            assert_eq!(legacy.causal().get(k, l), packed.causal_entry(k, l));
        }
    }
}

fn compare_fdas(legacy: &Fdas, packed: &ExecutorCell) {
    let n = legacy.num_processes();
    for k in ProcessId::all(n) {
        assert_eq!(legacy.tdv().get(k), packed.tdv_entry(k));
    }
    assert_eq!(legacy.after_first_send(), packed.after_first_send());
}

fn compare_fdi(legacy: &Fdi, packed: &ExecutorCell) {
    let n = legacy.num_processes();
    for k in ProcessId::all(n) {
        assert_eq!(legacy.tdv().get(k), packed.tdv_entry(k));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn executor_matches_legacy_bhmr(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(n, &events, Bhmr::new, ExecutorSpec::Bhmr, compare_bhmr);
    }

    fn executor_matches_legacy_bhmr_c2only(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(
            n,
            &events,
            Bhmr::weakened_c2_only,
            ExecutorSpec::BhmrC2Only,
            compare_bhmr,
        );
    }

    fn executor_matches_legacy_nosimple(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(
            n,
            &events,
            BhmrNoSimple::new,
            ExecutorSpec::BhmrNoSimple,
            compare_nosimple,
        );
    }

    fn executor_matches_legacy_causalonly(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(
            n,
            &events,
            BhmrCausalOnly::new,
            ExecutorSpec::BhmrCausalOnly,
            compare_causalonly,
        );
    }

    fn executor_matches_legacy_fdas(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(n, &events, Fdas::new, ExecutorSpec::Fdas, compare_fdas);
    }

    fn executor_matches_legacy_fdi(
        n in 2usize..7,
        events in proptest::collection::vec(event_strategy(), 0..160),
    ) {
        run_differential(n, &events, Fdi::new, ExecutorSpec::Fdi, compare_fdi);
    }

    /// Word-parallel kernels must agree with the scalar oracles past the
    /// 64-process word boundary too.
    fn executor_matches_legacy_bhmr_multiword(
        events in proptest::collection::vec(event_strategy(), 0..60),
    ) {
        run_differential(70, &events, Bhmr::new, ExecutorSpec::Bhmr, compare_bhmr);
    }
}
