//! Property-based tests on the protocol state machines: drive a whole
//! system of protocol instances through random (but causally valid) event
//! sequences and check the invariants the paper's correctness argument
//! relies on.
//!
//! The §5.2 generality claim is tested in its *sound* form — predicate
//! implication evaluated on the same state (`(C1 ∨ C2) ⇒ C_FDAS`), not as
//! a run-level count comparison (once a forced checkpoint diverges, two
//! protocols no longer share states; the count comparison is a statistical
//! claim and lives in the simulation-based integration tests).

use proptest::prelude::*;

use rdt_causality::ProcessId;
use rdt_core::{Bcs, Bhmr, CheckpointKind, CicProtocol, Fdas, Fdi};

/// One abstract system event.
#[derive(Debug, Clone, Copy)]
enum Event {
    Basic(u8),
    Send(u8, u8),
    DeliverOldest(u8),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..8).prop_map(Event::Basic),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Event::Send(a, b)),
        (0u8..8).prop_map(Event::DeliverOldest),
    ]
}

/// Drives one protocol type over the event sequence. `observe` is called
/// at every arrival with the receiver's state *before* the arrival, the
/// piggyback, and whether the protocol forced a checkpoint.
fn drive<P, F>(
    n: usize,
    events: &[Event],
    factory: impl Fn(usize, ProcessId) -> P,
    mut observe: F,
) -> Vec<P>
where
    P: CicProtocol + Clone,
    F: FnMut(&P, ProcessId, &P::Piggyback, bool),
{
    let mut system: Vec<P> = ProcessId::all(n).map(|p| factory(n, p)).collect();
    let mut in_flight: Vec<std::collections::VecDeque<(ProcessId, P::Piggyback)>> =
        (0..n).map(|_| Default::default()).collect();
    for &event in events {
        match event {
            Event::Basic(p) => {
                let p = p as usize % n;
                system[p].take_basic_checkpoint();
            }
            Event::Send(from, to) => {
                let from = from as usize % n;
                let mut to = to as usize % n;
                if to == from {
                    to = (to + 1) % n;
                }
                let outcome = system[from].before_send(ProcessId::new(to));
                in_flight[to].push_back((ProcessId::new(from), outcome.piggyback));
            }
            Event::DeliverOldest(p) => {
                let p = p as usize % n;
                if let Some((sender, piggyback)) = in_flight[p].pop_front() {
                    let before = system[p].clone();
                    let outcome = system[p].on_message_arrival(sender, &piggyback);
                    observe(&before, sender, &piggyback, outcome.was_forced());
                }
            }
        }
    }
    system
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The BHMR `simple_i[i]` entry must stay permanently true — the
    /// paper asserts the delivery rules preserve it (§4.1); this is the
    /// black-box check.
    fn bhmr_own_simple_entry_stays_true(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..120),
    ) {
        let system = drive(n, &events, Bhmr::new, |_, _, _, _| {});
        for p in &system {
            prop_assert!(p.simple().get(p.process()));
        }
    }

    /// BHMR's `causal` diagonal entry about its own current interval stays
    /// true, and the `TDV` owner entry equals 1 + checkpoints taken.
    fn bhmr_structural_invariants(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..120),
    ) {
        let system = drive(n, &events, Bhmr::new, |_, _, _, _| {});
        for p in &system {
            let me = p.process();
            prop_assert!(p.causal().get(me, me), "diagonal entry about self");
            let expected = 1 + p.stats().basic_checkpoints + p.stats().forced_checkpoints;
            prop_assert_eq!(u64::from(p.tdv().current_interval()), expected);
        }
    }

    /// §5.2, sound form: whenever `C1 ∨ C2` fires, `C_FDAS` evaluated on
    /// the *same* state fires too — i.e. BHMR only forces where FDAS
    /// (given identical knowledge) would also force.
    fn bhmr_predicate_implies_fdas_predicate(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..150),
    ) {
        drive(n, &events, Bhmr::new, |before, _, piggyback, forced| {
            if forced {
                // C_FDAS = after_first_send ∧ ∃k: m.TDV[k] > TDV[k];
                // sent_to.any() is exactly after_first_send (§5.2).
                assert!(before.sent_to().any(), "forced without a prior send in the interval");
                assert!(
                    before.tdv().has_new_dependency(&piggyback.tdv),
                    "forced without a new dependency"
                );
            }
        });
    }

    /// The TDV never decreases in any component across a delivery, and the
    /// new value is exactly the component-wise max with the piggyback
    /// (modulo the own entry, which a forced checkpoint may bump).
    fn bhmr_tdv_merge_semantics(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..120),
    ) {
        let mut shadow: Vec<Option<Vec<u32>>> = vec![None; n];
        let system = drive(n, &events, Bhmr::new, |before, _, piggyback, forced| {
            let me = before.process();
            let mut expected: Vec<u32> = before
                .tdv()
                .iter()
                .zip(piggyback.tdv.iter())
                .map(|((_, a), (_, b))| a.max(b))
                .collect();
            if forced {
                expected[me.index()] += 1;
            }
            shadow[me.index()] = Some(expected);
        });
        for p in &system {
            if let Some(expected) = &shadow[p.process().index()] {
                // The shadow only reflects the last delivery; further
                // checkpoints may have bumped the own entry.
                for (k, (_, v)) in p.tdv().iter().enumerate() {
                    if k == p.process().index() {
                        prop_assert!(v >= expected[k]);
                    } else {
                        prop_assert!(v >= expected[k], "entry {} regressed", k);
                    }
                }
            }
        }
    }

    /// FDAS: a forced checkpoint resets the send flag, and FDI forces on
    /// every delivery carrying a new dependency (checked on pre-state).
    fn fixed_dependency_predicates(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..150),
    ) {
        drive(n, &events, Fdas::new, |before, _, piggyback, forced| {
            if forced {
                assert!(before.after_first_send());
                assert!(before.tdv().has_new_dependency(&piggyback.tdv));
            }
        });
        drive(n, &events, Fdi::new, |before, _, piggyback, forced| {
            assert_eq!(forced, before.tdv().has_new_dependency(&piggyback.tdv));
        });
    }

    /// BCS invariant: epochs never decrease, a delivery's epoch never
    /// exceeds the receiver's afterwards, and forcing happens exactly on
    /// epoch gaps.
    fn bcs_epoch_discipline(
        n in 2usize..6,
        events in proptest::collection::vec(event_strategy(), 0..150),
    ) {
        drive(n, &events, Bcs::new, |before, _, piggyback, forced| {
            assert_eq!(forced, piggyback.epoch > before.epoch());
        });
    }

    /// Checkpoint records carry dense, increasing indices with the right
    /// kinds.
    fn record_indices_are_dense(
        n in 2usize..5,
        events in proptest::collection::vec(event_strategy(), 0..100),
    ) {
        let mut system: Vec<Bhmr> = ProcessId::all(n).map(|p| Bhmr::new(n, p)).collect();
        let mut next = vec![1u32; n];
        for &event in &events {
            if let Event::Basic(p) = event {
                let p = p as usize % n;
                let record = system[p].take_basic_checkpoint();
                prop_assert_eq!(record.id.index, next[p]);
                prop_assert_eq!(record.kind, CheckpointKind::Basic);
                next[p] += 1;
            }
        }
    }
}
