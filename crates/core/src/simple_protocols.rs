//! The classical piggyback-free checkpointing disciplines, plus the
//! uncoordinated negative control.
//!
//! These protocols predate dependency-vector tracking: they enforce RDT by
//! *shape* alone — constraining where sends and deliveries may appear inside
//! a checkpoint interval — and therefore need no control information on
//! messages at all. They anchor the conservative end of the evaluation's
//! protocol lattice:
//!
//! * [`Cbr`] — *Checkpoint-Before-Receive* (Russell): every delivery opens
//!   a fresh interval.
//! * [`Cas`] — *Checkpoint-After-Send* (Wu & Fuchs): every send closes its
//!   interval.
//! * [`Nras`] — *No-Receive-After-Send* (Russell): within an interval all
//!   deliveries precede all sends.
//!
//! In every case a delivery can never follow a send inside one interval, so
//! **every message chain is causal** and RDT holds trivially.
//!
//! [`Uncoordinated`] takes no forced checkpoints at all; it exists to
//! demonstrate hidden dependencies, domino effects, and RDT violations in
//! tests and experiments.

use rdt_causality::{CheckpointId, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};

/// The empty piggyback of the piggyback-free protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmptyPiggyback;

impl PiggybackSize for EmptyPiggyback {
    fn piggyback_bytes(&self) -> usize {
        0
    }
}

/// Shared bookkeeping of the piggyback-free protocols.
#[derive(Debug, Clone)]
struct PlainState {
    me: ProcessId,
    n: usize,
    next_index: u32,
    sent_in_interval: bool,
    delivered_in_interval: bool,
    stats: ProtocolStats,
}

impl PlainState {
    fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        PlainState {
            me,
            n,
            next_index: 1, // C_{i,0} taken at construction
            sent_in_interval: false,
            delivered_in_interval: false,
            stats: ProtocolStats::default(),
        }
    }

    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, self.next_index),
            kind,
            min_consistent_gc: None,
        };
        self.next_index += 1;
        self.sent_in_interval = false;
        self.delivered_in_interval = false;
        record
    }

    fn basic(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.take_checkpoint(CheckpointKind::Basic)
    }

    fn forced(&mut self) -> CheckpointRecord {
        self.stats.forced_checkpoints += 1;
        self.take_checkpoint(CheckpointKind::Forced)
    }

    fn note_send(&mut self) {
        self.sent_in_interval = true;
        self.stats.messages_sent += 1;
    }

    fn note_delivery(&mut self) {
        self.delivered_in_interval = true;
        self.stats.messages_delivered += 1;
    }
}

macro_rules! plain_protocol_boilerplate {
    () => {
        type Piggyback = EmptyPiggyback;

        fn process(&self) -> ProcessId {
            self.state.me
        }

        fn num_processes(&self) -> usize {
            self.state.n
        }

        fn next_checkpoint_index(&self) -> u32 {
            self.state.next_index
        }

        fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
            self.state.basic()
        }

        fn stats(&self) -> &ProtocolStats {
            &self.state.stats
        }
    };
}

/// *Checkpoint-Before-Receive*: a forced checkpoint precedes every delivery
/// that would otherwise share its interval with an earlier event.
///
/// The textbook formulation checkpoints before *every* receive; this
/// implementation skips the checkpoint when the current interval is still
/// empty (the delivery is then the interval's first event and the extra
/// checkpoint would be indistinguishable from the previous one in the
/// R-graph). The count of *meaningful* forced checkpoints is unchanged.
#[derive(Debug, Clone)]
pub struct Cbr {
    state: PlainState,
}

impl Cbr {
    /// Creates `P_me`'s CBR state for an `n`-process computation.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Cbr {
            state: PlainState::new(n, me),
        }
    }
}

impl CicProtocol for Cbr {
    plain_protocol_boilerplate!();

    fn name(&self) -> &'static str {
        "cbr"
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<EmptyPiggyback> {
        self.state.note_send();
        SendOutcome {
            piggyback: EmptyPiggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        _piggyback: &EmptyPiggyback,
    ) -> ArrivalOutcome {
        let interval_dirty = self.state.sent_in_interval || self.state.delivered_in_interval;
        let forced = interval_dirty.then(|| self.state.forced());
        self.state.note_delivery();
        ArrivalOutcome { forced }
    }
}

/// *Checkpoint-After-Send*: a forced checkpoint immediately follows every
/// send event (Wu & Fuchs, recoverable distributed shared virtual memory).
///
/// Each interval thus contains at most one send, as its last event, so no
/// delivery can follow a send inside an interval and every message chain is
/// causal.
#[derive(Debug, Clone)]
pub struct Cas {
    state: PlainState,
}

impl Cas {
    /// Creates `P_me`'s CAS state for an `n`-process computation.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Cas {
            state: PlainState::new(n, me),
        }
    }
}

impl CicProtocol for Cas {
    plain_protocol_boilerplate!();

    fn name(&self) -> &'static str {
        "cas"
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<EmptyPiggyback> {
        self.state.note_send();
        let forced_after = Some(self.state.forced());
        SendOutcome {
            piggyback: EmptyPiggyback,
            forced_after,
        }
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        _piggyback: &EmptyPiggyback,
    ) -> ArrivalOutcome {
        self.state.note_delivery();
        ArrivalOutcome::delivered()
    }
}

/// *No-Receive-After-Send*: a forced checkpoint precedes a delivery iff a
/// send has already occurred in the current interval (Russell's state
/// restoration discipline).
///
/// Strictly lazier than [`Cas`] and [`Cbr`], strictly more conservative
/// than [`Fdas`](crate::Fdas) (which additionally requires the message to
/// bring a new dependency).
#[derive(Debug, Clone)]
pub struct Nras {
    state: PlainState,
}

impl Nras {
    /// Creates `P_me`'s NRAS state for an `n`-process computation.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Nras {
            state: PlainState::new(n, me),
        }
    }
}

impl CicProtocol for Nras {
    plain_protocol_boilerplate!();

    fn name(&self) -> &'static str {
        "nras"
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<EmptyPiggyback> {
        self.state.note_send();
        SendOutcome {
            piggyback: EmptyPiggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        _piggyback: &EmptyPiggyback,
    ) -> ArrivalOutcome {
        let forced = self.state.sent_in_interval.then(|| self.state.forced());
        self.state.note_delivery();
        ArrivalOutcome { forced }
    }
}

/// No coordination at all: processes only take their basic checkpoints.
///
/// The resulting patterns generally violate RDT and may exhibit the domino
/// effect; this protocol is the negative control of the test-suite and the
/// recovery experiments.
#[derive(Debug, Clone)]
pub struct Uncoordinated {
    state: PlainState,
}

impl Uncoordinated {
    /// Creates `P_me`'s (trivial) state for an `n`-process computation.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Uncoordinated {
            state: PlainState::new(n, me),
        }
    }
}

impl CicProtocol for Uncoordinated {
    plain_protocol_boilerplate!();

    fn name(&self) -> &'static str {
        "uncoordinated"
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<EmptyPiggyback> {
        self.state.note_send();
        SendOutcome {
            piggyback: EmptyPiggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        _piggyback: &EmptyPiggyback,
    ) -> ArrivalOutcome {
        self.state.note_delivery();
        ArrivalOutcome::delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn cbr_forces_before_delivery_in_dirty_interval() {
        let mut c = Cbr::new(2, p(0));
        // Fresh interval: first delivery does not force.
        assert!(!c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
        // Second delivery in the same interval forces.
        assert!(c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
        // A send also dirties the interval.
        c.take_basic_checkpoint();
        c.before_send(p(1));
        assert!(c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
    }

    #[test]
    fn cas_checkpoints_after_every_send() {
        let mut c = Cas::new(2, p(0));
        let s1 = c.before_send(p(1));
        assert!(s1.forced_after.is_some());
        assert_eq!(s1.forced_after.unwrap().id.index, 1);
        let s2 = c.before_send(p(1));
        assert_eq!(s2.forced_after.unwrap().id.index, 2);
        assert_eq!(c.stats().forced_checkpoints, 2);
        // Deliveries never force.
        assert!(!c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
    }

    #[test]
    fn nras_forces_only_after_send() {
        let mut c = Nras::new(2, p(0));
        assert!(!c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
        c.before_send(p(1));
        assert!(c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
        // The forced checkpoint reset the flag; next delivery is free.
        assert!(!c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
    }

    #[test]
    fn uncoordinated_never_forces() {
        let mut c = Uncoordinated::new(2, p(0));
        c.before_send(p(1));
        for _ in 0..10 {
            assert!(!c.on_message_arrival(p(1), &EmptyPiggyback).was_forced());
        }
        assert_eq!(c.stats().forced_checkpoints, 0);
        assert_eq!(c.stats().messages_delivered, 10);
    }

    #[test]
    fn basic_checkpoints_advance_indices() {
        let mut c = Uncoordinated::new(2, p(0));
        assert_eq!(c.next_checkpoint_index(), 1);
        let r = c.take_basic_checkpoint();
        assert_eq!(r.id, CheckpointId::new(p(0), 1));
        assert_eq!(r.kind, CheckpointKind::Basic);
        assert_eq!(c.next_checkpoint_index(), 2);
    }

    #[test]
    fn empty_piggyback_is_free() {
        assert_eq!(EmptyPiggyback.piggyback_bytes(), 0);
    }

    #[test]
    fn no_min_gc_for_plain_protocols() {
        let mut c = Nras::new(2, p(0));
        assert_eq!(c.take_basic_checkpoint().min_consistent_gc, None);
    }
}
