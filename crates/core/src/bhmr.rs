//! The BHMR protocol — Figure 6 of the paper.

use std::cmp::Ordering;

use rdt_causality::{BoolMatrix, BoolVector, CheckpointId, DependencyVector, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};

/// Control information the BHMR protocol piggybacks on every application
/// message: the full `(TDV, simple, causal)` triple.
///
/// Fields are public because the piggyback is plain data: tests and offline
/// replayers construct instances directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BhmrPiggyback {
    /// The sender's transitive dependency vector at send time.
    pub tdv: DependencyVector,
    /// The sender's `simple` vector: `simple[k]` iff, to the sender's
    /// knowledge, all causal message chains from `C_{k,TDV[k]}` to the
    /// sender's current state are *simple* (contain no intermediate
    /// checkpoint).
    pub simple: BoolVector,
    /// The sender's `causal` matrix: `causal[k][l]` iff, to the sender's
    /// knowledge, there is an on-line trackable R-path from `C_{k,TDV[k]}`
    /// to `C_{l,TDV[l]}`.
    pub causal: BoolMatrix,
}

impl PiggybackSize for BhmrPiggyback {
    fn piggyback_bytes(&self) -> usize {
        self.tdv.piggyback_bytes() + self.simple.piggyback_bytes() + self.causal.piggyback_bytes()
    }
}

/// The communication-induced checkpointing protocol of the paper (§4),
/// named **BHMR** after its authors.
///
/// The protocol forces a checkpoint before delivering message `m` iff
///
/// ```text
/// C1: ∃j: sent_to[j] ∧ ∃k: (m.TDV[k] > TDV[k] ∧ ¬m.causal[k][j])
/// C2: m.TDV[i] = TDV[i] ∧ ¬m.simple[i]
/// ```
///
/// `C1` prevents a non-causal message chain — breakable here and, to the
/// receiver's knowledge, without a causal sibling — from forming between two
/// *different* processes; `C2` prevents a non-causal chain from `C_{k,z}`
/// back to `C_{k,z-1}` on the *same* process, which only this process can
/// break (§4.1). Together they guarantee every R-path of the resulting
/// checkpoint and communication pattern is on-line trackable
/// (Theorem 4.4), i.e. the pattern satisfies RDT.
///
/// Additionally, the `TDV` saved with each checkpoint is the minimum
/// consistent global checkpoint containing it (Corollary 4.5); it is
/// reported in [`CheckpointRecord::min_consistent_gc`].
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_core::{Bhmr, CicProtocol};
///
/// let mut p = Bhmr::new(3, ProcessId::new(0));
/// let record = p.take_basic_checkpoint();
/// assert_eq!(record.id.index, 1); // C_{0,0} was taken at construction
/// ```
#[derive(Debug, Clone)]
pub struct Bhmr {
    me: ProcessId,
    n: usize,
    tdv: DependencyVector,
    sent_to: BoolVector,
    simple: BoolVector,
    causal: BoolMatrix,
    stats: ProtocolStats,
    /// Whether predicate `C1` participates in the forcing decision. Always
    /// `true` for the real protocol; [`Bhmr::weakened_c2_only`] clears it
    /// to give the certifier a deliberately broken protocol whose
    /// counterexamples it must find.
    use_c1: bool,
}

impl Bhmr {
    /// Creates `P_me`'s protocol state for an `n`-process computation and
    /// takes the initial checkpoint `C_{me,0}` (statement S0 of Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        let mut simple = BoolVector::new(n);
        simple.set(me, true); // simple_i[i] is permanently true
        Bhmr {
            me,
            n,
            // `initial` already encodes: all entries 0, then the initial
            // take_checkpoint increments the owner entry to 1.
            tdv: DependencyVector::initial(n, me),
            sent_to: BoolVector::new(n),
            simple,
            causal: BoolMatrix::identity(n),
            stats: ProtocolStats::default(),
            use_c1: true,
        }
    }

    /// A deliberately *weakened* BHMR that forces on `C2` alone, ignoring
    /// `C1` entirely.
    ///
    /// This drops exactly the guard against breakable non-causal chains
    /// between different processes, so the protocol no longer ensures RDT
    /// (the paper's Figure 2 hidden-dependency scenario slips through).
    /// It exists for negative testing: the exhaustive certifier must
    /// report counterexamples for it at small scope.
    pub fn weakened_c2_only(n: usize, me: ProcessId) -> Self {
        Bhmr {
            use_c1: false,
            ..Bhmr::new(n, me)
        }
    }

    /// Whether this instance runs the full `C1 ∨ C2` predicate (`true`) or
    /// the weakened `C2`-only variant (`false`).
    pub fn uses_c1(&self) -> bool {
        self.use_c1
    }

    /// The current transitive dependency vector `TDV_i`.
    pub fn tdv(&self) -> &DependencyVector {
        &self.tdv
    }

    /// The current `simple_i` vector.
    pub fn simple(&self) -> &BoolVector {
        &self.simple
    }

    /// The current `causal_i` matrix.
    pub fn causal(&self) -> &BoolMatrix {
        &self.causal
    }

    /// The current `sent_to_i` vector.
    pub fn sent_to(&self) -> &BoolVector {
        &self.sent_to
    }

    /// Procedure `take_checkpoint` of Figure 6.
    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let index = self.tdv.current_interval();
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, index),
            kind,
            min_consistent_gc: Some(self.tdv.as_slice().to_vec()),
        };
        self.sent_to.fill(false);
        for j in ProcessId::all(self.n) {
            if j != self.me {
                self.simple.set(j, false);
                self.causal.set(self.me, j, false);
            }
        }
        self.tdv.increment_owner();
        record
    }

    /// Predicate `C1`: to `P_i`'s knowledge there exists a non-causal
    /// message chain from some `P_k` to some `P_j`, without causal sibling
    /// and breakable by `P_i`.
    fn c1(&self, piggyback: &BhmrPiggyback) -> bool {
        // ∃j: sent_to[j] ∧ ∃k: (m.TDV[k] > TDV[k] ∧ ¬m.causal[k][j])
        let fresh: Vec<ProcessId> = self.tdv.new_dependencies(&piggyback.tdv).collect();
        if fresh.is_empty() {
            return false;
        }
        self.sent_to
            .ones()
            .any(|j| fresh.iter().any(|&k| !piggyback.causal.get(k, j)))
    }

    /// Predicate `C2`: to `P_i`'s knowledge there exists a non-causal
    /// message chain from some `C_{k,z}` to `C_{k,z-1}`, breakable only by
    /// `P_i`.
    fn c2(&self, piggyback: &BhmrPiggyback) -> bool {
        piggyback.tdv.get(self.me) == self.tdv.current_interval() && !piggyback.simple.get(self.me)
    }
}

impl CicProtocol for Bhmr {
    type Piggyback = BhmrPiggyback;

    fn name(&self) -> &'static str {
        if self.use_c1 {
            "bhmr"
        } else {
            "bhmr-c2only"
        }
    }

    fn process(&self) -> ProcessId {
        self.me
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.tdv.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<BhmrPiggyback> {
        // Statement S1 of Figure 6.
        self.sent_to.set(dest, true);
        let piggyback = BhmrPiggyback {
            tdv: self.tdv.clone(),
            simple: self.simple.clone(),
            causal: self.causal.clone(),
        };
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += piggyback.piggyback_bytes() as u64;
        SendOutcome {
            piggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        sender: ProcessId,
        piggyback: &BhmrPiggyback,
    ) -> ArrivalOutcome {
        // Statement S2 of Figure 6.
        let forced = if (self.use_c1 && self.c1(piggyback)) || self.c2(piggyback) {
            self.stats.forced_checkpoints += 1;
            Some(self.take_checkpoint(CheckpointKind::Forced))
        } else {
            None
        };

        // Updating of control variables.
        for k in ProcessId::all(self.n) {
            match piggyback.tdv.get(k).cmp(&self.tdv.get(k)) {
                Ordering::Less => {}
                Ordering::Greater => {
                    self.tdv.set(k, piggyback.tdv.get(k));
                    self.simple.set(k, piggyback.simple.get(k));
                    self.causal.copy_row_from(k, &piggyback.causal);
                }
                Ordering::Equal => {
                    self.simple
                        .set(k, self.simple.get(k) && piggyback.simple.get(k));
                    self.causal.or_row_from(k, &piggyback.causal);
                }
            }
        }
        // The delivered message itself is an on-line trackable R-path from
        // the sender's current interval, and everything the sender tracked
        // now reaches us too (transitive closure through the sender).
        self.causal.set(sender, self.me, true);
        self.causal.or_column_into(sender, self.me);

        // The paper requires simple_i[i] to be permanently true; the update
        // rules preserve this automatically (see module tests).
        debug_assert!(self.simple.get(self.me), "simple_i[i] must stay true");

        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }

    fn stats(&self) -> &ProtocolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initial_state_matches_s0() {
        let bhmr = Bhmr::new(3, p(1));
        assert_eq!(bhmr.tdv().as_slice(), &[0, 1, 0]);
        assert_eq!(bhmr.next_checkpoint_index(), 1);
        assert!(bhmr.simple().get(p(1)));
        assert!(!bhmr.simple().get(p(0)));
        assert!(bhmr.causal().get(p(0), p(0)));
        assert!(bhmr.causal().get(p(1), p(1)));
        assert!(!bhmr.causal().get(p(0), p(1)));
        assert!(bhmr.sent_to().is_all_false());
    }

    #[test]
    fn basic_checkpoint_advances_interval_and_resets_knowledge() {
        let mut bhmr = Bhmr::new(2, p(0));
        bhmr.before_send(p(1));
        assert!(bhmr.sent_to().get(p(1)));
        let record = bhmr.take_basic_checkpoint();
        assert_eq!(record.id, CheckpointId::new(p(0), 1));
        assert_eq!(record.kind, CheckpointKind::Basic);
        assert_eq!(record.min_consistent_gc, Some(vec![1, 0]));
        assert_eq!(bhmr.next_checkpoint_index(), 2);
        assert!(bhmr.sent_to().is_all_false());
        assert!(!bhmr.causal().get(p(0), p(1)));
        assert!(bhmr.simple().get(p(0)), "own entry stays true");
    }

    #[test]
    fn first_arrival_never_forces() {
        let mut sender = Bhmr::new(2, p(1));
        let mut receiver = Bhmr::new(2, p(0));
        let send = sender.before_send(p(0));
        let outcome = receiver.on_message_arrival(p(1), &send.piggyback);
        assert!(!outcome.was_forced());
        // Delivery merged the dependency and recorded trackability.
        assert_eq!(receiver.tdv().as_slice(), &[1, 1]);
        assert!(receiver.causal().get(p(1), p(0)));
    }

    #[test]
    fn c1_forces_on_breakable_chain_without_sibling() {
        // Figure 2's situation: P0 sent m' to P1 in its current interval;
        // then m arrives from P2 bringing a new dependency on P2's interval,
        // with no known causal sibling from P2 to P1.
        let mut p0 = Bhmr::new(3, p(0));
        let mut p1 = Bhmr::new(3, p(1));
        let mut p2 = Bhmr::new(3, p(2));

        let to_p1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &to_p1.piggyback);

        p2.take_basic_checkpoint(); // make P2's dependency fresh (interval 2)
        let m = p2.before_send(p(0));
        let outcome = p0.on_message_arrival(p(2), &m.piggyback);
        assert!(outcome.was_forced());
        let record = outcome.forced.unwrap();
        assert_eq!(record.kind, CheckpointKind::Forced);
        assert_eq!(record.id, CheckpointId::new(p(0), 1));
        // The forced checkpoint is taken BEFORE the delivery, so the new
        // dependency belongs to the next interval.
        assert_eq!(p0.tdv().as_slice(), &[2, 0, 2]);
    }

    #[test]
    fn c1_suppressed_by_known_causal_sibling() {
        // Same as above but the piggybacked causal matrix certifies a causal
        // sibling from P2's interval to P1's interval (Figure 3).
        let mut p0 = Bhmr::new(3, p(0));
        p0.before_send(p(1)); // sent_to[1]

        let mut tdv = DependencyVector::initial(3, p(2));
        tdv.increment_owner(); // interval 2: a new dependency for P0
        let mut causal = BoolMatrix::identity(3);
        causal.set(p(2), p(1), true); // causal sibling exists
        causal.set(p(2), p(0), true);
        let mut simple = BoolVector::new(3);
        simple.set(p(2), true);
        let m = BhmrPiggyback {
            tdv,
            simple,
            causal,
        };

        let outcome = p0.on_message_arrival(p(2), &m);
        assert!(!outcome.was_forced());
    }

    #[test]
    fn no_send_in_interval_means_no_c1() {
        // Without a prior send there is nothing breakable by P0.
        let mut p0 = Bhmr::new(3, p(0));
        let mut p2 = Bhmr::new(3, p(2));
        p2.take_basic_checkpoint();
        let m = p2.before_send(p(0));
        assert!(!p0.on_message_arrival(p(2), &m.piggyback).was_forced());
    }

    #[test]
    fn c2_forces_on_non_simple_chain_back_to_self() {
        // P0 sends m1 to P1; P1 checkpoints (the chain back to P0 is now
        // non-simple); P1 sends m2 to P0. Delivering m2 in the same interval
        // where m1 was sent would create a non-causal chain from C_{1,?} to
        // the checkpoint preceding it, breakable only by P0 => C2.
        let mut p0 = Bhmr::new(2, p(0));
        let mut p1 = Bhmr::new(2, p(1));

        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        p1.take_basic_checkpoint();
        let m2 = p1.before_send(p(0));

        assert_eq!(m2.piggyback.tdv.get(p(0)), 1);
        assert!(
            !m2.piggyback.simple.get(p(0)),
            "chain includes a checkpoint"
        );

        let outcome = p0.on_message_arrival(p(1), &m2.piggyback);
        assert!(outcome.was_forced());
    }

    #[test]
    fn simple_chain_back_to_self_does_not_force() {
        // Same as above without P1's checkpoint: the chain is causal and
        // simple; no hidden dependency is possible.
        let mut p0 = Bhmr::new(2, p(0));
        let mut p1 = Bhmr::new(2, p(1));

        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        let m2 = p1.before_send(p(0));
        assert!(m2.piggyback.simple.get(p(0)));

        let outcome = p0.on_message_arrival(p(1), &m2.piggyback);
        assert!(!outcome.was_forced());
    }

    #[test]
    fn stats_track_all_events() {
        let mut a = Bhmr::new(2, p(0));
        let mut b = Bhmr::new(2, p(1));
        let m = a.before_send(p(1));
        b.on_message_arrival(p(0), &m.piggyback);
        a.take_basic_checkpoint();
        assert_eq!(a.stats().messages_sent, 1);
        assert_eq!(a.stats().basic_checkpoints, 1);
        assert_eq!(b.stats().messages_delivered, 1);
        assert!(a.stats().piggyback_bytes_sent > 0);
    }

    #[test]
    fn piggyback_size_accounts_all_three_structures() {
        let mut a = Bhmr::new(4, p(0));
        let m = a.before_send(p(1));
        // TDV: 4*4 = 16 bytes; simple: ceil(4/8) = 1; causal: ceil(16/8) = 2.
        assert_eq!(m.piggyback.piggyback_bytes(), 19);
    }

    #[test]
    fn min_gc_is_tdv_snapshot() {
        let mut a = Bhmr::new(3, p(0));
        let mut b = Bhmr::new(3, p(1));
        b.take_basic_checkpoint(); // P1 now in interval 2
        let m = b.before_send(p(0));
        a.on_message_arrival(p(1), &m.piggyback);
        let record = a.take_basic_checkpoint();
        // C_{0,1}'s minimum consistent GC: itself, C_{1,2}, C_{2,0}.
        assert_eq!(record.min_consistent_gc, Some(vec![1, 2, 0]));
    }

    #[test]
    fn forced_checkpoint_counted_once() {
        let mut p0 = Bhmr::new(2, p(0));
        let mut p1 = Bhmr::new(2, p(1));
        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        p1.take_basic_checkpoint();
        let m2 = p1.before_send(p(0));
        let outcome = p0.on_message_arrival(p(1), &m2.piggyback);
        assert!(outcome.was_forced());
        assert_eq!(p0.stats().forced_checkpoints, 1);
        assert_eq!(p0.stats().basic_checkpoints, 0);
    }
}
