//! The [`CicProtocol`] trait and the records it produces.

use std::fmt;

use rdt_causality::{CheckpointId, ProcessId};

/// Why a local checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckpointKind {
    /// The initial checkpoint `C_{i,0}` every process takes at its initial
    /// state.
    Initial,
    /// A checkpoint the application decided to take independently.
    Basic,
    /// A checkpoint the protocol forced in order to break a (potentially)
    /// hidden dependency.
    Forced,
}

impl fmt::Display for CheckpointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckpointKind::Initial => "initial",
            CheckpointKind::Basic => "basic",
            CheckpointKind::Forced => "forced",
        };
        f.write_str(s)
    }
}

/// Record of one local checkpoint, as reported by a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Which checkpoint was taken.
    pub id: CheckpointId,
    /// Whether it was basic or forced.
    pub kind: CheckpointKind,
    /// For protocols that maintain a transitive dependency vector, the value
    /// `TDV_i^x` saved with checkpoint `C_{i,x}`.
    ///
    /// By Corollary 4.5 of the paper, for the RDT-ensuring protocols this is
    /// exactly the **minimum consistent global checkpoint containing the
    /// checkpoint**: entry `k` is the index of `P_k`'s checkpoint in that
    /// global checkpoint.
    pub min_consistent_gc: Option<Vec<u32>>,
}

/// Outcome of [`CicProtocol::before_send`].
#[derive(Debug, Clone)]
pub struct SendOutcome<P> {
    /// Control information to piggyback on the application message.
    pub piggyback: P,
    /// A checkpoint the protocol takes immediately *after* the send event
    /// (only the checkpoint-after-send protocol uses this).
    pub forced_after: Option<CheckpointRecord>,
}

/// Outcome of [`CicProtocol::on_message_arrival`].
#[derive(Debug, Clone)]
pub struct ArrivalOutcome {
    /// A checkpoint the protocol forced *before* delivering the message, or
    /// `None` if the message is delivered directly.
    pub forced: Option<CheckpointRecord>,
}

impl ArrivalOutcome {
    /// An outcome with no forced checkpoint.
    pub fn delivered() -> Self {
        ArrivalOutcome { forced: None }
    }

    /// An outcome with a forced checkpoint taken before delivery.
    pub fn forced(record: CheckpointRecord) -> Self {
        ArrivalOutcome {
            forced: Some(record),
        }
    }

    /// Returns `true` if a checkpoint was forced.
    pub fn was_forced(&self) -> bool {
        self.forced.is_some()
    }
}

/// Types that can report how many bytes they occupy when piggybacked on an
/// application message.
///
/// The byte counts follow the abstract encoding used throughout the paper's
/// cost discussion (§5.2): 4 bytes per dependency-vector entry, 1 bit per
/// boolean; serialization framing is deliberately ignored so that the
/// protocol lattice's *intrinsic* control-information sizes can be compared.
pub trait PiggybackSize {
    /// Size in bytes of this piggyback.
    fn piggyback_bytes(&self) -> usize;
}

impl PiggybackSize for () {
    fn piggyback_bytes(&self) -> usize {
        0
    }
}

/// Aggregate counters every protocol maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// Basic (application-decided) checkpoints taken.
    pub basic_checkpoints: u64,
    /// Forced (protocol-decided) checkpoints taken.
    pub forced_checkpoints: u64,
    /// Application messages sent.
    pub messages_sent: u64,
    /// Application messages delivered.
    pub messages_delivered: u64,
    /// Total bytes of control information piggybacked on sent messages.
    pub piggyback_bytes_sent: u64,
}

impl ProtocolStats {
    /// Total checkpoints excluding the initial one.
    pub fn total_checkpoints(&self) -> u64 {
        self.basic_checkpoints + self.forced_checkpoints
    }

    /// The paper's headline metric: ratio of forced to basic checkpoints.
    ///
    /// Returns `0.0` when no basic checkpoint was taken.
    pub fn forced_ratio(&self) -> f64 {
        if self.basic_checkpoints == 0 {
            0.0
        } else {
            self.forced_checkpoints as f64 / self.basic_checkpoints as f64
        }
    }

    /// Mean piggyback size per sent message, in bytes.
    pub fn mean_piggyback_bytes(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.piggyback_bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Component-wise sum, for aggregating per-process stats into a run
    /// total.
    pub fn merge(&mut self, other: &ProtocolStats) {
        self.basic_checkpoints += other.basic_checkpoints;
        self.forced_checkpoints += other.forced_checkpoints;
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.piggyback_bytes_sent += other.piggyback_bytes_sent;
    }
}

/// A communication-induced checkpointing protocol as a pure state machine.
///
/// One value of an implementing type holds the *local* control state of one
/// process `P_i`. The embedding runtime (simulator, replayer, or a real
/// transport) must call:
///
/// * [`take_basic_checkpoint`](CicProtocol::take_basic_checkpoint) whenever
///   the application spontaneously checkpoints;
/// * [`before_send`](CicProtocol::before_send) at every send event, and
///   attach the returned piggyback to the message;
/// * [`on_message_arrival`](CicProtocol::on_message_arrival) when a message
///   *arrives* and before it is *delivered*; if the outcome carries a forced
///   checkpoint, the runtime must record it as occurring **before** the
///   delivery event.
///
/// Implementations take the initial checkpoint `C_{i,0}` at construction;
/// the first record returned by `take_basic_checkpoint` is therefore
/// `C_{i,1}`.
///
/// Determinism: implementations must be pure functions of their call
/// history, which is what makes simulation runs reproducible and lets the
/// test-suite compare protocols event-by-event on identical schedules.
pub trait CicProtocol {
    /// Control information attached to every application message.
    type Piggyback: Clone + fmt::Debug + PiggybackSize;

    /// Short stable name used in reports (e.g. `"bhmr"`, `"fdas"`).
    fn name(&self) -> &'static str;

    /// The process this state machine belongs to.
    fn process(&self) -> ProcessId;

    /// Number of processes in the computation.
    fn num_processes(&self) -> usize;

    /// Index the *next* local checkpoint will get.
    fn next_checkpoint_index(&self) -> u32;

    /// The application takes a basic checkpoint.
    fn take_basic_checkpoint(&mut self) -> CheckpointRecord;

    /// A message is about to be sent to `dest`; returns the piggyback (and,
    /// for checkpoint-after-send, a checkpoint following the send event).
    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<Self::Piggyback>;

    /// A message from `sender` carrying `piggyback` has arrived and is about
    /// to be delivered.
    fn on_message_arrival(
        &mut self,
        sender: ProcessId,
        piggyback: &Self::Piggyback,
    ) -> ArrivalOutcome;

    /// Aggregate counters.
    fn stats(&self) -> &ProtocolStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ratios() {
        let stats = ProtocolStats {
            basic_checkpoints: 10,
            forced_checkpoints: 5,
            messages_sent: 4,
            messages_delivered: 4,
            piggyback_bytes_sent: 100,
        };
        assert_eq!(stats.total_checkpoints(), 15);
        assert!((stats.forced_ratio() - 0.5).abs() < 1e-12);
        assert!((stats.mean_piggyback_bytes() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_ratios_handle_zero_denominators() {
        let stats = ProtocolStats::default();
        assert_eq!(stats.forced_ratio(), 0.0);
        assert_eq!(stats.mean_piggyback_bytes(), 0.0);
    }

    #[test]
    fn stats_merge_adds_componentwise() {
        let mut a = ProtocolStats {
            basic_checkpoints: 1,
            forced_checkpoints: 2,
            messages_sent: 3,
            messages_delivered: 4,
            piggyback_bytes_sent: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.basic_checkpoints, 2);
        assert_eq!(a.forced_checkpoints, 4);
        assert_eq!(a.messages_sent, 6);
        assert_eq!(a.messages_delivered, 8);
        assert_eq!(a.piggyback_bytes_sent, 10);
    }

    #[test]
    fn arrival_outcome_constructors() {
        assert!(!ArrivalOutcome::delivered().was_forced());
        let record = CheckpointRecord {
            id: CheckpointId::new(ProcessId::new(0), 1),
            kind: CheckpointKind::Forced,
            min_consistent_gc: None,
        };
        assert!(ArrivalOutcome::forced(record).was_forced());
    }

    #[test]
    fn unit_piggyback_is_free() {
        assert_eq!(().piggyback_bytes(), 0);
    }

    #[test]
    fn checkpoint_kind_display() {
        assert_eq!(CheckpointKind::Initial.to_string(), "initial");
        assert_eq!(CheckpointKind::Basic.to_string(), "basic");
        assert_eq!(CheckpointKind::Forced.to_string(), "forced");
    }
}
