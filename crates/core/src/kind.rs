//! Runtime selection of a protocol by name.

use std::fmt;
use std::str::FromStr;

/// The protocols this crate implements, as a data value.
///
/// [`ProtocolKind`] lets harnesses, CLIs and configuration files select a
/// protocol dynamically; the actual state machines stay monomorphized (see
/// `rdt-sim`'s `run_protocol_kind`).
///
/// # Example
///
/// ```rust
/// use rdt_core::ProtocolKind;
///
/// let kind: ProtocolKind = "bhmr".parse()?;
/// assert!(kind.ensures_rdt());
/// assert_eq!(ProtocolKind::all().len(), 10);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's protocol (predicate `C1 ∨ C2`).
    Bhmr,
    /// Variant without the `simple` vector (predicate `C1 ∨ C2'`).
    BhmrNoSimple,
    /// Variant with `C1` only and a permanently-false `causal` diagonal.
    BhmrCausalOnly,
    /// Wang's Fixed-Dependency-After-Send.
    Fdas,
    /// Wang's Fixed-Dependency-Interval.
    Fdi,
    /// No-Receive-After-Send.
    Nras,
    /// Checkpoint-After-Send.
    Cas,
    /// Checkpoint-Before-Receive.
    Cbr,
    /// Briatico–Ciuffoletti–Simoncini index-based protocol (Z-cycle
    /// freedom only, not RDT).
    Bcs,
    /// No forced checkpoints (violates RDT; negative control).
    Uncoordinated,
}

impl ProtocolKind {
    /// All implemented protocols, most to least sophisticated.
    pub fn all() -> &'static [ProtocolKind] {
        &[
            ProtocolKind::Bhmr,
            ProtocolKind::BhmrNoSimple,
            ProtocolKind::BhmrCausalOnly,
            ProtocolKind::Fdas,
            ProtocolKind::Fdi,
            ProtocolKind::Nras,
            ProtocolKind::Cas,
            ProtocolKind::Cbr,
            ProtocolKind::Bcs,
            ProtocolKind::Uncoordinated,
        ]
    }

    /// The RDT-ensuring protocols (everything except the uncoordinated
    /// control).
    pub fn rdt_ensuring() -> impl Iterator<Item = ProtocolKind> {
        Self::all()
            .iter()
            .copied()
            .filter(|kind| kind.ensures_rdt())
    }

    /// Short stable name, matching [`CicProtocol::name`](crate::CicProtocol::name).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Bhmr => "bhmr",
            ProtocolKind::BhmrNoSimple => "bhmr-nosimple",
            ProtocolKind::BhmrCausalOnly => "bhmr-causalonly",
            ProtocolKind::Fdas => "fdas",
            ProtocolKind::Fdi => "fdi",
            ProtocolKind::Nras => "nras",
            ProtocolKind::Cas => "cas",
            ProtocolKind::Cbr => "cbr",
            ProtocolKind::Bcs => "bcs",
            ProtocolKind::Uncoordinated => "uncoordinated",
        }
    }

    /// Whether every pattern the protocol produces satisfies RDT.
    pub fn ensures_rdt(self) -> bool {
        !matches!(self, ProtocolKind::Uncoordinated | ProtocolKind::Bcs)
    }

    /// Whether every pattern the protocol produces is Z-cycle-free (no
    /// useless checkpoints). RDT implies Z-cycle-freedom; BCS provides it
    /// without RDT.
    pub fn ensures_z_cycle_freedom(self) -> bool {
        self.ensures_rdt() || matches!(self, ProtocolKind::Bcs)
    }

    /// Whether the protocol piggybacks a transitive dependency vector (and
    /// therefore reports minimum consistent global checkpoints with each
    /// checkpoint record).
    pub fn tracks_dependencies(self) -> bool {
        matches!(
            self,
            ProtocolKind::Bhmr
                | ProtocolKind::BhmrNoSimple
                | ProtocolKind::BhmrCausalOnly
                | ProtocolKind::Fdas
                | ProtocolKind::Fdi
        )
    }

    /// Piggyback size in bytes for an `n`-process system, per message.
    pub fn piggyback_bytes(self, n: usize) -> usize {
        let tdv = 4 * n;
        let boolvec = n.div_ceil(8);
        let matrix = (n * n).div_ceil(8);
        match self {
            ProtocolKind::Bhmr => tdv + boolvec + matrix,
            ProtocolKind::BhmrNoSimple | ProtocolKind::BhmrCausalOnly => tdv + matrix,
            ProtocolKind::Fdas | ProtocolKind::Fdi => tdv,
            ProtocolKind::Bcs => 4,
            ProtocolKind::Nras
            | ProtocolKind::Cas
            | ProtocolKind::Cbr
            | ProtocolKind::Uncoordinated => 0,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ProtocolKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProtocolKind::all()
            .iter()
            .copied()
            .find(|kind| kind.name() == s)
            .ok_or_else(|| format!("unknown protocol {s:?}; expected one of: {}", names()))
    }
}

fn names() -> String {
    ProtocolKind::all()
        .iter()
        .map(|kind| kind.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_names() {
        for &kind in ProtocolKind::all() {
            assert_eq!(kind.name().parse::<ProtocolKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn unknown_name_is_a_helpful_error() {
        let err = "nope".parse::<ProtocolKind>().unwrap_err();
        assert!(err.contains("unknown protocol"));
        assert!(err.contains("bhmr"));
    }

    #[test]
    fn rdt_ensuring_excludes_bcs_and_uncoordinated() {
        let ensuring: Vec<_> = ProtocolKind::rdt_ensuring().collect();
        assert_eq!(ensuring.len(), ProtocolKind::all().len() - 2);
        assert!(!ensuring.contains(&ProtocolKind::Uncoordinated));
        assert!(!ensuring.contains(&ProtocolKind::Bcs));
    }

    #[test]
    fn z_cycle_freedom_classification() {
        assert!(ProtocolKind::Bcs.ensures_z_cycle_freedom());
        assert!(!ProtocolKind::Bcs.ensures_rdt());
        assert!(ProtocolKind::Bhmr.ensures_z_cycle_freedom());
        assert!(!ProtocolKind::Uncoordinated.ensures_z_cycle_freedom());
    }

    #[test]
    fn piggyback_sizes_match_protocol_implementations() {
        use crate::PiggybackSize;
        use crate::{Bhmr, BhmrCausalOnly, BhmrNoSimple, CicProtocol, Fdas};
        use rdt_causality::ProcessId;
        let n = 6;
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        assert_eq!(
            ProtocolKind::Bhmr.piggyback_bytes(n),
            Bhmr::new(n, p0).before_send(p1).piggyback.piggyback_bytes()
        );
        assert_eq!(
            ProtocolKind::BhmrNoSimple.piggyback_bytes(n),
            BhmrNoSimple::new(n, p0)
                .before_send(p1)
                .piggyback
                .piggyback_bytes()
        );
        assert_eq!(
            ProtocolKind::BhmrCausalOnly.piggyback_bytes(n),
            BhmrCausalOnly::new(n, p0)
                .before_send(p1)
                .piggyback
                .piggyback_bytes()
        );
        assert_eq!(
            ProtocolKind::Fdas.piggyback_bytes(n),
            Fdas::new(n, p0).before_send(p1).piggyback.piggyback_bytes()
        );
        assert_eq!(ProtocolKind::Cas.piggyback_bytes(n), 0);
    }

    #[test]
    fn protocols_are_send_sync_clone() {
        // Guide C-SEND-SYNC: embedding in threaded transports requires the
        // state machines to move across threads (see the
        // `threaded_transport` example).
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<crate::Bhmr>();
        assert_traits::<crate::BhmrNoSimple>();
        assert_traits::<crate::BhmrCausalOnly>();
        assert_traits::<crate::Fdas>();
        assert_traits::<crate::Fdi>();
        assert_traits::<crate::Nras>();
        assert_traits::<crate::Cas>();
        assert_traits::<crate::Cbr>();
        assert_traits::<crate::Bcs>();
        assert_traits::<crate::Uncoordinated>();
        assert_traits::<crate::BhmrPiggyback>();
        assert_traits::<crate::TdvPiggyback>();
    }

    #[test]
    fn dependency_tracking_classification() {
        assert!(ProtocolKind::Bhmr.tracks_dependencies());
        assert!(ProtocolKind::Fdi.tracks_dependencies());
        assert!(!ProtocolKind::Cbr.tracks_dependencies());
    }
}
