//! Wang's FDAS and FDI baseline protocols (§5.2 of the paper).

use rdt_causality::{CheckpointId, DependencyVector, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};

/// Piggyback of the FDAS/FDI protocols: the transitive dependency vector
/// only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdvPiggyback {
    /// The sender's transitive dependency vector at send time.
    pub tdv: DependencyVector,
}

impl PiggybackSize for TdvPiggyback {
    fn piggyback_bytes(&self) -> usize {
        self.tdv.piggyback_bytes()
    }
}

/// Shared state of the two fixed-dependency protocols.
#[derive(Debug, Clone)]
struct TdvState {
    me: ProcessId,
    n: usize,
    tdv: DependencyVector,
    after_first_send: bool,
    stats: ProtocolStats,
}

impl TdvState {
    fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        TdvState {
            me,
            n,
            tdv: DependencyVector::initial(n, me),
            after_first_send: false,
            stats: ProtocolStats::default(),
        }
    }

    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, self.tdv.current_interval()),
            kind,
            min_consistent_gc: Some(self.tdv.as_slice().to_vec()),
        };
        self.after_first_send = false;
        self.tdv.increment_owner();
        record
    }

    fn before_send(&mut self, _dest: ProcessId) -> SendOutcome<TdvPiggyback> {
        self.after_first_send = true;
        let piggyback = TdvPiggyback {
            tdv: self.tdv.clone(),
        };
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += piggyback.piggyback_bytes() as u64;
        SendOutcome {
            piggyback,
            forced_after: None,
        }
    }

    fn finish_arrival(&mut self, piggyback: &TdvPiggyback, force: bool) -> ArrivalOutcome {
        let forced = if force {
            self.stats.forced_checkpoints += 1;
            Some(self.take_checkpoint(CheckpointKind::Forced))
        } else {
            None
        };
        self.tdv.merge_max(&piggyback.tdv);
        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }
}

/// **FDAS** — *Fixed-Dependency-After-Send* (Wang).
///
/// Each process keeps one boolean `after_first_send`, reset at the beginning
/// of every checkpoint interval and set on the first send of the interval.
/// Before delivering `m`, the process evaluates
///
/// ```text
/// C_FDAS: after_first_send ∧ ∃k: m.TDV[k] > TDV[k]
/// ```
///
/// and takes a forced checkpoint if it holds: once a message has been sent
/// in the interval, the process's dependency set is frozen until the next
/// checkpoint. FDAS ensures RDT and is the reference the paper compares
/// against; `(C1 ∨ C2) ⇒ C_FDAS` makes the BHMR family strictly less
/// conservative (§5.2).
///
/// # Example
///
/// ```rust
/// use rdt_causality::ProcessId;
/// use rdt_core::{CicProtocol, Fdas};
///
/// let mut a = Fdas::new(2, ProcessId::new(0));
/// let mut b = Fdas::new(2, ProcessId::new(1));
/// b.take_basic_checkpoint();
/// let m = b.before_send(ProcessId::new(0));
/// // P0 has not sent anything: no forced checkpoint, whatever m carries.
/// assert!(!a.on_message_arrival(ProcessId::new(1), &m.piggyback).was_forced());
/// ```
#[derive(Debug, Clone)]
pub struct Fdas {
    state: TdvState,
}

impl Fdas {
    /// Creates `P_me`'s FDAS state for an `n`-process computation and takes
    /// the initial checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Fdas {
            state: TdvState::new(n, me),
        }
    }

    /// The current transitive dependency vector.
    pub fn tdv(&self) -> &DependencyVector {
        &self.state.tdv
    }

    /// Whether a send has occurred in the current checkpoint interval.
    pub fn after_first_send(&self) -> bool {
        self.state.after_first_send
    }
}

impl CicProtocol for Fdas {
    type Piggyback = TdvPiggyback;

    fn name(&self) -> &'static str {
        "fdas"
    }

    fn process(&self) -> ProcessId {
        self.state.me
    }

    fn num_processes(&self) -> usize {
        self.state.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.state.tdv.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.state.stats.basic_checkpoints += 1;
        self.state.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<TdvPiggyback> {
        self.state.before_send(dest)
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        piggyback: &TdvPiggyback,
    ) -> ArrivalOutcome {
        let force =
            self.state.after_first_send && self.state.tdv.has_new_dependency(&piggyback.tdv);
        self.state.finish_arrival(piggyback, force)
    }

    fn stats(&self) -> &ProtocolStats {
        &self.state.stats
    }
}

/// **FDI** — *Fixed-Dependency-Interval* (Wang).
///
/// The stricter sibling of [`Fdas`]: the dependency vector must stay fixed
/// over the *whole* interval, so a forced checkpoint is taken before any
/// delivery that brings a new dependency, whether or not a send occurred:
///
/// ```text
/// C_FDI: ∃k: m.TDV[k] > TDV[k]
/// ```
///
/// `C_FDAS ⇒ C_FDI`, so FDI forces at least as many checkpoints as FDAS. It
/// is included as the upper anchor of the protocol lattice in the
/// evaluation.
#[derive(Debug, Clone)]
pub struct Fdi {
    state: TdvState,
}

impl Fdi {
    /// Creates `P_me`'s FDI state for an `n`-process computation and takes
    /// the initial checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        Fdi {
            state: TdvState::new(n, me),
        }
    }

    /// The current transitive dependency vector.
    pub fn tdv(&self) -> &DependencyVector {
        &self.state.tdv
    }
}

impl CicProtocol for Fdi {
    type Piggyback = TdvPiggyback;

    fn name(&self) -> &'static str {
        "fdi"
    }

    fn process(&self) -> ProcessId {
        self.state.me
    }

    fn num_processes(&self) -> usize {
        self.state.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.state.tdv.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.state.stats.basic_checkpoints += 1;
        self.state.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<TdvPiggyback> {
        self.state.before_send(dest)
    }

    fn on_message_arrival(
        &mut self,
        _sender: ProcessId,
        piggyback: &TdvPiggyback,
    ) -> ArrivalOutcome {
        let force = self.state.tdv.has_new_dependency(&piggyback.tdv);
        self.state.finish_arrival(piggyback, force)
    }

    fn stats(&self) -> &ProtocolStats {
        &self.state.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fdas_initial_state() {
        let fdas = Fdas::new(3, p(2));
        assert_eq!(fdas.tdv().as_slice(), &[0, 0, 1]);
        assert!(!fdas.after_first_send());
        assert_eq!(fdas.next_checkpoint_index(), 1);
    }

    #[test]
    fn fdas_no_force_before_first_send() {
        let mut a = Fdas::new(2, p(0));
        let mut b = Fdas::new(2, p(1));
        b.take_basic_checkpoint();
        let m = b.before_send(p(0));
        assert!(!a.on_message_arrival(p(1), &m.piggyback).was_forced());
        assert_eq!(a.tdv().as_slice(), &[1, 2]);
    }

    #[test]
    fn fdas_forces_on_new_dependency_after_send() {
        let mut a = Fdas::new(2, p(0));
        let mut b = Fdas::new(2, p(1));
        a.before_send(p(1)); // after_first_send = true
        let m = b.before_send(p(0)); // brings new dependency on P1
        let outcome = a.on_message_arrival(p(1), &m.piggyback);
        assert!(outcome.was_forced());
        assert_eq!(outcome.forced.unwrap().id, CheckpointId::new(p(0), 1));
        assert!(
            !a.after_first_send(),
            "interval reset by the forced checkpoint"
        );
    }

    #[test]
    fn fdas_does_not_force_on_known_dependency() {
        let mut a = Fdas::new(2, p(0));
        let mut b = Fdas::new(2, p(1));
        let m1 = b.before_send(p(0));
        a.on_message_arrival(p(1), &m1.piggyback); // learn dependency quietly
        a.before_send(p(1));
        let m2 = b.before_send(p(0)); // same interval of P1: nothing new
        assert!(!a.on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn fdi_forces_even_without_send() {
        let mut a = Fdi::new(2, p(0));
        let mut b = Fdi::new(2, p(1));
        let m = b.before_send(p(0));
        let outcome = a.on_message_arrival(p(1), &m.piggyback);
        assert!(
            outcome.was_forced(),
            "FDI freezes dependencies for the whole interval"
        );
    }

    #[test]
    fn fdi_at_least_as_conservative_as_fdas() {
        // Drive both protocols through the same schedule and compare.
        let schedule = |mut a: Box<dyn FnMut(&TdvPiggyback) -> bool>,
                        make_pb: &mut dyn FnMut() -> TdvPiggyback| {
            let mut count = 0;
            for _ in 0..3 {
                let pb = make_pb();
                if a(&pb) {
                    count += 1;
                }
            }
            count
        };
        let mut fdas = Fdas::new(2, p(0));
        let mut fdi = Fdi::new(2, p(0));
        fdas.before_send(p(1));
        fdi.before_send(p(1));
        let mut b1 = Fdas::new(2, p(1));
        let mut b2 = Fdas::new(2, p(1));
        let fdas_count = schedule(
            Box::new(|pb| fdas.on_message_arrival(p(1), pb).was_forced()),
            &mut || {
                b1.take_basic_checkpoint();
                b1.before_send(p(0)).piggyback
            },
        );
        let fdi_count = schedule(
            Box::new(|pb| fdi.on_message_arrival(p(1), pb).was_forced()),
            &mut || {
                b2.take_basic_checkpoint();
                b2.before_send(p(0)).piggyback
            },
        );
        assert!(fdi_count >= fdas_count);
    }

    #[test]
    fn tdv_piggyback_size() {
        let mut a = Fdas::new(8, p(0));
        let m = a.before_send(p(1));
        assert_eq!(m.piggyback.piggyback_bytes(), 32);
    }

    #[test]
    fn fdas_min_gc_snapshot() {
        let mut a = Fdas::new(2, p(0));
        let mut b = Fdas::new(2, p(1));
        let m = b.before_send(p(0));
        a.on_message_arrival(p(1), &m.piggyback);
        let record = a.take_basic_checkpoint();
        assert_eq!(record.min_consistent_gc, Some(vec![1, 1]));
    }
}
