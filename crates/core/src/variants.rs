//! The two weaker variants of the BHMR protocol (§5.1 of the paper).
//!
//! Both drop the `simple` vector from the piggyback; the second also drops
//! predicate `C2` entirely, at the price of keeping the `causal` diagonal
//! permanently `false`. Both still ensure RDT, with less piggybacked
//! information but potentially more forced checkpoints:
//!
//! ```text
//! C1 ∨ C2  ⇒  C1 ∨ C2'  ⇒  C_FDAS          (fewer ⇒ more forced checkpoints)
//! ```

use std::cmp::Ordering;

use rdt_causality::{BoolMatrix, BoolVector, CheckpointId, DependencyVector, ProcessId};

use crate::{
    ArrivalOutcome, CheckpointKind, CheckpointRecord, CicProtocol, PiggybackSize, ProtocolStats,
    SendOutcome,
};

/// Piggyback of [`BhmrNoSimple`]: `TDV` and the `causal` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoSimplePiggyback {
    /// The sender's transitive dependency vector at send time.
    pub tdv: DependencyVector,
    /// The sender's `causal` matrix at send time.
    pub causal: BoolMatrix,
}

impl PiggybackSize for NoSimplePiggyback {
    fn piggyback_bytes(&self) -> usize {
        self.tdv.piggyback_bytes() + self.causal.piggyback_bytes()
    }
}

/// Piggyback of [`BhmrCausalOnly`]: identical content to
/// [`NoSimplePiggyback`] but with the *false-diagonal* convention on the
/// matrix; a distinct type keeps the two protocols from being mixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalOnlyPiggyback {
    /// The sender's transitive dependency vector at send time.
    pub tdv: DependencyVector,
    /// The sender's `causal` matrix at send time (diagonal permanently
    /// `false`).
    pub causal: BoolMatrix,
}

impl PiggybackSize for CausalOnlyPiggyback {
    fn piggyback_bytes(&self) -> usize {
        self.tdv.piggyback_bytes() + self.causal.piggyback_bytes()
    }
}

/// First variant of §5.1 (suggested by Y. M. Wang): the `simple` array is
/// omitted and `C2` is replaced by
///
/// ```text
/// C2': m.TDV[i] = TDV[i] ∧ ∃k: m.TDV[k] > TDV[k]
/// ```
///
/// Since `C2 ⇒ C2'`, the variant still breaks every non-causal chain back
/// to the same process and therefore ensures RDT, with `n` fewer
/// piggybacked bits per message but potentially more forced checkpoints.
#[derive(Debug, Clone)]
pub struct BhmrNoSimple {
    me: ProcessId,
    n: usize,
    tdv: DependencyVector,
    sent_to: BoolVector,
    causal: BoolMatrix,
    stats: ProtocolStats,
}

impl BhmrNoSimple {
    /// Creates `P_me`'s state for an `n`-process computation and takes the
    /// initial checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        BhmrNoSimple {
            me,
            n,
            tdv: DependencyVector::initial(n, me),
            sent_to: BoolVector::new(n),
            causal: BoolMatrix::identity(n),
            stats: ProtocolStats::default(),
        }
    }

    /// The current transitive dependency vector.
    pub fn tdv(&self) -> &DependencyVector {
        &self.tdv
    }

    /// The current `sent_to` vector (exposed for the certifier's
    /// independent predicate-conformance oracle).
    pub fn sent_to(&self) -> &BoolVector {
        &self.sent_to
    }

    /// The current `causal` matrix (exposed for the certifier's
    /// independent predicate-conformance oracle).
    pub fn causal(&self) -> &BoolMatrix {
        &self.causal
    }

    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, self.tdv.current_interval()),
            kind,
            min_consistent_gc: Some(self.tdv.as_slice().to_vec()),
        };
        self.sent_to.fill(false);
        for j in ProcessId::all(self.n) {
            if j != self.me {
                self.causal.set(self.me, j, false);
            }
        }
        self.tdv.increment_owner();
        record
    }
}

impl CicProtocol for BhmrNoSimple {
    type Piggyback = NoSimplePiggyback;

    fn name(&self) -> &'static str {
        "bhmr-nosimple"
    }

    fn process(&self) -> ProcessId {
        self.me
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.tdv.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<NoSimplePiggyback> {
        self.sent_to.set(dest, true);
        let piggyback = NoSimplePiggyback {
            tdv: self.tdv.clone(),
            causal: self.causal.clone(),
        };
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += piggyback.piggyback_bytes() as u64;
        SendOutcome {
            piggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        sender: ProcessId,
        piggyback: &NoSimplePiggyback,
    ) -> ArrivalOutcome {
        let fresh: Vec<ProcessId> = self.tdv.new_dependencies(&piggyback.tdv).collect();
        let c1 = !fresh.is_empty()
            && self
                .sent_to
                .ones()
                .any(|j| fresh.iter().any(|&k| !piggyback.causal.get(k, j)));
        let c2_prime =
            piggyback.tdv.get(self.me) == self.tdv.current_interval() && !fresh.is_empty();

        let forced = if c1 || c2_prime {
            self.stats.forced_checkpoints += 1;
            Some(self.take_checkpoint(CheckpointKind::Forced))
        } else {
            None
        };

        for k in ProcessId::all(self.n) {
            match piggyback.tdv.get(k).cmp(&self.tdv.get(k)) {
                Ordering::Less => {}
                Ordering::Greater => {
                    self.tdv.set(k, piggyback.tdv.get(k));
                    self.causal.copy_row_from(k, &piggyback.causal);
                }
                Ordering::Equal => {
                    self.causal.or_row_from(k, &piggyback.causal);
                }
            }
        }
        self.causal.set(sender, self.me, true);
        self.causal.or_column_into(sender, self.me);

        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }

    fn stats(&self) -> &ProtocolStats {
        &self.stats
    }
}

/// Second variant of §5.1: predicate `C2` is replaced by the constant
/// `false` and the diagonal entries of the `causal` matrices are maintained
/// permanently `false`.
///
/// With a false diagonal, a message bringing a new dependency on `P_k`
/// while the receiver has sent to `P_k` itself makes `C1` true through the
/// pair `(k, k)` — which is exactly how same-process non-causal chains get
/// broken without `C2` (§5.1 sketches the induction).
#[derive(Debug, Clone)]
pub struct BhmrCausalOnly {
    me: ProcessId,
    n: usize,
    tdv: DependencyVector,
    sent_to: BoolVector,
    causal: BoolMatrix,
    stats: ProtocolStats,
}

impl BhmrCausalOnly {
    /// Creates `P_me`'s state for an `n`-process computation and takes the
    /// initial checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for `n` processes.
    pub fn new(n: usize, me: ProcessId) -> Self {
        assert!(
            me.index() < n,
            "process {me} out of range for {n} processes"
        );
        BhmrCausalOnly {
            me,
            n,
            tdv: DependencyVector::initial(n, me),
            sent_to: BoolVector::new(n),
            causal: BoolMatrix::new(n), // all false, including the diagonal
            stats: ProtocolStats::default(),
        }
    }

    /// The current transitive dependency vector.
    pub fn tdv(&self) -> &DependencyVector {
        &self.tdv
    }

    /// The current `sent_to` vector (exposed for the certifier's
    /// independent predicate-conformance oracle).
    pub fn sent_to(&self) -> &BoolVector {
        &self.sent_to
    }

    /// The current `causal` matrix, diagonal permanently false (exposed
    /// for the certifier's independent predicate-conformance oracle).
    pub fn causal(&self) -> &BoolMatrix {
        &self.causal
    }

    fn take_checkpoint(&mut self, kind: CheckpointKind) -> CheckpointRecord {
        let record = CheckpointRecord {
            id: CheckpointId::new(self.me, self.tdv.current_interval()),
            kind,
            min_consistent_gc: Some(self.tdv.as_slice().to_vec()),
        };
        self.sent_to.fill(false);
        self.causal.clear_row(self.me);
        self.tdv.increment_owner();
        record
    }

    fn clear_diagonal(&mut self) {
        for k in ProcessId::all(self.n) {
            self.causal.set(k, k, false);
        }
    }
}

impl CicProtocol for BhmrCausalOnly {
    type Piggyback = CausalOnlyPiggyback;

    fn name(&self) -> &'static str {
        "bhmr-causalonly"
    }

    fn process(&self) -> ProcessId {
        self.me
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn next_checkpoint_index(&self) -> u32 {
        self.tdv.current_interval()
    }

    fn take_basic_checkpoint(&mut self) -> CheckpointRecord {
        self.stats.basic_checkpoints += 1;
        self.take_checkpoint(CheckpointKind::Basic)
    }

    fn before_send(&mut self, dest: ProcessId) -> SendOutcome<CausalOnlyPiggyback> {
        self.sent_to.set(dest, true);
        let piggyback = CausalOnlyPiggyback {
            tdv: self.tdv.clone(),
            causal: self.causal.clone(),
        };
        self.stats.messages_sent += 1;
        self.stats.piggyback_bytes_sent += piggyback.piggyback_bytes() as u64;
        SendOutcome {
            piggyback,
            forced_after: None,
        }
    }

    fn on_message_arrival(
        &mut self,
        sender: ProcessId,
        piggyback: &CausalOnlyPiggyback,
    ) -> ArrivalOutcome {
        let fresh: Vec<ProcessId> = self.tdv.new_dependencies(&piggyback.tdv).collect();
        let c1 = !fresh.is_empty()
            && self
                .sent_to
                .ones()
                .any(|j| fresh.iter().any(|&k| !piggyback.causal.get(k, j)));

        let forced = if c1 {
            self.stats.forced_checkpoints += 1;
            Some(self.take_checkpoint(CheckpointKind::Forced))
        } else {
            None
        };

        for k in ProcessId::all(self.n) {
            match piggyback.tdv.get(k).cmp(&self.tdv.get(k)) {
                Ordering::Less => {}
                Ordering::Greater => {
                    self.tdv.set(k, piggyback.tdv.get(k));
                    self.causal.copy_row_from(k, &piggyback.causal);
                }
                Ordering::Equal => {
                    self.causal.or_row_from(k, &piggyback.causal);
                }
            }
        }
        self.causal.set(sender, self.me, true);
        self.causal.or_column_into(sender, self.me);
        // Maintain the variant's invariant: diagonal permanently false.
        self.clear_diagonal();

        self.stats.messages_delivered += 1;
        ArrivalOutcome { forced }
    }

    fn stats(&self) -> &ProtocolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn nosimple_initial_state() {
        let v = BhmrNoSimple::new(3, p(0));
        assert_eq!(v.tdv().as_slice(), &[1, 0, 0]);
        assert_eq!(v.next_checkpoint_index(), 1);
    }

    #[test]
    fn nosimple_c2_prime_fires_on_new_dep_returning_chain() {
        // P0 sends m1 to P1; P1 checkpoints; P1 sends m2 back. m2 carries
        // m.TDV[0] == TDV_0[0] (chain back to self) and a new dependency on
        // P1 => C2'.
        let mut p0 = BhmrNoSimple::new(2, p(0));
        let mut p1 = BhmrNoSimple::new(2, p(1));
        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        p1.take_basic_checkpoint();
        let m2 = p1.before_send(p(0));
        assert!(p0.on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn nosimple_is_more_conservative_than_full_bhmr_on_simple_chain() {
        // Without a checkpoint at P1 the chain back to P0 is simple. Full
        // BHMR does not force (its `simple` vector proves innocence); the
        // variant cannot tell and forces anyway via C2'.
        let mut p0 = BhmrNoSimple::new(2, p(0));
        let mut p1 = BhmrNoSimple::new(2, p(1));
        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        let m2 = p1.before_send(p(0));
        // m2.tdv = [1, 1]: new dep on P1 and m.TDV[0] == TDV_0[0] == 1.
        assert!(p0.on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn causalonly_diagonal_stays_false() {
        let mut p0 = BhmrCausalOnly::new(2, p(0));
        let mut p1 = BhmrCausalOnly::new(2, p(1));
        let m1 = p1.before_send(p(0));
        p0.on_message_arrival(p(1), &m1.piggyback);
        for k in 0..2 {
            assert!(!p0.causal.get(p(k), p(k)));
        }
        // Off-diagonal trackability is still recorded.
        assert!(p0.causal.get(p(1), p(0)));
    }

    #[test]
    fn causalonly_breaks_same_process_chain_via_c1() {
        // P0 sends m1 to P1 (sent_to[1] true); P1 checkpoints and sends m2
        // back. m2 brings a new dependency on P1 and m.causal[1][1] is
        // false by construction => C1 fires through the pair (k=1, j=1).
        let mut p0 = BhmrCausalOnly::new(2, p(0));
        let mut p1 = BhmrCausalOnly::new(2, p(1));
        let m1 = p0.before_send(p(1));
        p1.on_message_arrival(p(0), &m1.piggyback);
        p1.take_basic_checkpoint();
        let m2 = p1.before_send(p(0));
        assert!(p0.on_message_arrival(p(1), &m2.piggyback).was_forced());
    }

    #[test]
    fn causalonly_no_send_no_force() {
        let mut p0 = BhmrCausalOnly::new(2, p(0));
        let mut p1 = BhmrCausalOnly::new(2, p(1));
        p1.take_basic_checkpoint();
        let m = p1.before_send(p(0));
        assert!(!p0.on_message_arrival(p(1), &m.piggyback).was_forced());
    }

    #[test]
    fn piggyback_sizes_form_the_documented_lattice() {
        use crate::{Bhmr, Fdas};
        let n = 8;
        let full = Bhmr::new(n, p(0))
            .before_send(p(1))
            .piggyback
            .piggyback_bytes();
        let nosimple = BhmrNoSimple::new(n, p(0))
            .before_send(p(1))
            .piggyback
            .piggyback_bytes();
        let causalonly = BhmrCausalOnly::new(n, p(0))
            .before_send(p(1))
            .piggyback
            .piggyback_bytes();
        let fdas = Fdas::new(n, p(0))
            .before_send(p(1))
            .piggyback
            .piggyback_bytes();
        assert!(full > nosimple);
        assert_eq!(nosimple, causalonly);
        assert!(causalonly > fdas);
    }

    #[test]
    fn min_gc_snapshot_present() {
        let mut v = BhmrNoSimple::new(2, p(0));
        let r = v.take_basic_checkpoint();
        assert_eq!(r.min_consistent_gc, Some(vec![1, 0]));
        let mut w = BhmrCausalOnly::new(2, p(0));
        let r = w.take_basic_checkpoint();
        assert_eq!(r.min_consistent_gc, Some(vec![1, 0]));
    }
}
